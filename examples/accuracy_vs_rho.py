"""Approximation accuracy: Rand index of RP-DBSCAN vs exact DBSCAN.

Run with::

    python examples/accuracy_vs_rho.py

Reproduces the Table 4 experiment at example scale: for the Moons,
Blobs, and Chameleon synthetic data sets, cluster with exact DBSCAN and
with RP-DBSCAN at rho in {0.10, 0.05, 0.01} and report the Rand index
between the two clusterings.  The paper's finding — already ~0.98 at
rho = 0.10 and exact at rho = 0.01 — holds here.
"""

from repro import RPDBSCAN
from repro.baselines import ExactDBSCAN
from repro.bench.reporting import format_table
from repro.data import blobs, chameleon_like, moons
from repro.metrics import rand_index


def main() -> None:
    workloads = {
        "Moons": (moons(8000, seed=11), 0.08, 12),
        "Blobs": (blobs(8000, centers=3, std=0.3, spread=6.0, seed=11), 0.25, 12),
        "Chameleon": (chameleon_like(8000, seed=11), 0.13, 8),
    }
    rhos = [0.10, 0.05, 0.01]

    rows = []
    for name, (points, eps, min_pts) in workloads.items():
        exact = ExactDBSCAN(eps, min_pts).fit(points)
        indices = []
        for rho in rhos:
            approx = RPDBSCAN(eps, min_pts, num_partitions=8, rho=rho).fit(points)
            indices.append(rand_index(exact.labels, approx.labels))
        rows.append([name, exact.n_clusters, *indices])

    print(
        format_table(
            ["data set", "clusters", "rho=0.10", "rho=0.05", "rho=0.01"],
            rows,
            title="Rand index: RP-DBSCAN vs exact DBSCAN (Table 4 at example scale)",
        )
    )


if __name__ == "__main__":
    main()
