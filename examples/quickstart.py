"""Quickstart: cluster a simple data set with RP-DBSCAN.

Run with::

    python examples/quickstart.py

Generates three Gaussian blobs plus uniform noise, clusters them with
RP-DBSCAN, and prints the cluster summary, phase breakdown, and an
ASCII rendering of the clustering.
"""

import numpy as np

from repro import RPDBSCAN
from repro.bench.reporting import render_ascii_scatter
from repro.data import blobs


def main() -> None:
    rng = np.random.default_rng(7)
    points = np.concatenate(
        [
            blobs(6000, centers=3, std=0.3, spread=8.0, seed=7),
            rng.uniform(-2.0, 10.0, (400, 2)),  # background noise
        ]
    )

    model = RPDBSCAN(eps=0.35, min_pts=20, num_partitions=8, rho=0.01)
    result = model.fit(points)

    print(f"points:    {points.shape[0]}")
    print(f"clusters:  {result.n_clusters}")
    print(f"noise:     {result.noise_count}")
    print(f"core pts:  {int(result.core_mask.sum())}")
    print(f"elapsed:   {result.total_seconds:.3f}s")
    print("\nphase breakdown (Fig 12 style):")
    for phase, fraction in result.phase_breakdown().items():
        print(f"  {phase:<18s} {fraction:6.1%}")
    print(f"\nload imbalance across partitions: {result.load_imbalance:.2f}")
    print(f"points processed (= N, no duplication): {result.points_processed}")

    print("\nclustering (ASCII, one glyph per cluster, '.' = noise):")
    print(render_ascii_scatter(points, result.labels, width=70, height=22))


if __name__ == "__main__":
    main()
