"""Scalability: replaying measured tasks on simulated clusters.

Run with::

    python examples/scalability_simulation.py

Reproduces the Fig 15 methodology: measure per-partition local-
clustering task times once, then replay them through the deterministic
cluster scheduler to compute the elapsed time a w-worker cluster would
achieve, for w in {5, 10, 20, 40}.  Because RP-DBSCAN's random
partitions are near-identical in cost, its speed-up curve stays close
to linear; a region-split algorithm's curve flattens as soon as its
slowest split dominates.
"""

from repro import RPDBSCAN
from repro.baselines import CBPDBSCAN
from repro.bench.reporting import format_table
from repro.core.rp_dbscan import (
    PHASE_CELL_GRAPH,
    PHASE_DICTIONARY,
    PHASE_LABEL,
    PHASE_PARTITION,
)
from repro.data import cosmo50_like
from repro.engine import PhaseSchedule


def main() -> None:
    points = cosmo50_like(20_000, seed=5)
    eps, min_pts, tasks = 0.6, 30, 40  # 40 partitions = 40 schedulable tasks
    workers = [5, 10, 20, 40]

    # RP-DBSCAN: every phase is a map over partitions except the
    # tournament, whose parallel span is its critical path.
    rp = RPDBSCAN(eps, min_pts, num_partitions=tasks).fit(points)
    counters = rp.counters
    i2_tasks = counters.task_times(PHASE_DICTIONARY)
    broadcast = max(
        0.0, counters.phase_seconds.get(PHASE_DICTIONARY, 0.0) - sum(i2_tasks)
    )
    rp_schedule = (
        PhaseSchedule()
        .add_divisible(counters.phase_seconds.get(PHASE_PARTITION, 0.0))
        .add_parallel(i2_tasks)
        .add_constant(broadcast)
        .add_parallel(counters.task_times(PHASE_CELL_GRAPH))
        .add_constant(rp.merge_stats.critical_path_seconds())
        .add_parallel(counters.task_times(PHASE_LABEL))
    )
    rp_curve = rp_schedule.speedups(workers)

    # CBP-DBSCAN: parallel local clustering between a driver-side
    # partitioning plan and a driver-side merge.
    cbp = CBPDBSCAN(eps, min_pts, tasks).fit(points)
    cbp_schedule = (
        PhaseSchedule()
        .add_constant(
            cbp.phase_seconds.get("partition", 0.0)
            + cbp.phase_seconds.get("merge", 0.0)
        )
        .add_parallel(cbp.split_task_seconds)
    )
    cbp_curve = cbp_schedule.speedups(workers)

    rows = [
        ["RP-DBSCAN", *(rp_curve[w] for w in workers)],
        ["CBP-DBSCAN", *(cbp_curve[w] for w in workers)],
    ]
    print(
        format_table(
            ["algorithm", *(f"{w} cores" for w in workers)],
            rows,
            title=(
                "Speed-up over 5 cores (Fig 15 methodology), Cosmo50-like, "
                f"n={points.shape[0]}"
            ),
        )
    )
    print(
        f"\nRP-DBSCAN load imbalance across its {tasks} tasks: "
        f"{rp.load_imbalance:.2f}; CBP-DBSCAN: {cbp.load_imbalance:.2f}.\n"
        "Balanced tasks are what keeps the speed-up curve climbing."
    )


if __name__ == "__main__":
    main()
