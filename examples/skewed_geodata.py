"""Skewed geodata: why random partitioning beats region splitting.

Run with::

    python examples/skewed_geodata.py

The paper's motivating scenario (Sec 1.1): on heavily skewed spatial
data — most points in one metro area, the rest spread over dozens of
cities — region-split parallel DBSCAN suffers load imbalance and data
duplication.  This example clusters a GeoLife-like workload with
RP-DBSCAN and the three region-split baselines and prints the paper's
three problem metrics side by side.
"""

from repro import RPDBSCAN
from repro.baselines import CBPDBSCAN, ESPDBSCAN, RBPDBSCAN
from repro.bench.harness import run_comparison
from repro.bench.reporting import format_table
from repro.data import geolife_like


def main() -> None:
    points = geolife_like(15_000, seed=3)
    eps, min_pts, k = 3.0, 30, 8

    algorithms = {
        "ESP-DBSCAN (even split)": lambda: ESPDBSCAN(eps, min_pts, k),
        "RBP-DBSCAN (reduced boundary)": lambda: RBPDBSCAN(eps, min_pts, k),
        "CBP-DBSCAN (cost based)": lambda: CBPDBSCAN(eps, min_pts, k),
        "RP-DBSCAN (random cells)": lambda: RPDBSCAN(eps, min_pts, k),
    }
    rows = run_comparison(algorithms, points, params={"eps": eps})

    table = []
    for row in rows:
        duplication = row.points_processed / points.shape[0]
        table.append(
            [
                row.algorithm,
                row.elapsed_s,
                row.n_clusters,
                row.load_imbalance,
                row.points_processed,
                duplication,
            ]
        )
    print(
        format_table(
            [
                "algorithm",
                "elapsed (s)",
                "clusters",
                "load imbalance",
                "pts processed",
                "duplication x",
            ],
            table,
            title=(
                f"GeoLife-like skewed data, n={points.shape[0]}, eps={eps}, "
                f"minPts={min_pts}, k={k} splits"
            ),
        )
    )
    print(
        "\nRP-DBSCAN processes each point exactly once (duplication 1.0) and\n"
        "keeps near-perfect load balance; region splits duplicate halo points\n"
        "and the split holding the metro blob dominates the clock (Figs 13-14)."
    )


if __name__ == "__main__":
    main()
