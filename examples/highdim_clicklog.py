"""High-dimensional clustering: the TeraClickLog-style workload.

Run with::

    python examples/highdim_clicklog.py

The paper's largest data set is 13-dimensional, which breaks naive
grid-neighbor enumeration: the number of cell offsets to check grows
exponentially with the dimension.  RP-DBSCAN's region queries therefore
fall back to a kd-tree over the non-empty cells of the dictionary
(Lemma 5.6).  This example clusters a 13-d click-log stand-in, shows
that the ``auto`` strategy picked the kd-tree, and reports the
dictionary size (Table 5's metric).  At demo scale most sub-cells hold
a single point so the ratio is large; it falls toward the paper's
0.04-8.2% as points-per-sub-cell grows with N (only non-empty
(sub-)cells are ever stored).
"""

from repro import RPDBSCAN, CellDictionary, CellGeometry, RegionQueryEngine
from repro.data import teraclicklog_like


def main() -> None:
    points = teraclicklog_like(10_000, seed=9)
    eps, min_pts = 4.0, 40

    geometry = CellGeometry(eps, points.shape[1], rho=0.01)
    dictionary = CellDictionary.from_points(points, geometry)
    engine = RegionQueryEngine(dictionary)
    print(f"dimension:           {points.shape[1]}")
    print(f"candidate strategy:  {engine.strategy} (auto-selected)")
    print(f"non-empty cells:     {dictionary.num_cells}")
    print(f"non-empty sub-cells: {dictionary.num_subcells}")
    model = dictionary.size_model()
    print(
        f"dictionary size:     {model.total_bytes / 1024:.1f} KiB "
        f"({model.ratio_to_data(points.shape[0]):.2%} of the data)"
    )

    result = RPDBSCAN(eps, min_pts, num_partitions=8).fit(points)
    print(f"\nclusters: {result.n_clusters}   noise: {result.noise_count}")
    print(f"elapsed:  {result.total_seconds:.3f}s")
    print(f"load imbalance: {result.load_imbalance:.2f}")


if __name__ == "__main__":
    main()
