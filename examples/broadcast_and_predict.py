"""Broadcast bytes and online prediction: deploying a fitted clustering.

Run with::

    python examples/broadcast_and_predict.py

Two deployment-oriented features built on the paper's machinery:

1. **The dictionary as a wire format** — the two-level cell dictionary
   is serialized into the exact bit-packed layout of Lemma 4.3 (float32
   cell positions, int32 densities, d*(h-1)-bit sub-cell orderings),
   which is what a Spark driver would broadcast.  The example measures
   the real byte stream against the raw data and against the paper's
   size formula, then proves a worker can answer region queries from
   the deserialized copy alone.
2. **The model plane** — a fit's product is a persistent
   :class:`ClusterState`: save it to an ``RPST`` file, load it anywhere,
   serve batch label queries through :class:`ClusterModel` (DBSCAN's
   border rule: nearest core within eps, else noise), and ingest new
   points incrementally — the refit recomputes only the dirty cells yet
   leaves the state bit-identical to a from-scratch fit on everything.
3. **The serving plane** — the same state backs a network predict
   server (``rp-dbscan serve``): the model is hoisted into shared
   memory once, predictor workers attach zero-copy, and concurrent
   requests fuse into micro-batches.  The example starts an in-process
   server and round-trips predictions over TCP, checking them against
   the offline model bit for bit.
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    RPDBSCAN,
    CellDictionary,
    CellGeometry,
    ClusterModel,
    RegionQueryEngine,
    load_cluster_state,
    save_cluster_state,
)
from repro.core import deserialize_dictionary, serialize_dictionary
from repro.data import openstreetmap_like
from repro.serve import ServeClient, ServeConfig, running_server


def main() -> None:
    points = openstreetmap_like(30_000, seed=2)
    eps, min_pts = 3.5, 30

    # --- 1. The broadcast payload -----------------------------------
    geometry = CellGeometry(eps, points.shape[1], rho=0.01)
    dictionary = CellDictionary.from_points(points, geometry)
    payload = serialize_dictionary(dictionary)
    model = dictionary.size_model()
    raw_bytes = 4 * points.size  # the paper stores float32 features
    print(f"data set:            {points.shape[0]} x {points.shape[1]} "
          f"({raw_bytes / 1024:.0f} KiB as float32)")
    print(f"dictionary stream:   {len(payload) / 1024:.1f} KiB "
          f"({len(payload) / raw_bytes:.2%} of the data)")
    print(f"Lemma 4.3 estimate:  {model.total_bytes / 1024:.1f} KiB")

    worker_dict = deserialize_dictionary(payload)
    engine = RegionQueryEngine(worker_dict)
    count, _ = engine.query_point(points[0])
    print(f"worker-side (eps,rho)-region query from bytes alone: "
          f"|N({points[0].round(2)})| ~= {count:.0f}")

    # --- 2. Fit once, persist, classify forever ----------------------
    result = RPDBSCAN(eps, min_pts, num_partitions=8).fit(points)
    print(f"\nfitted: {result.n_clusters} clusters, {result.noise_count} noise")

    # The fit's product is a serializable ClusterState: save, load, serve.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "osm.rpst"
        save_cluster_state(result.state, path)
        state = load_cluster_state(path)
        print(f"model state:         {path.stat().st_size / 1024:.1f} KiB on disk")

    frozen = ClusterModel.from_state(state)
    print(f"model keeps {frozen.n_core_points} core points "
          f"in {frozen.num_cells} cells")

    new_points = openstreetmap_like(2000, seed=99)
    predicted = frozen.predict(new_points)
    assigned = int((predicted >= 0).sum())
    print(
        f"classified {new_points.shape[0]} unseen points: "
        f"{assigned} into clusters, {new_points.shape[0] - assigned} noise"
    )

    # --- 3. Incremental refit ----------------------------------------
    # Ingest the new batch: only the eps-neighborhood of touched cells
    # is recomputed, and the state ends bit-identical to a from-scratch
    # fit on all the points.
    report = state.ingest(new_points)
    print(
        f"\ningested {report.num_new_points} points: "
        f"{report.cells_dirty}/{report.cells_total} cells dirty, "
        f"{report.edges_retained} edges retained, "
        f"now {report.n_clusters} clusters"
    )

    # --- 4. The serving plane ----------------------------------------
    # ``running_server`` is the in-process twin of ``rp-dbscan serve``:
    # it hoists the model into a shared-memory segment, forks predictor
    # workers that attach zero-copy, and micro-batches concurrent
    # requests.  The client speaks the same length-prefixed frames the
    # distributed engine uses.
    probe = openstreetmap_like(256, seed=7)
    with running_server(state, ServeConfig(batch_window_s=0.002)) as server:
        with ServeClient("127.0.0.1", server.port) as client:
            served = client.predict(probe)
            stats = client.stats()
    offline = ClusterModel.from_state(state).predict(probe)
    assert np.array_equal(served, offline), "served labels must match offline"
    print(
        f"\nserved {probe.shape[0]} predictions over TCP "
        f"(model epoch {stats['epoch']}, "
        f"{stats['batches_dispatched']} batch dispatches), "
        "bit-identical to offline predict"
    )


if __name__ == "__main__":
    main()
