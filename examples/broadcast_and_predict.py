"""Broadcast bytes and online prediction: deploying a fitted clustering.

Run with::

    python examples/broadcast_and_predict.py

Two deployment-oriented features built on the paper's machinery:

1. **The dictionary as a wire format** — the two-level cell dictionary
   is serialized into the exact bit-packed layout of Lemma 4.3 (float32
   cell positions, int32 densities, d*(h-1)-bit sub-cell orderings),
   which is what a Spark driver would broadcast.  The example measures
   the real byte stream against the raw data and against the paper's
   size formula, then proves a worker can answer region queries from
   the deserialized copy alone.
2. **Classifying new points** — a fitted clustering is frozen into a
   :class:`ClusterModel` that assigns incoming points to clusters by
   DBSCAN's border rule (nearest core within eps, else noise).
"""

import numpy as np

from repro import RPDBSCAN, CellDictionary, CellGeometry, ClusterModel, RegionQueryEngine
from repro.core import deserialize_dictionary, serialize_dictionary
from repro.data import openstreetmap_like


def main() -> None:
    points = openstreetmap_like(30_000, seed=2)
    eps, min_pts = 3.5, 30

    # --- 1. The broadcast payload -----------------------------------
    geometry = CellGeometry(eps, points.shape[1], rho=0.01)
    dictionary = CellDictionary.from_points(points, geometry)
    payload = serialize_dictionary(dictionary)
    model = dictionary.size_model()
    raw_bytes = 4 * points.size  # the paper stores float32 features
    print(f"data set:            {points.shape[0]} x {points.shape[1]} "
          f"({raw_bytes / 1024:.0f} KiB as float32)")
    print(f"dictionary stream:   {len(payload) / 1024:.1f} KiB "
          f"({len(payload) / raw_bytes:.2%} of the data)")
    print(f"Lemma 4.3 estimate:  {model.total_bytes / 1024:.1f} KiB")

    worker_dict = deserialize_dictionary(payload)
    engine = RegionQueryEngine(worker_dict)
    count, _ = engine.query_point(points[0])
    print(f"worker-side (eps,rho)-region query from bytes alone: "
          f"|N({points[0].round(2)})| ~= {count:.0f}")

    # --- 2. Fit once, classify forever ------------------------------
    result = RPDBSCAN(eps, min_pts, num_partitions=8).fit(points)
    print(f"\nfitted: {result.n_clusters} clusters, {result.noise_count} noise")
    frozen = ClusterModel(points, result.labels, result.core_mask, eps=eps)
    print(f"model keeps {frozen.n_core_points} core points")

    new_points = openstreetmap_like(2000, seed=99)
    predicted = frozen.predict(new_points)
    assigned = int((predicted >= 0).sum())
    print(
        f"classified {new_points.shape[0]} unseen points: "
        f"{assigned} into clusters, {new_points.shape[0] - assigned} noise"
    )


if __name__ == "__main__":
    main()
