"""Tracing overhead: off vs spans-only vs spans+histograms.

The observability subsystem must be free when unused: the engine's
default :data:`~repro.obs.spans.NULL_TRACER` makes every recording site
a constant-time no-op, so an untraced run should cost the same as a raw
loop over the task bodies.  This bench pins that claim and reports what
the two opt-in levels cost on top:

* **raw** — a plain Python loop calling the task function; the
  hook-free floor.
* **off** — ``Engine("serial")`` with the default null tracer (counters
  still record, as they always have).
* **spans** — the same engine with a live :class:`~repro.obs.spans.Tracer`
  recording phase/task/attempt spans.
* **spans+hist** — the tracer additionally feeding per-phase duration
  histograms in a :class:`~repro.obs.metrics.MetricsRegistry`.

Each regime is timed best-of-``ROUNDS`` over ``TASKS`` CPU-bound tasks
(~5 ms each — heavy enough that the ~10 µs of per-task counter
bookkeeping the engine has always done cannot dominate), so the 5%
budget the assertion enforces genuinely measures the tracing hooks.  The asserted claim is the
"off" one — tracing *disabled* adds < 5% over the raw loop (plus a small
absolute slack for timer noise); the span/histogram costs are reported
but not gated, since they are opt-in.
"""

import time

from common import publish

from repro.bench.reporting import format_table
from repro.engine import Engine
from repro.obs import MetricsRegistry, Tracer

TASKS = 60
WORK = 20_000  # loop iterations per task: ~5 ms of pure Python
ROUNDS = 5
#: Relative budget for the tracing-off regime over the raw loop.
MAX_OFF_OVERHEAD = 0.05
#: Absolute slack (seconds) so coarse CI clocks cannot flake the gate.
ABS_SLACK_S = 0.01


def spin(n):
    total = 0
    for i in range(n):
        total += i * i
    return total


def _time_best(fn):
    best = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _run_raw():
    for _ in range(TASKS):
        spin(WORK)


def _run_engine(tracer=None):
    engine = Engine("serial", tracer=tracer)
    engine.map_tasks(spin, [WORK] * TASKS, phase="bench")
    return engine


def run_experiment():
    out = {"raw": _time_best(_run_raw)}
    out["off"] = _time_best(_run_engine)
    out["spans"] = _time_best(lambda: _run_engine(Tracer()))
    out["spans+hist"] = _time_best(
        lambda: _run_engine(Tracer(metrics=MetricsRegistry()))
    )
    return out


def test_trace_overhead(benchmark):
    times = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    raw = times["raw"]
    table = [
        [regime, round(elapsed * 1e3, 2), f"{elapsed / raw - 1:+.1%}"]
        for regime, elapsed in times.items()
    ]
    publish(
        "trace_overhead",
        format_table(
            ["tracing level", "best of 5 (ms)", "vs raw loop"],
            table,
            title=(
                f"Tracing overhead, {TASKS} tasks x ~5 ms "
                f"(serial engine, best of {ROUNDS})"
            ),
        ),
    )

    # The gated claim: with tracing off (the default), the engine costs
    # < 5% over a bare loop — the null tracer really is free.
    assert times["off"] <= raw * (1 + MAX_OFF_OVERHEAD) + ABS_SLACK_S, (
        f"tracing-off overhead {times['off'] / raw - 1:.1%} exceeds "
        f"{MAX_OFF_OVERHEAD:.0%} budget"
    )

    # Sanity: the opt-in levels actually recorded what they claim.
    traced = Tracer()
    _run_engine(traced)
    assert len(traced.find(kind="attempt")) == TASKS
    registry = MetricsRegistry()
    _run_engine(Tracer(metrics=registry))
    assert registry.histogram("task_seconds.bench").total == TASKS
