"""Ablation: offset enumeration vs kd-tree candidate search (Lemma 5.6).

Both strategies answer the same queries; enumeration wins in low
dimensions (hash probes on a precomputed offset table) while only the
kd-tree scales to d = 13, where the offset table would have ~7^13
entries.  The bench measures both on 2-d (where both run) and documents
the auto-selection.
"""

import numpy as np

from common import BENCH_MIN_PTS, bench_dataset, publish, run_once

from repro import RPDBSCAN
from repro.bench.reporting import format_table
from repro.core.cells import CellGeometry
from repro.core.dictionary import CellDictionary
from repro.core.region_query import RegionQueryEngine
from repro.data.datasets import DATASETS


def run_experiment():
    points = bench_dataset("OpenStreetMap")
    eps = DATASETS["OpenStreetMap"].eps10 / 2
    out = {}
    for strategy in ("enumerate", "kdtree"):
        result = RPDBSCAN(
            eps, BENCH_MIN_PTS, 8, seed=0, candidate_strategy=strategy
        ).fit(points)
        out[strategy] = result

    # Auto-selection record.
    geo2 = CellGeometry(eps, 2, 0.01)
    auto_2d = RegionQueryEngine(CellDictionary.from_points(points, geo2)).strategy
    points13 = bench_dataset("TeraClickLog")
    geo13 = CellGeometry(DATASETS["TeraClickLog"].eps10, 13, 0.01)
    auto_13d = RegionQueryEngine(
        CellDictionary.from_points(points13, geo13)
    ).strategy
    return out, auto_2d, auto_13d


def test_ablation_candidate_strategy(benchmark):
    results, auto_2d, auto_13d = run_once(benchmark, run_experiment)

    rows = [
        [name, round(result.total_seconds, 3), result.n_clusters]
        for name, result in results.items()
    ]
    publish(
        "ablation_candidate_strategy",
        format_table(
            ["strategy", "elapsed (s)", "clusters"],
            rows,
            title=(
                "Ablation: candidate-cell search strategy (2-d) — "
                f"auto picks {auto_2d} at d=2, {auto_13d} at d=13"
            ),
        ),
    )

    np.testing.assert_array_equal(
        results["enumerate"].labels, results["kdtree"].labels
    )
    assert auto_2d == "enumerate"
    assert auto_13d == "kdtree"
