"""The Phase III-1 merge plane, measured: flat layout and engine rounds.

Two claims from the merge-plane rework, gated with the headroom the
other plane benches use (regressions, not timer jitter):

* **columnar matches** — a driver-mode tournament over
  ``FlatCellGraph`` subgraphs (vectorized absorb/detect, array
  union-find) must beat the same tournament over the dict-of-tuples
  reference by at least :data:`FLAT_SPEEDUP_MIN` on wall time, while
  producing bit-identical per-round accounting;
* **engine scheduling** — dispatching each round's matches through
  ``Engine.map_tasks`` (4 process workers, warm pool) must not lose to
  the driver-mode tournament.  The direct ``engine <= driver`` wall
  gate needs real cores to parallelize on, so it is asserted when the
  machine has at least :data:`PARALLEL_GATE_CORES` CPUs; on smaller
  substrates (CI runners, 1-core containers) the gate degrades to
  bounding the serialization overhead at
  :data:`SERIAL_SUBSTRATE_TOLERANCE` times driver wall, plus the
  machine-independent form of the claim: the modeled critical path
  (sum of per-round slowest matches — what a non-oversubscribed pool
  would execute) must undercut the driver-mode wall.

The published table records walls, per-round edge counts, and shipped
bytes for the bench artifact.
"""

import os
import time

from common import bench_dataset, publish, run_once

from repro.bench.reporting import format_duration, format_table
from repro.core.cells import CellGeometry
from repro.core.construction import QueryContext, build_cell_subgraph
from repro.core.dictionary import CellDictionary
from repro.core.merging import progressive_merge
from repro.core.partitioning import pseudo_random_partition
from repro.data.datasets import DATASETS
from repro.engine import Engine

N_POINTS = 40_000
MIN_PTS = 20
K = 16  # >= 8 partitions per the acceptance gate; 8 matches in round 1
WORKERS = 4
REPEATS = 3

#: Driver-mode tournament: flat must beat dict by at least this factor
#: (measured ~3.7x on the reference container).
FLAT_SPEEDUP_MIN = 3.0
#: Cores needed before the direct engine <= driver wall gate is fair.
PARALLEL_GATE_CORES = 4
#: On fewer cores the engine pays serialization with no parallelism to
#: buy back; bound the overhead instead (measured ~1.8x on 1 core).
SERIAL_SUBSTRATE_TOLERANCE = 2.5


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    out = None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def _subgraphs(layout):
    points = bench_dataset("GeoLife", N_POINTS)
    eps = DATASETS["GeoLife"].eps10 / 4
    geometry = CellGeometry(eps, points.shape[1], 0.01)
    partitions = pseudo_random_partition(points, geometry, K, seed=0)
    dictionary = CellDictionary.from_points(points, geometry)
    context = QueryContext(dictionary)
    return [
        build_cell_subgraph(p, context, MIN_PTS, graph_layout=layout).graph
        for p in partitions
    ]


def run_experiment():
    flat = _subgraphs("flat")
    dicts = _subgraphs("dict")

    flat_wall, (_, flat_stats) = _best_of(lambda: progressive_merge(flat))
    dict_wall, (_, dict_stats) = _best_of(lambda: progressive_merge(dicts))

    with Engine("process", num_workers=WORKERS) as engine:
        # Warm the pool: fork + import cost is engine setup, not merge
        # time, and a real fit reaches Phase III-1 with workers running.
        progressive_merge(flat, merge_mode="engine", engine=engine)
        engine_wall, (_, engine_stats) = _best_of(
            lambda: progressive_merge(flat, merge_mode="engine", engine=engine)
        )

    return {
        "flat_wall": flat_wall,
        "dict_wall": dict_wall,
        "engine_wall": engine_wall,
        "flat_stats": flat_stats,
        "dict_stats": dict_stats,
        "engine_stats": engine_stats,
        "total_edges": sum(g.num_edges for g in flat),
    }


def test_merge_plane(benchmark):
    out = run_once(benchmark, run_experiment)
    flat_stats = out["flat_stats"]
    dict_stats = out["dict_stats"]
    engine_stats = out["engine_stats"]
    cores = os.cpu_count() or 1

    def row(label, wall, stats):
        return [
            label,
            format_duration(wall),
            format_duration(stats.span_seconds()),
            "measured" if stats.span_is_measured else "modeled",
            stats.edges_per_round[0],
            stats.edges_per_round[-1],
            f"{sum(stats.bytes_shipped_per_round)} B",
        ]

    publish(
        "merge_plane",
        format_table(
            ["tournament", "wall", "span", "span kind", "edges in",
             "edges out", "shipped"],
            [
                row("driver / dict", out["dict_wall"], dict_stats),
                row("driver / flat", out["flat_wall"], flat_stats),
                row(f"engine / flat ({WORKERS}w)", out["engine_wall"],
                    engine_stats),
            ],
            title=(
                f"Phase III-1 tournaments: {K} partitions, "
                f"{out['total_edges']} edges, {cores} core(s)"
            ),
        ),
    )

    # Bit-identical accounting across layouts and modes.
    for stats in (dict_stats, engine_stats):
        assert stats.edges_per_round == flat_stats.edges_per_round
        assert stats.resolved_per_round == flat_stats.resolved_per_round
        assert stats.removed_per_round == flat_stats.removed_per_round

    # Gate 1: the columnar layout wins the driver tournament outright.
    assert out["flat_wall"] * FLAT_SPEEDUP_MIN <= out["dict_wall"], (
        f"flat tournament {out['flat_wall']:.3f}s not "
        f"{FLAT_SPEEDUP_MIN}x faster than dict {out['dict_wall']:.3f}s"
    )

    # Gate 2: engine scheduling does not lose to the driver loop.
    assert engine_stats.mode == "engine" and engine_stats.span_is_measured
    assert all(b > 0 for b in engine_stats.bytes_shipped_per_round)
    if cores >= PARALLEL_GATE_CORES:
        assert out["engine_wall"] <= out["flat_wall"], (
            f"engine tournament {out['engine_wall']:.3f}s lost to driver "
            f"{out['flat_wall']:.3f}s on a {cores}-core machine"
        )
    else:
        assert out["engine_wall"] <= (
            out["flat_wall"] * SERIAL_SUBSTRATE_TOLERANCE
        ), (
            f"engine overhead {out['engine_wall']:.3f}s exceeds "
            f"{SERIAL_SUBSTRATE_TOLERANCE}x driver {out['flat_wall']:.3f}s"
        )
    # Machine-independent: the per-round slowest-match critical path
    # (what >= round-width cores would execute) undercuts the driver
    # wall with real headroom.  Driver-mode match times are used — on an
    # oversubscribed substrate the engine's per-match walls include the
    # time slices stolen by sibling workers.
    assert flat_stats.critical_path_seconds() <= 0.8 * out["flat_wall"]
