"""Figure 15: speed-up vs number of cores (5 -> 40), Cosmo50.

Methodology (see DESIGN.md substitutions): measure every phase's
per-task durations once, then compute the *total elapsed time* a
w-worker cluster would need, per phase:

* Phase I-1 (shuffle) — perfectly divisible: ``t / w``;
* Phases I-2, II, III-2 — maps over partitions: greedy makespan of the
  measured task times on ``w`` workers;
* broadcast load — once per executor, concurrently: constant;
* Phase III-1 — the tournament's critical path (each round's matches
  run in parallel, Sec 6.1.1): constant in ``w`` (for ``w >= k/2``);
* region-split baselines: their partitioning plan and shared-point merge
  are driver-side in their published designs, so they count as serial.

Paper shape: RP-DBSCAN reaches ~4.4x at 40 cores while the region-split
family saturates around 2.9-3.2x.
"""

from common import BENCH_MIN_PTS, bench_dataset, publish, run_once

from repro import RPDBSCAN
from repro.baselines import CBPDBSCAN, ESPDBSCAN, RBPDBSCAN
from repro.bench.reporting import format_table
from repro.core.rp_dbscan import (
    PHASE_CELL_GRAPH,
    PHASE_DICTIONARY,
    PHASE_LABEL,
    PHASE_PARTITION,
)
from repro.data.datasets import DATASETS
from repro.engine.simulate import PhaseSchedule

WORKERS = [5, 10, 20, 40]
TASKS = 40


def _rp_schedule(result) -> PhaseSchedule:
    counters = result.counters
    i2_tasks = counters.task_times(PHASE_DICTIONARY)
    broadcast = max(
        0.0, counters.phase_seconds.get(PHASE_DICTIONARY, 0.0) - sum(i2_tasks)
    )
    return (
        PhaseSchedule()
        .add_divisible(counters.phase_seconds.get(PHASE_PARTITION, 0.0))
        .add_parallel(i2_tasks)
        .add_constant(broadcast)
        .add_parallel(counters.task_times(PHASE_CELL_GRAPH))
        .add_constant(result.merge_stats.critical_path_seconds())
        .add_parallel(counters.task_times(PHASE_LABEL))
    )


def _region_schedule(result) -> PhaseSchedule:
    serial = result.phase_seconds.get("partition", 0.0) + result.phase_seconds.get(
        "merge", 0.0
    )
    return PhaseSchedule().add_constant(serial).add_parallel(result.split_task_seconds)


def run_experiment():
    points = bench_dataset("Cosmo50")
    eps = DATASETS["Cosmo50"].eps10 / 2  # paper uses eps=0.02 of 4-step grid
    curves = {}

    rp = RPDBSCAN(eps, BENCH_MIN_PTS, TASKS, seed=0).fit(points)
    curves["RP-DBSCAN"] = _rp_schedule(rp).speedups(WORKERS)

    for name, cls in (
        ("ESP-DBSCAN", ESPDBSCAN),
        ("RBP-DBSCAN", RBPDBSCAN),
        ("CBP-DBSCAN", CBPDBSCAN),
    ):
        result = cls(eps, BENCH_MIN_PTS, TASKS).fit(points)
        curves[name] = _region_schedule(result).speedups(WORKERS)
    return curves


def test_fig15_core_scalability(benchmark):
    curves = run_once(benchmark, run_experiment)

    table = [
        [name, *(round(curve[w], 2) for w in WORKERS)]
        for name, curve in curves.items()
    ]
    publish(
        "fig15_core_scalability",
        format_table(
            ["algorithm", *(f"{w} cores" for w in WORKERS)],
            table,
            title="Fig 15: speed-up over 5 cores (simulated scheduler replay)",
        ),
    )

    rp = curves["RP-DBSCAN"]
    # Monotone climb for RP-DBSCAN...
    assert rp[5] <= rp[10] <= rp[20] <= rp[40]
    # ...with meaningful scaling at 40 workers,
    assert rp[40] > 2.0
    # ...and at 40 cores RP-DBSCAN scales at least as well as the
    # region-split family as a whole.  At bench scale (20k points) the
    # broadcast/merge constants cap RP's curve, so the comparison is
    # against the family median with noise slack; the paper's clear
    # 4.40-vs-3.2 separation needs cluster scale (see EXPERIMENTS.md).
    import statistics

    family = statistics.median(
        curves[name][40] for name in ("ESP-DBSCAN", "RBP-DBSCAN", "CBP-DBSCAN")
    )
    assert rp[40] >= family * 0.8, (rp[40], family)
