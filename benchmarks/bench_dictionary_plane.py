"""The columnar data plane vs the dict layout, measured.

Three claims the flat cell dictionary rides on, each asserted with a
generous tolerance so the gate catches regressions, not timer jitter:

* **build** — ``FlatCellDictionary.from_points`` (one ``np.unique``
  sweep) must not be slower than ``CellDictionary.from_points`` (python
  dict of per-cell dataclasses) by more than ``TOLERANCE``;
* **batch queries** — an (ε,ρ)-region query sweep over every cell via
  the flat engine (CSR gathers) must not regress past ``TOLERANCE``
  times the dict engine (per-cell list concatenation), while returning
  bit-identical results;
* **broadcast payload** — the shm-channel export of the flat layout
  (descriptor blob + one shared segment mapped once per machine) must
  pickle to *strictly* fewer per-worker bytes than the dict layout's
  full pickle stream, and the vectorized bit-packed serializer must
  beat a scalar reference implementation.

The published table records the measured numbers for the bench artifact.
"""

import pickle
import time

import numpy as np
from common import bench_dataset, publish, run_once

from repro.bench.reporting import format_table
from repro.core.cells import CellGeometry
from repro.core.dictionary import CellDictionary, FlatCellDictionary
from repro.core.region_query import RegionQueryEngine
from repro.core.serialization import (
    _pack_local_coords,
    _unpack_local_coords,
    deserialize_flat_dictionary,
    serialize_dictionary,
)
from repro.engine.shm import export_broadcast

N_POINTS = 20_000
EPS = 2.0
RHO = 0.03
REPEATS = 3
#: Flat must stay within this factor of the dict path (jitter headroom;
#: in practice the columnar path wins outright).
TOLERANCE = 1.5


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    out = None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def _scalar_pack(coords: np.ndarray, bits_per_axis: int) -> bytes:
    """Pre-vectorization reference encoder: python loop over bits."""
    bit_list = []
    for value in coords.reshape(-1).tolist():
        for b in range(bits_per_axis):
            bit_list.append((value >> b) & 1)
    out = bytearray((len(bit_list) + 7) // 8)
    for position, bit in enumerate(bit_list):
        if bit:
            out[position >> 3] |= 1 << (position & 7)
    return bytes(out)


def run_experiment():
    points = bench_dataset("GeoLife", N_POINTS)
    geometry = CellGeometry(eps=EPS, dim=points.shape[1], rho=RHO)

    dict_build_s, dict_dictionary = _best_of(
        lambda: CellDictionary.from_points(points, geometry)
    )
    flat_build_s, flat = _best_of(
        lambda: FlatCellDictionary.from_points(points, geometry)
    )

    cells = [flat.cell_at(row) for row in range(flat.num_cells)]
    groups: dict[tuple, list[int]] = {}
    for i, cid in enumerate(map(tuple, geometry.cell_ids(points).tolist())):
        groups.setdefault(cid, []).append(i)

    def sweep(engine):
        total = 0.0
        for cell_id in cells:
            total += float(
                engine.query_cell_batch(cell_id, points[groups[cell_id]]).counts.sum()
            )
        return total

    dict_engine = RegionQueryEngine(dict_dictionary)
    flat_engine = RegionQueryEngine(flat)
    sweep(dict_engine) and sweep(flat_engine)  # warm the center caches
    dict_query_s, dict_total = _best_of(lambda: sweep(dict_engine))
    flat_query_s, flat_total = _best_of(lambda: sweep(flat_engine))

    dict_payload = len(pickle.dumps(dict_dictionary, pickle.HIGHEST_PROTOCOL))
    blob, flats = export_broadcast(flat)
    shm_payload = len(blob)

    bits = geometry.h - 1
    pack_s, packed = _best_of(lambda: _pack_local_coords(flat.sub_coords, bits))
    scalar_s, scalar_packed = _best_of(lambda: _scalar_pack(flat.sub_coords, bits))
    stream = serialize_dictionary(flat)
    round_trip = deserialize_flat_dictionary(stream)

    return {
        "dict_build_s": dict_build_s,
        "flat_build_s": flat_build_s,
        "dict_query_s": dict_query_s,
        "flat_query_s": flat_query_s,
        "dict_total": dict_total,
        "flat_total": flat_total,
        "dict_payload": dict_payload,
        "shm_payload": shm_payload,
        "num_flats": len(flats),
        "segment_bytes": sum(
            getattr(flat, name).nbytes
            for name in (
                "cell_ids", "cell_counts", "offsets",
                "sub_coords", "sub_counts", "sub_centers",
            )
        ),
        "pack_s": pack_s,
        "scalar_pack_s": scalar_s,
        "pack_identical": packed == scalar_packed,
        "unpack_ok": np.array_equal(
            _unpack_local_coords(packed, flat.num_subcells, geometry.dim, bits),
            flat.sub_coords,
        ),
        "round_trip_ok": np.array_equal(round_trip.cell_ids, flat.cell_ids)
        and np.array_equal(round_trip.sub_counts, flat.sub_counts),
        "num_cells": flat.num_cells,
        "num_subcells": flat.num_subcells,
    }


def test_dictionary_plane(benchmark):
    out = run_once(benchmark, run_experiment)

    table = [
        ["build", f"{out['dict_build_s']:.4f}s", f"{out['flat_build_s']:.4f}s",
         f"{out['dict_build_s'] / max(out['flat_build_s'], 1e-9):.2f}x"],
        ["query sweep", f"{out['dict_query_s']:.4f}s", f"{out['flat_query_s']:.4f}s",
         f"{out['dict_query_s'] / max(out['flat_query_s'], 1e-9):.2f}x"],
        ["broadcast payload", f"{out['dict_payload']} B", f"{out['shm_payload']} B",
         f"{out['dict_payload'] / max(out['shm_payload'], 1):.0f}x"],
        ["bit-pack", f"{out['scalar_pack_s']:.4f}s (scalar)",
         f"{out['pack_s']:.4f}s (vectorized)",
         f"{out['scalar_pack_s'] / max(out['pack_s'], 1e-9):.0f}x"],
    ]
    publish(
        "dictionary_plane",
        format_table(
            ["stage", "dict layout", "flat layout", "dict/flat"],
            table,
            title=(
                f"Columnar data plane (GeoLife {N_POINTS}, eps={EPS}, "
                f"rho={RHO}: {out['num_cells']} cells, "
                f"{out['num_subcells']} sub-cells; "
                f"shm segment {out['segment_bytes']} B, mapped once)"
            ),
        ),
    )

    # The sweeps computed identical density totals.
    assert out["flat_total"] == out["dict_total"]
    # Flat must not regress on build or batch queries.
    assert out["flat_build_s"] <= out["dict_build_s"] * TOLERANCE
    assert out["flat_query_s"] <= out["dict_query_s"] * TOLERANCE
    # The shm channel ships strictly fewer per-worker bytes than the
    # pickled dict-of-dataclasses, by a wide margin.
    assert out["num_flats"] == 1
    assert out["shm_payload"] * 10 < out["dict_payload"]
    # The vectorized bit-packer is byte-identical to the scalar
    # reference and strictly faster; unpack inverts exactly.
    assert out["pack_identical"]
    assert out["unpack_ok"]
    assert out["round_trip_ok"]
    assert out["pack_s"] < out["scalar_pack_s"]
