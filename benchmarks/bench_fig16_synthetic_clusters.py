"""Figure 16: clustering results of RP-DBSCAN on the synthetic sets.

The paper shows pictures of Moons, Blobs, and Chameleon "which look
correct".  Here the reproduction is quantitative + ASCII: RP-DBSCAN is
run on each set, the clustering is rendered as an ASCII scatter
(written to the results file), and correctness is asserted via the
expected cluster structure and agreement with exact DBSCAN.
"""

from common import publish, run_once

from repro import RPDBSCAN
from repro.baselines import ExactDBSCAN
from repro.bench.reporting import render_ascii_scatter
from repro.data import blobs, chameleon_like, moons
from repro.metrics import rand_index

WORKLOADS = {
    "Moons": (lambda: moons(10_000, seed=5), 0.08, 12, 2),
    "Blobs": (lambda: blobs(10_000, centers=3, std=0.3, spread=8.0, seed=5), 0.25, 12, 3),
    "Chameleon": (lambda: chameleon_like(10_000, seed=5), 0.12, 8, None),
}


def run_experiment():
    out = {}
    for name, (gen, eps, min_pts, expected) in WORKLOADS.items():
        points = gen()
        rp = RPDBSCAN(eps, min_pts, 8, seed=0).fit(points)
        exact = ExactDBSCAN(eps, min_pts).fit(points)
        out[name] = (points, rp, exact, expected)
    return out


def test_fig16_synthetic_clusterings(benchmark):
    results = run_once(benchmark, run_experiment)

    chunks = []
    for name, (points, rp, exact, expected) in results.items():
        ri = rand_index(exact.labels, rp.labels)
        chunks.append(
            f"--- {name}: {rp.n_clusters} clusters, {rp.noise_count} noise, "
            f"Rand index vs exact = {ri:.4f} ---\n"
            + render_ascii_scatter(points, rp.labels, width=72, height=20)
        )
        if expected is not None:
            assert rp.n_clusters == expected, name
        assert ri >= 0.999, name
    publish("fig16_synthetic_clusters", "\n\n".join(chunks))
