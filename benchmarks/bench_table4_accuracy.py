"""Table 4: Rand index of RP-DBSCAN vs exact DBSCAN for varying rho.

Paper values: Moons/Blobs 1.00 at every rho; Chameleon 0.98 / 0.99 /
1.00 for rho = 0.10 / 0.05 / 0.01.  Shape claims: the Rand index is
always >= 0.98, never decreases as rho shrinks, and reaches >= 0.9999
at the default rho = 0.01.
"""

from common import publish, run_once

from repro import RPDBSCAN
from repro.baselines import ExactDBSCAN
from repro.bench.reporting import format_table
from repro.data import blobs, chameleon_like, moons
from repro.metrics import rand_index

RHOS = [0.10, 0.05, 0.01]

WORKLOADS = {
    "Moons": (lambda: moons(10_000, seed=5), 0.08, 12),
    "Blobs": (lambda: blobs(10_000, centers=3, std=0.3, spread=8.0, seed=5), 0.25, 12),
    "Chameleon": (lambda: chameleon_like(10_000, seed=5), 0.12, 8),
}


def run_experiment():
    out = {}
    for name, (gen, eps, min_pts) in WORKLOADS.items():
        points = gen()
        exact = ExactDBSCAN(eps, min_pts).fit(points)
        scores = []
        for rho in RHOS:
            rp = RPDBSCAN(eps, min_pts, 8, rho=rho, seed=0).fit(points)
            scores.append(rand_index(exact.labels, rp.labels))
        out[name] = scores
    return out


def test_table4_accuracy(benchmark):
    results = run_once(benchmark, run_experiment)

    table = [[name, *(round(s, 4) for s in scores)] for name, scores in results.items()]
    publish(
        "table4_accuracy",
        format_table(
            ["data set", *(f"rho={rho}" for rho in RHOS)],
            table,
            title="Table 4: Rand index of RP-DBSCAN vs exact DBSCAN",
        ),
    )

    for name, scores in results.items():
        assert all(s >= 0.98 for s in scores), name
        # The paper reports 1.00 at two decimals; a handful of border
        # ties keep the index just below exact 1.0 on Chameleon.
        assert scores[-1] >= 0.999, f"{name} not DBSCAN-equivalent at rho=0.01"
        # Monotone improvement as rho shrinks, within the jitter of a
        # handful of border-point ties (paper reports 2 decimals).
        assert scores[2] >= scores[0] - 1e-3, name
