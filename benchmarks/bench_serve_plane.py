"""The serving plane, measured: micro-batching under closed-loop load.

Three phases against a real ``python -m repro.serve`` subprocess, all
driven by :data:`N_CLIENTS` closed-loop client threads sending
single-point predict requests (the serving-shaped workload: many tiny
concurrent queries):

1. **baseline** — the server configured request-at-a-time
   (``--max-batch 1 --batch-window 0``): every request pays the full
   frame + pipe + kernel overhead alone.
2. **batched** — the same server with the micro-batcher on
   (``--batch-window 2ms``): requests arriving together fuse into one
   columnar dispatch.  Gates: throughput at least
   :data:`SERVE_SPEEDUP_MIN` over the baseline, client-measured
   p99 ≤ :data:`TAIL_RATIO_MAX` × p50, and every served label
   bit-identical to offline ``ClusterModel.predict``.
3. **swap under load** — mid-phase, one control connection ingests a
   far-away blob, atomically swapping the resident model to epoch 2
   while the load keeps running.  Gates: **zero** failed requests, the
   swap is observed mid-stream (both epochs answer), and every label
   matches the offline prediction of the epoch that answered it.

The published table records both throughputs, the speedup, the latency
quantiles, and the swap ledger.
"""

import socket
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path
from random import Random

import numpy as np
from common import bench_dataset, publish, run_once

from repro import RPDBSCAN
from repro.bench.reporting import format_duration, format_table
from repro.core.prediction import ClusterModel
from repro.core.serialization import (
    deserialize_cluster_state,
    save_cluster_state,
    serialize_cluster_state,
)
from repro.data.datasets import DATASETS
from repro.engine.remote.protocol import (
    HEADER_SIZE,
    MSG_LABELS,
    MSG_PREDICT,
    decode_header,
    encode_frame,
)
from repro.serve import ServeClient
from repro.serve.wire import encode_points

N_POINTS = 20_000
MIN_PTS = 20
K = 8
N_CLIENTS = 64
QUERY_POOL = 512
PHASE_SECONDS = 4.0
#: Phase 3 runs longer: the mid-load ingest must *finish* with enough
#: phase left that epoch-2 answers are actually observed (the refit
#: contends with 64 load clients for the single CPU, so it is slow).
SWAP_PHASE_SECONDS = 10.0

#: Micro-batched throughput must beat request-at-a-time by this factor.
SERVE_SPEEDUP_MIN = 5.0
#: Client-measured tail bound under steady batched load.
TAIL_RATIO_MAX = 10.0

_LABELS_PREFIX = struct.Struct(">QQ")


def _start_server(model_path: Path, *extra: str) -> tuple[subprocess.Popen, int]:
    """Launch ``python -m repro.serve`` and wait for its READY line."""
    repo_root = Path(__file__).resolve().parent.parent
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.serve", "--model", str(model_path),
         "--port", "0", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=repo_root,
        env={
            **__import__("os").environ,
            "PYTHONPATH": str(repo_root / "src"),
        },
    )
    line = proc.stdout.readline()
    if "READY" not in line:
        proc.terminate()
        raise RuntimeError(
            f"server failed to start: {line!r}\n{proc.stderr.read()}"
        )
    fields = dict(f.split("=", 1) for f in line.split() if "=" in f)
    port = int(fields["port"])
    return proc, port


def _stop_server(proc: subprocess.Popen, port: int) -> None:
    try:
        with ServeClient("127.0.0.1", port, timeout_s=10.0) as client:
            client.shutdown()
    except Exception:
        proc.terminate()
    proc.wait(timeout=30.0)


def _read_frame_sync(sock: socket.socket) -> tuple[int, bytes]:
    buf = b""
    while len(buf) < HEADER_SIZE:
        chunk = sock.recv(HEADER_SIZE - len(buf))
        if not chunk:
            raise ConnectionError("server closed")
        buf += chunk
    msg_type, length = decode_header(buf)
    payload = b""
    while len(payload) < length:
        chunk = sock.recv(length - len(payload))
        if not chunk:
            raise ConnectionError("server closed")
        payload += chunk
    return msg_type, payload


class _ClientResult:
    __slots__ = ("latencies", "records", "error")

    def __init__(self):
        self.latencies: list[float] = []
        self.records: list[tuple[int, int, int]] = []
        self.error: Exception | None = None


def _client_loop(port, frames, stop_at, seed, result):
    """Closed loop: one prebuilt single-point request at a time."""
    rng = Random(seed)
    try:
        sock = socket.create_connection(("127.0.0.1", port), timeout=60.0)
        try:
            while time.perf_counter() < stop_at:
                idx = rng.randrange(len(frames))
                start = time.perf_counter()
                sock.sendall(frames[idx])
                msg_type, payload = _read_frame_sync(sock)
                result.latencies.append(time.perf_counter() - start)
                if msg_type != MSG_LABELS:
                    raise RuntimeError(
                        f"request failed: type={msg_type} {payload[:128]!r}"
                    )
                epoch, _ = _LABELS_PREFIX.unpack_from(payload)
                (label,) = struct.unpack_from(
                    "<q", payload, _LABELS_PREFIX.size
                )
                result.records.append((idx, epoch, label))
        finally:
            sock.close()
    except Exception as exc:
        result.error = exc


def _run_load(port, frames, seconds, *, mid_load=None):
    """Drive N_CLIENTS closed-loop threads; returns results + elapsed."""
    stop_at = time.perf_counter() + seconds
    results = [_ClientResult() for _ in range(N_CLIENTS)]
    threads = [
        threading.Thread(
            target=_client_loop, args=(port, frames, stop_at, i, results[i])
        )
        for i in range(N_CLIENTS)
    ]
    start = time.perf_counter()
    for t in threads:
        t.start()
    if mid_load is not None:
        time.sleep(seconds / 8)
        mid_load()
    for t in threads:
        t.join(timeout=seconds + 120.0)
    elapsed = time.perf_counter() - start
    return results, elapsed


def run_experiment(tmp_dir: Path):
    points = bench_dataset("GeoLife", N_POINTS)
    eps = DATASETS["GeoLife"].eps10 / 4
    state = RPDBSCAN(eps, MIN_PTS, K, seed=0).fit(points).state
    model_path = tmp_dir / "serve_bench.rpst"
    save_cluster_state(state, model_path)

    # The query pool: points around the fitted data, one per request,
    # with their offline ground-truth labels for both epochs.
    rng = np.random.default_rng(0)
    queries = points[rng.integers(0, N_POINTS, QUERY_POOL)] + rng.normal(
        0.0, eps / 2, (QUERY_POOL, points.shape[1])
    )
    offline_pre = ClusterModel.from_state(state).predict(queries)
    ingest_blob = rng.normal(0.0, eps, (64, points.shape[1])) + 1e4
    post_state = deserialize_cluster_state(serialize_cluster_state(state))
    post_state.ingest(ingest_blob)
    offline_post = ClusterModel.from_state(post_state).predict(queries)
    frames = [
        encode_frame(MSG_PREDICT, encode_points(queries[i : i + 1]))
        for i in range(QUERY_POOL)
    ]

    # ---- phase 1: request-at-a-time baseline --------------------------
    proc, port = _start_server(
        model_path, "--max-batch", "1", "--batch-window", "0"
    )
    try:
        base_results, base_elapsed = _run_load(port, frames, PHASE_SECONDS)
    finally:
        _stop_server(proc, port)
    base_done = sum(len(r.records) for r in base_results)
    base_errors = [r.error for r in base_results if r.error is not None]

    # ---- phase 2: micro-batched -------------------------------------
    proc, port = _start_server(
        model_path, "--max-batch", "1024", "--batch-window", "0.002"
    )
    try:
        batch_results, batch_elapsed = _run_load(port, frames, PHASE_SECONDS)
    finally:
        _stop_server(proc, port)
    batch_done = sum(len(r.records) for r in batch_results)
    batch_errors = [r.error for r in batch_results if r.error is not None]
    latencies = np.concatenate(
        [np.asarray(r.latencies) for r in batch_results if r.latencies]
    )

    # ---- phase 3: model swap under load ------------------------------
    proc, port = _start_server(
        model_path, "--max-batch", "1024", "--batch-window", "0.002",
        "--workers", "2",
    )
    swap_ack = {}

    def do_swap():
        with ServeClient("127.0.0.1", port, timeout_s=120.0) as control:
            swap_ack.update(control.ingest(ingest_blob))

    try:
        swap_results, _ = _run_load(
            port, frames, SWAP_PHASE_SECONDS, mid_load=do_swap
        )
    finally:
        _stop_server(proc, port)
    swap_errors = [r.error for r in swap_results if r.error is not None]
    swap_records = [rec for r in swap_results for rec in r.records]

    return {
        "base_done": base_done,
        "base_elapsed": base_elapsed,
        "base_errors": base_errors,
        "base_records": [rec for r in base_results for rec in r.records],
        "batch_done": batch_done,
        "batch_elapsed": batch_elapsed,
        "batch_errors": batch_errors,
        "batch_records": [rec for r in batch_results for rec in r.records],
        "latencies": latencies,
        "swap_errors": swap_errors,
        "swap_records": swap_records,
        "swap_ack": swap_ack,
        "offline_pre": offline_pre,
        "offline_post": offline_post,
        "n_core": ClusterModel.from_state(state).n_core_points,
    }


def _check_records(records, offline_pre, offline_post):
    """Every served label must match the offline model of its epoch."""
    mismatches = 0
    for idx, epoch, label in records:
        expect = offline_pre[idx] if epoch == 1 else offline_post[idx]
        if label != expect:
            mismatches += 1
    return mismatches


def test_serve_plane(benchmark, tmp_path):
    out = run_once(benchmark, lambda: run_experiment(tmp_path))

    base_rate = out["base_done"] / out["base_elapsed"]
    batch_rate = out["batch_done"] / out["batch_elapsed"]
    speedup = batch_rate / base_rate
    p50 = float(np.percentile(out["latencies"], 50))
    p99 = float(np.percentile(out["latencies"], 99))
    epochs_seen = sorted({epoch for _, epoch, _ in out["swap_records"]})

    publish(
        "serve_plane",
        format_table(
            ["phase", "requests", "throughput", "notes"],
            [
                [
                    "request-at-a-time",
                    f"{out['base_done']:,}",
                    f"{base_rate:,.0f} req/s",
                    f"{N_CLIENTS} closed-loop clients",
                ],
                [
                    "micro-batched (2ms window)",
                    f"{out['batch_done']:,}",
                    f"{batch_rate:,.0f} req/s",
                    f"{speedup:.1f}x baseline",
                ],
                [
                    "latency (batched)",
                    f"p50 {format_duration(p50)}",
                    f"p99 {format_duration(p99)}",
                    f"tail ratio {p99 / p50:.1f}x",
                ],
                [
                    "swap under load",
                    f"{len(out['swap_records']):,}",
                    f"epochs {epochs_seen}",
                    f"0 failures, ingest "
                    f"{format_duration(out['swap_ack'].get('ingest_seconds', 0.0))}",
                ],
            ],
            title=(
                f"serve plane: {out['n_core']} core points resident in shm, "
                "labels bit-identical to offline predict"
            ),
        ),
    )

    # Correctness before any speed claim counts.
    assert out["base_errors"] == [] and out["batch_errors"] == []
    assert _check_records(
        out["base_records"], out["offline_pre"], out["offline_post"]
    ) == 0, "baseline served labels diverge from offline predict"
    assert _check_records(
        out["batch_records"], out["offline_pre"], out["offline_post"]
    ) == 0, "batched served labels diverge from offline predict"

    # Gate 1: micro-batching amortizes per-request overhead.
    assert speedup >= SERVE_SPEEDUP_MIN, (
        f"batched {batch_rate:,.0f} req/s is only {speedup:.1f}x the "
        f"request-at-a-time baseline {base_rate:,.0f} req/s "
        f"(gate: {SERVE_SPEEDUP_MIN}x)"
    )

    # Gate 2: batching must not trade the tail away.
    assert p99 <= TAIL_RATIO_MAX * p50, (
        f"p99 {p99 * 1e3:.1f}ms exceeds {TAIL_RATIO_MAX}x "
        f"p50 {p50 * 1e3:.1f}ms"
    )

    # Gate 3: the ingest swap happened mid-load, atomically: zero failed
    # requests, both epochs answered, and every answer matches the
    # offline prediction of the model that served it.
    assert out["swap_errors"] == [], (
        f"requests failed during the swap: {out['swap_errors'][:3]}"
    )
    assert out["swap_ack"].get("epoch") == 2
    assert epochs_seen == [1, 2], (
        f"swap not observed mid-load (epochs answered: {epochs_seen})"
    )
    assert _check_records(
        out["swap_records"], out["offline_pre"], out["offline_post"]
    ) == 0, "served labels diverged during the swap"
