"""Figure 13: load imbalance of local clustering vs ε.

The paper: "RP-DBSCAN ... achieved nearly perfect load balance
regardless of the value of ε" while region splits fail, dramatically so
on the heavily skewed GeoLife (RP-DBSCAN 1.44 vs RBP-DBSCAN ~600 at the
largest ε).

Shape claims: on the skewed GeoLife stand-in, RP-DBSCAN's imbalance is
the lowest of the four algorithms at every ε, and it stays below a small
constant.
"""

from common import (
    BENCH_MIN_PTS,
    TIMEOUT_S,
    bench_dataset,
    eps_grid,
    publish,
    region_split_algorithms,
    run_once,
)

from repro.bench.harness import run_comparison
from repro.bench.reporting import format_table


def run_experiment():
    out = {}
    for name in ("GeoLife", "Cosmo50", "OpenStreetMap"):
        points = bench_dataset(name)
        for eps in eps_grid(name):
            rows = run_comparison(
                region_split_algorithms(eps, BENCH_MIN_PTS),
                points,
                timeout_s=TIMEOUT_S,
                params={"dataset": name, "eps": eps},
            )
            out[(name, eps)] = {r.algorithm: r for r in rows}
    return out


def test_fig13_load_imbalance(benchmark):
    results = run_once(benchmark, run_experiment)

    algorithms = ["ESP-DBSCAN", "RBP-DBSCAN", "CBP-DBSCAN", "RP-DBSCAN"]
    table = [
        [name, round(eps, 4), *(by_algo[a].load_imbalance for a in algorithms)]
        for (name, eps), by_algo in results.items()
    ]
    publish(
        "fig13_load_imbalance",
        format_table(
            ["dataset", "eps", *algorithms],
            table,
            title="Fig 13: load imbalance (slowest/fastest split)",
        ),
    )

    geolife = [v for (name, _), v in results.items() if name == "GeoLife"]
    for by_algo in geolife:
        rp = by_algo["RP-DBSCAN"].load_imbalance
        others = [
            by_algo[a].load_imbalance
            for a in ("ESP-DBSCAN", "RBP-DBSCAN", "CBP-DBSCAN")
            if not by_algo[a].timed_out
        ]
        assert others, "all region splits timed out on GeoLife"
        # Minimum at every eps, with slack for timer noise on sub-second
        # tasks (the paper's margin is 1.44 vs hundreds).
        assert rp <= min(others) * 1.25, "a region split balanced better than RP"
        assert rp < 4.0, f"RP-DBSCAN imbalance {rp} too high on skewed data"
