"""Table 5: size of the two-level cell dictionary vs ε.

Paper values: 0.04% - 8.20% of the data-set size; the ratio shrinks as ε
grows (larger cells -> fewer entries).  At bench scale (1e3-1e4 points)
absolute ratios are larger than at the paper's 1e9 scale — fewer points
share a sub-cell — so the asserted shape is the monotone trend in ε plus
a scale experiment showing the ratio falls as N grows.
"""

from common import BENCH_MIN_PTS, bench_dataset, eps_grid, publish, run_once

from repro.bench.reporting import format_table
from repro.core.cells import CellGeometry
from repro.core.dictionary import CellDictionary
from repro.data.datasets import DATASETS


def run_experiment():
    ratios = {}
    for name in ("GeoLife", "Cosmo50", "OpenStreetMap", "TeraClickLog"):
        points = bench_dataset(name)
        row = []
        for eps in eps_grid(name):
            geometry = CellGeometry(eps, points.shape[1], rho=0.01)
            dictionary = CellDictionary.from_points(points, geometry)
            row.append(dictionary.size_model().ratio_to_data(points.shape[0]))
        ratios[name] = row

    # Scale trend on one data set: ratio falls with N.
    scale_ratios = []
    for n in (2000, 8000, 32_000):
        points = DATASETS["OpenStreetMap"].generator(n, seed=0)
        geometry = CellGeometry(DATASETS["OpenStreetMap"].eps10, 2, rho=0.01)
        dictionary = CellDictionary.from_points(points, geometry)
        scale_ratios.append(dictionary.size_model().ratio_to_data(n))
    return ratios, scale_ratios


def test_table5_dictionary_size(benchmark):
    ratios, scale_ratios = run_once(benchmark, run_experiment)

    table = [
        [name, *(f"{r:.2%}" for r in row)] for name, row in ratios.items()
    ]
    publish(
        "table5_dictionary_size",
        format_table(
            ["dataset", "eps10/8", "eps10/4", "eps10/2", "eps10"],
            table,
            title="Table 5: dictionary size as a fraction of the data",
        )
        + "\n\nOpenStreetMap ratio vs N (2k/8k/32k): "
        + ", ".join(f"{r:.2%}" for r in scale_ratios),
    )

    for name, row in ratios.items():
        # Monotone shrink as eps grows (Table 5's trend).
        assert all(a >= b - 1e-9 for a, b in zip(row, row[1:])), name
    # Compression improves with data size (the 1e9-scale regime where
    # the paper's 0.04-8.2% numbers live).
    assert scale_ratios[0] > scale_ratios[1] > scale_ratios[2]
