"""Shared machinery for the table/figure reproduction benches.

Every bench follows the same pattern: run the experiment once (under
``benchmark.pedantic`` so pytest-benchmark records its wall time), render
the paper-style table with :mod:`repro.bench.reporting`, write it to
``benchmarks/results/<name>.txt``, print it, and assert the paper's
*shape* claims (who wins, monotonicity, crossovers) — never absolute
numbers, since the substrate is a simulator, not the authors' cluster.

Workload sizes here are laptop-scale versions of the paper's: DESIGN.md
documents the substitution.
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path

import numpy as np

from repro import RPDBSCAN
from repro.baselines import (
    CBPDBSCAN,
    ESPDBSCAN,
    NGDBSCAN,
    RBPDBSCAN,
    SparkDBSCAN,
)
from repro.data.datasets import DATASETS

RESULTS_DIR = Path(__file__).parent / "results"

#: Bench-scale point counts per data set (paper scale in Table 3 is
#: 2.5e7 ... 4.4e9; the shapes reproduce at 1e3-1e4).
BENCH_SIZES = {
    "GeoLife": 20_000,
    "Cosmo50": 20_000,
    "OpenStreetMap": 20_000,
    "TeraClickLog": 4000,
}

#: minPts used at bench scale (the paper uses 100 at cluster scale).
BENCH_MIN_PTS = 20

#: Per-run wall-clock budget, mirroring the paper's 20,000 s cutoff.
TIMEOUT_S = 120.0


@lru_cache(maxsize=None)
def bench_dataset(name: str, n: int | None = None) -> np.ndarray:
    """The cached stand-in data set at bench scale."""
    spec = DATASETS[name]
    return spec.generator(n or BENCH_SIZES[name], seed=0)


def eps_grid(name: str) -> list[float]:
    """The paper's ε grid: {ε10/8, ε10/4, ε10/2, ε10} (Sec 7.1.4)."""
    eps10 = DATASETS[name].eps10
    return [eps10 / 8, eps10 / 4, eps10 / 2, eps10]


def parallel_algorithms(eps: float, min_pts: int, k: int = 8) -> dict:
    """Factories for the six parallel algorithms of Table 2."""
    return {
        "SPARK-DBSCAN": lambda: SparkDBSCAN(eps, min_pts, k),
        "NG-DBSCAN": lambda: NGDBSCAN(eps, min_pts, seed=0),
        "ESP-DBSCAN": lambda: ESPDBSCAN(eps, min_pts, k),
        "RBP-DBSCAN": lambda: RBPDBSCAN(eps, min_pts, k),
        "CBP-DBSCAN": lambda: CBPDBSCAN(eps, min_pts, k),
        "RP-DBSCAN": lambda: RPDBSCAN(eps, min_pts, k, seed=0),
    }


def region_split_algorithms(eps: float, min_pts: int, k: int = 8) -> dict:
    """The region-split family plus RP-DBSCAN (Figs 13-14)."""
    return {
        "ESP-DBSCAN": lambda: ESPDBSCAN(eps, min_pts, k),
        "RBP-DBSCAN": lambda: RBPDBSCAN(eps, min_pts, k),
        "CBP-DBSCAN": lambda: CBPDBSCAN(eps, min_pts, k),
        "RP-DBSCAN": lambda: RPDBSCAN(eps, min_pts, k, seed=0),
    }


def publish(name: str, text: str) -> None:
    """Write a reproduction table to the results dir and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
