"""Ablation: cell-level random partitioning + dictionary vs alternatives.

DESIGN.md design-choice ablations:

1. **Pseudo random vs naive random split** — drop the cell dictionary
   (the naive baseline of Sec 2.2.1) and accuracy falls; RP-DBSCAN keeps
   Rand index ~1.0 under the same random-split regime.
2. **random_key vs shuffle cell assignment** — both preserve the exact
   clustering; shuffle trades the paper's fidelity for slightly tighter
   partition-size balance.
"""

import numpy as np

from common import publish, run_once

from repro import RPDBSCAN
from repro.baselines import ExactDBSCAN, NaiveRandomDBSCAN
from repro.bench.reporting import format_table
from repro.data import chameleon_like
from repro.metrics import rand_index

EPS, MIN_PTS, K = 0.12, 8, 8


def run_experiment():
    points = chameleon_like(8000, seed=5)
    exact = ExactDBSCAN(EPS, MIN_PTS).fit(points)
    rp = RPDBSCAN(EPS, MIN_PTS, K, seed=0).fit(points)
    naive = NaiveRandomDBSCAN(EPS, MIN_PTS, K, seed=0).fit(points)
    shuffled = RPDBSCAN(EPS, MIN_PTS, K, seed=0, partition_method="shuffle").fit(
        points
    )
    return {
        "exact": exact,
        "rp_random_key": rp,
        "rp_shuffle": shuffled,
        "naive_random": naive,
    }


def test_ablation_partitioning(benchmark):
    results = run_once(benchmark, run_experiment)
    exact = results["exact"]

    rows = []
    for name in ("rp_random_key", "rp_shuffle", "naive_random"):
        result = results[name]
        rows.append(
            [
                name,
                result.n_clusters,
                result.noise_count,
                round(rand_index(exact.labels, result.labels), 4),
            ]
        )
    publish(
        "ablation_partitioning",
        format_table(
            ["variant", "clusters", "noise", "Rand index vs exact"],
            rows,
            title="Ablation: partitioning strategy & the cell dictionary",
        ),
    )

    ri_rp = rand_index(exact.labels, results["rp_random_key"].labels)
    ri_shuffle = rand_index(exact.labels, results["rp_shuffle"].labels)
    ri_naive = rand_index(exact.labels, results["naive_random"].labels)
    assert ri_rp >= 0.999
    assert ri_shuffle >= 0.999
    # The dictionary is what pays for accuracy under random splitting.
    assert ri_naive <= ri_rp

    # Shuffle assignment balances partition sizes at least as tightly.
    sizes_key = np.array(results["rp_random_key"].partition_sizes, dtype=float)
    sizes_shuffle = np.array(results["rp_shuffle"].partition_sizes, dtype=float)
    assert sizes_shuffle.std() <= sizes_key.std() * 1.5
