"""The Phase II kernel plane, measured: compiled vs vectorized numpy.

The acceptance gate for the kernel plane (ROADMAP item 3): on the
reference bench — GeoLife stand-in at :data:`N_POINTS` (>= 50k) points —
the numba backend's Phase II wall (the ``II cell graph`` counter bucket)
must be at least :data:`NUMBA_SPEEDUP_MIN` times faster than the numpy
backend's, while labels, core flags, and per-cell density counts stay
bit-identical across ``kernel x dictionary_layout``, and JIT warm-up
never leaks into a phase timing (it lands in the ``engine.setup``
bucket, visible in the run report).

The whole module skips when numba is absent: the container's numba-free
tier-1 run pins the fallback path, the CI ``kernels`` job (which
installs the ``kernels`` extra) runs this gate and uploads the published
table as an artifact.
"""

import numpy as np
import pytest

from common import bench_dataset, publish, run_once

from repro.bench.reporting import format_duration, format_table
from repro.core.cells import CellGeometry
from repro.core.dictionary import FlatCellDictionary
from repro.core.region_query import RegionQueryEngine
from repro.core.rp_dbscan import PHASE_CELL_GRAPH, PHASES, RPDBSCAN
from repro.data.datasets import DATASETS
from repro.kernels import HAVE_NUMBA

pytestmark = pytest.mark.skipif(
    not HAVE_NUMBA, reason="kernel bench gate needs numba (the 'kernels' extra)"
)

N_POINTS = 50_000  # the acceptance gate's ">= 50k points"
MIN_PTS = 20
K = 8

#: Compiled Phase II must beat vectorized numpy by at least this factor
#: on the reference bench (the acceptance criterion's "2x").
NUMBA_SPEEDUP_MIN = 2.0

#: The layouts the identity half of the gate sweeps.  ("flat" rides the
#: fused CSR kernel, "dict" the gathered one — both must win nothing
#: and lose nothing correctness-wise.)
LAYOUTS = ("flat", "dict")


def _fit(kernel: str, layout: str = "flat"):
    points = bench_dataset("GeoLife", N_POINTS)
    eps = DATASETS["GeoLife"].eps10 / 4
    model = RPDBSCAN(
        eps=eps,
        min_pts=MIN_PTS,
        num_partitions=K,
        seed=0,
        kernel=kernel,
        dictionary_layout=layout,
    )
    return model.fit(points)


def _per_cell_density_counts(kernel: str) -> np.ndarray:
    """Every cell's batch-query density counts under ``kernel``.

    The raw Phase II quantity (Algorithm 3 line 8) before any core
    thresholding — the finest-grained output the gate can compare.
    """
    points = bench_dataset("GeoLife", N_POINTS)
    eps = DATASETS["GeoLife"].eps10 / 4
    geometry = CellGeometry(eps, points.shape[1], 0.01)
    dictionary = FlatCellDictionary.from_points(points, geometry)
    engine = RegionQueryEngine(dictionary, kernel=kernel)
    engine.warmup_kernel()
    blocks = []
    for row in dictionary.cell_ids[:: max(1, dictionary.num_cells // 200)]:
        cell = tuple(int(x) for x in row)
        blocks.append(engine.query_cell_batch(cell, points[:256]).counts)
    return np.concatenate(blocks)


def run_experiment():
    results = {
        (kernel, layout): _fit(kernel, layout)
        for kernel in ("numpy", "numba")
        for layout in LAYOUTS
    }
    density = {
        kernel: _per_cell_density_counts(kernel) for kernel in ("numpy", "numba")
    }
    return {"results": results, "density": density}


def test_phase2_kernels(benchmark):
    out = run_once(benchmark, run_experiment)
    results = out["results"]
    reference = results[("numpy", "flat")]

    # ---- identity half of the gate: kernel x dictionary_layout -------
    for (kernel, layout), result in results.items():
        np.testing.assert_array_equal(
            result.labels, reference.labels,
            err_msg=f"labels diverged for kernel={kernel} layout={layout}",
        )
        np.testing.assert_array_equal(
            result.core_mask, reference.core_mask,
            err_msg=f"core flags diverged for kernel={kernel} layout={layout}",
        )
        assert result.n_clusters == reference.n_clusters
    np.testing.assert_array_equal(
        out["density"]["numba"], out["density"]["numpy"],
        err_msg="per-cell density counts diverged between kernels",
    )

    # ---- timing half: compiled Phase II wins by the required factor --
    numpy_phase2 = reference.counters.phase_seconds[PHASE_CELL_GRAPH]
    numba_result = results[("numba", "flat")]
    numba_phase2 = numba_result.counters.phase_seconds[PHASE_CELL_GRAPH]
    speedup = numpy_phase2 / numba_phase2

    # ---- warm-up accounting: JIT cost in setup, never in phases ------
    for result in results.values():
        assert set(result.counters.phase_seconds) <= set(PHASES)
        assert "warmup" in result.counters.setup_seconds
    # The compiled run actually compiled under the warm-up hook (first
    # numba fit of this process pays the JIT there, visibly).
    assert numba_result.counters.setup_seconds["warmup"] >= 0.0

    rows = [
        [
            f"{kernel} / {layout}",
            format_duration(result.counters.phase_seconds[PHASE_CELL_GRAPH]),
            format_duration(result.counters.setup_seconds.get("warmup", 0.0)),
            format_duration(result.total_seconds),
            result.n_clusters,
        ]
        for (kernel, layout), result in sorted(results.items())
    ]
    publish(
        "phase2_kernels",
        format_table(
            ["kernel / layout", "phase II", "warmup (setup)", "total", "clusters"],
            rows,
            title=(
                f"Phase II kernels: GeoLife {N_POINTS} pts, k={K}, "
                f"numba/numpy speedup {speedup:.1f}x (gate >= "
                f"{NUMBA_SPEEDUP_MIN:g}x)"
            ),
        ),
    )

    assert numba_phase2 * NUMBA_SPEEDUP_MIN <= numpy_phase2, (
        f"numba Phase II {numba_phase2:.3f}s not {NUMBA_SPEEDUP_MIN}x faster "
        f"than numpy {numpy_phase2:.3f}s ({speedup:.2f}x)"
    )
