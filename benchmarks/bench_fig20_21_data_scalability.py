"""Figures 20-21: scalability to the data size (Appendix B.3).

Workload: 5-d Gaussian mixture with alpha = 8, sizes spanning 16x (the
paper spans 5 GB -> 80 GB; here 2k -> 32k points).

Paper shapes:
* Fig 20 — elapsed time grows near-linearly with data size (paper:
  15.2x time for 16x data);
* Fig 21 — Phase II's share of the time grows with data size (to ~80%)
  while Phases I and III stay minor.
"""

from common import publish, run_once

from repro import RPDBSCAN
from repro.bench.reporting import format_table, render_stacked_bars
from repro.core.rp_dbscan import PHASE_CELL_GRAPH, PHASES
from repro.data.generators import gaussian_mixture

SIZES = [2000, 4000, 8000, 16_000, 32_000]
EPS = 5.0
MIN_PTS = 20


def run_experiment():
    out = {}
    for n in SIZES:
        points = gaussian_mixture(n, dim=5, components=10, alpha=8.0, seed=0)
        result = RPDBSCAN(EPS, MIN_PTS, 16, seed=0).fit(points)
        out[n] = (result.total_seconds, result.phase_breakdown())
    return out


def test_fig20_21_data_scalability(benchmark):
    results = run_once(benchmark, run_experiment)

    time_rows = [[n, round(results[n][0], 3)] for n in SIZES]
    breakdown_rows = [
        [n, *(round(results[n][1][phase], 3) for phase in PHASES)] for n in SIZES
    ]
    publish(
        "fig20_21_data_scalability",
        format_table(["n", "elapsed (s)"], time_rows, title="Fig 20: elapsed vs size")
        + "\n\n"
        + format_table(
            ["n", *PHASES], breakdown_rows, title="Fig 21: breakdown vs size"
        )
        + "\n\n"
        + render_stacked_bars({n: results[n][1] for n in SIZES}),
    )

    times = [results[n][0] for n in SIZES]
    # Time grows with size...
    assert all(a <= b * 1.15 for a, b in zip(times, times[1:])), times
    # ...and near-linearly: 16x data costs at most ~3x-per-doubling
    # worse than linear (paper: 15.2x for 16x; allow generous slack for
    # Python constant factors).
    assert times[-1] / times[0] < 16 * 3, times
    # Phase II dominates at the largest size (Fig 21's 80%).
    top_breakdown = results[SIZES[-1]][1]
    assert top_breakdown[PHASE_CELL_GRAPH] == max(top_breakdown.values())
    assert top_breakdown[PHASE_CELL_GRAPH] > 0.4
