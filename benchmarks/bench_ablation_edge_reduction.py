"""Ablation: tournament edge reduction on vs off (Sec 6.1.4).

Edge reduction exists to keep intermediate merged graphs small (Fig 17);
switching it off must leave the clustering identical while intermediate
edge counts stay at their unreduced size.
"""

import numpy as np

from common import BENCH_MIN_PTS, bench_dataset, publish, run_once

from repro.bench.reporting import format_table
from repro.core.cells import CellGeometry
from repro.core.construction import QueryContext, build_cell_subgraph
from repro.core.dictionary import CellDictionary
from repro.core.labeling import build_labeling_context, label_partition
from repro.core.merging import progressive_merge
from repro.core.partitioning import pseudo_random_partition
from repro.data.datasets import DATASETS

K = 16


def cluster_with(points, eps, min_pts, reduce_edges):
    geometry = CellGeometry(eps, points.shape[1], 0.01)
    partitions = pseudo_random_partition(points, geometry, K, seed=0)
    dictionary = CellDictionary.from_points(points, geometry)
    context = QueryContext(dictionary)
    results = [build_cell_subgraph(p, context, min_pts) for p in partitions]
    graph, stats = progressive_merge(
        [r.graph for r in results], reduce_edges=reduce_edges
    )
    labeling = build_labeling_context(
        graph, partitions, {r.pid: r.core_mask for r in results}, eps,
        dictionary.index_map,
    )
    labels = np.full(points.shape[0], -1, dtype=np.int64)
    for partition in partitions:
        indices, chunk = label_partition(partition, labeling)
        labels[indices] = chunk
    return labels, stats


def run_experiment():
    points = bench_dataset("Cosmo50")
    eps = DATASETS["Cosmo50"].eps10 / 2
    with_reduction = cluster_with(points, eps, BENCH_MIN_PTS, True)
    without_reduction = cluster_with(points, eps, BENCH_MIN_PTS, False)
    return with_reduction, without_reduction


def test_ablation_edge_reduction(benchmark):
    (labels_on, stats_on), (labels_off, stats_off) = run_once(
        benchmark, run_experiment
    )

    rows = [
        ["reduction ON", *stats_on.edges_per_round],
        ["reduction OFF", *stats_off.edges_per_round],
    ]
    max_rounds = max(len(r) - 1 for r in rows)
    publish(
        "ablation_edge_reduction",
        format_table(
            ["variant", *(f"round {i}" for i in range(max_rounds))],
            rows,
            title="Ablation: edges per merge round with/without reduction",
        ),
    )

    # Identical clustering either way (cluster *numbering* may differ —
    # a different spanning forest yields different component
    # representatives — so compare the partitions, not the label ids).
    from repro.metrics import rand_index

    assert rand_index(labels_on, labels_off) == 1.0
    # Reduction keeps every round at or below the unreduced size, and
    # strictly smaller by the final round on this workload.
    for a, b in zip(stats_on.edges_per_round, stats_off.edges_per_round):
        assert a <= b
    assert stats_on.edges_per_round[-1] < stats_off.edges_per_round[-1]
