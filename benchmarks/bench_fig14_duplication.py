"""Figure 14: total number of points processed (data duplication) vs ε.

The paper: RP-DBSCAN processes exactly N points ("this total number is
always equal to the number of points in the data set owing to pseudo
random partitioning"), while region splits process up to 7.3x more;
RBP-DBSCAN duplicates the least of the three because minimizing halo
points is its objective.
"""

from common import (
    BENCH_MIN_PTS,
    TIMEOUT_S,
    bench_dataset,
    eps_grid,
    publish,
    region_split_algorithms,
    run_once,
)

from repro.bench.harness import run_comparison
from repro.bench.reporting import format_table


def run_experiment():
    out = {}
    for name in ("GeoLife", "Cosmo50", "OpenStreetMap"):
        points = bench_dataset(name)
        for eps in eps_grid(name):
            rows = run_comparison(
                region_split_algorithms(eps, BENCH_MIN_PTS),
                points,
                timeout_s=TIMEOUT_S,
                params={"dataset": name, "eps": eps, "n": points.shape[0]},
            )
            out[(name, eps, points.shape[0])] = {r.algorithm: r for r in rows}
    return out


def test_fig14_duplication(benchmark):
    results = run_once(benchmark, run_experiment)

    algorithms = ["ESP-DBSCAN", "RBP-DBSCAN", "CBP-DBSCAN", "RP-DBSCAN"]
    table = [
        [name, round(eps, 4), n, *(by_algo[a].points_processed for a in algorithms)]
        for (name, eps, n), by_algo in results.items()
    ]
    publish(
        "fig14_duplication",
        format_table(
            ["dataset", "eps", "n", *algorithms],
            table,
            title="Fig 14: total points processed across splits",
        ),
    )

    for (name, eps, n), by_algo in results.items():
        rp = by_algo["RP-DBSCAN"]
        # The invariant the figure highlights: RP-DBSCAN processes each
        # point exactly once.
        assert rp.points_processed == n, (name, eps)
        for other in ("ESP-DBSCAN", "RBP-DBSCAN", "CBP-DBSCAN"):
            row = by_algo[other]
            if not row.timed_out:
                assert row.points_processed >= n, (name, other)
