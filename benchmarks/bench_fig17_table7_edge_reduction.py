"""Figure 17 / Table 7: edges remaining after each tournament round.

The paper: the number of cell-graph edges drops sharply every round
(TeraClickLog: 4.4e8 -> 2.53e6 over five rounds), which is what makes
the final single-machine merge feasible.

Shape claims: the edge count is non-increasing across rounds, the first
round removes a substantial fraction, and the tournament has
ceil(log2(k)) rounds.
"""

import math

from common import BENCH_MIN_PTS, bench_dataset, eps_grid, publish, run_once

from repro import RPDBSCAN
from repro.bench.reporting import format_table

PARTITIONS = 32  # 32 splits -> five tournament rounds, as in the paper


def run_experiment():
    out = {}
    for name in ("GeoLife", "Cosmo50", "OpenStreetMap", "TeraClickLog"):
        points = bench_dataset(name)
        for eps in eps_grid(name)[2:]:  # the two largest eps, like Fig 17
            result = RPDBSCAN(eps, BENCH_MIN_PTS, PARTITIONS, seed=0).fit(points)
            out[(name, eps)] = result.merge_stats
    return out


def test_fig17_table7_edge_reduction(benchmark):
    stats = run_once(benchmark, run_experiment)

    max_rounds = max(len(s.edges_per_round) for s in stats.values())
    table = [
        [name, round(eps, 4), *s.edges_per_round]
        for (name, eps), s in stats.items()
    ]
    publish(
        "fig17_table7_edge_reduction",
        format_table(
            ["dataset", "eps", *(f"round {i}" for i in range(max_rounds))],
            table,
            title="Fig 17 / Table 7: edges remaining after each merge round",
        ),
    )

    for (name, eps), merge_stats in stats.items():
        rounds = merge_stats.edges_per_round
        assert len(rounds) == 1 + math.ceil(math.log2(PARTITIONS))
        assert all(a >= b for a, b in zip(rounds, rounds[1:])), (name, eps)
        if rounds[0] > 0:
            # Substantial reduction overall (paper: orders of magnitude).
            assert rounds[-1] <= rounds[0] * 0.7, (name, eps, rounds)
