"""Engine overhead: persistent pool + broadcast caching vs. naive setup.

The paper's speed claims rest on Spark broadcast semantics: the
two-level cell dictionary is shipped to each executor *once*, and the
executors live for the whole job.  This bench quantifies what the
``process`` engine's persistent pool and epoch-tagged broadcast cache
save relative to the naive alternative (a fresh pool per fit, i.e. per
three mapped phases), and verifies the setup-vs-compute accounting that
keeps the Fig 12/13 reproductions clean:

* **persistent** — one ``Engine("process")`` reused across ``FITS``
  consecutive fits: the pool starts once, and each distinct broadcast is
  shipped to each worker once.
* **fresh-pool** — a new ``Engine("process")`` per fit, closed after
  each: pool startup is paid every fit (the pre-rework engine paid it
  every *phase*).
* **serial** — the in-process baseline, no setup at all.

Asserted claims are counter-based (deterministic), not wall-clock: the
persistent engine creates exactly one pool and ships exactly three
broadcasts per fit, and its lifetime setup cost is strictly below the
fresh-pool regime's.
"""

from common import BENCH_MIN_PTS, bench_dataset, publish, run_once

from repro import RPDBSCAN
from repro.bench.reporting import format_table
from repro.data.datasets import DATASETS
from repro.engine import Engine

FITS = 3
WORKERS = 2
PARTITIONS = 8


def _fit_times(engine_factory, close_each: bool):
    """Run FITS fits, returning (results, engines) for accounting."""
    points = bench_dataset("GeoLife", 8000)
    eps = DATASETS["GeoLife"].eps10
    engines = []
    results = []
    engine = None
    for _ in range(FITS):
        if engine is None or close_each:
            engine = engine_factory()
            engines.append(engine)
        model = RPDBSCAN(eps, BENCH_MIN_PTS, PARTITIONS, seed=0, engine=engine)
        results.append(model.fit(points))
        if close_each:
            engine.close()
    if not close_each and engine is not None:
        engine.close()
    return results, engines


def run_experiment():
    out = {}

    results, engines = _fit_times(
        lambda: Engine("process", num_workers=WORKERS), close_each=False
    )
    (persistent,) = engines
    out["persistent"] = {
        "pools": persistent.pools_created,
        "ships": persistent.broadcast_ships,
        "setup_s": persistent.counters.setup_total(),
        "compute_s": sum(r.total_seconds for r in results),
        "results": results,
    }

    results, engines = _fit_times(
        lambda: Engine("process", num_workers=WORKERS), close_each=True
    )
    out["fresh-pool"] = {
        "pools": sum(e.pools_created for e in engines),
        "ships": sum(e.broadcast_ships for e in engines),
        "setup_s": sum(e.counters.setup_total() for e in engines),
        "compute_s": sum(r.total_seconds for r in results),
        "results": results,
    }

    results, engines = _fit_times(lambda: Engine("serial"), close_each=False)
    (serial,) = engines
    out["serial"] = {
        "pools": 0,
        "ships": 0,
        "setup_s": serial.counters.setup_total(),
        "compute_s": sum(r.total_seconds for r in results),
        "results": results,
    }
    return out


def test_engine_overhead(benchmark):
    out = run_once(benchmark, run_experiment)

    table = [
        [
            name,
            row["pools"],
            row["ships"],
            round(row["setup_s"], 4),
            round(row["compute_s"], 4),
            round(row["setup_s"] + row["compute_s"], 4),
        ]
        for name, row in out.items()
    ]
    publish(
        "engine_overhead",
        format_table(
            ["regime", "pools", "broadcast ships", "setup s", "compute s", "total s"],
            table,
            title=(
                f"Engine overhead over {FITS} fits "
                f"(GeoLife 8k, k={PARTITIONS}, {WORKERS} workers)"
            ),
        ),
    )

    persistent, fresh, serial = out["persistent"], out["fresh-pool"], out["serial"]
    # One pool for the engine's lifetime vs. one per fit.
    assert persistent["pools"] == 1
    assert fresh["pools"] == FITS
    # Three distinct broadcasts per fit (geometry, query context,
    # labeling context), each shipped exactly once.
    assert persistent["ships"] == 3 * FITS
    assert fresh["ships"] == 3 * FITS
    # Pool reuse removes per-fit startup: only the first persistent fit
    # records pool_startup setup, while every fresh-pool fit pays it.
    # (Wall-clock deltas are reported in the table but not asserted —
    # a ~15 ms fork startup drowns in timer noise on small boxes.)
    assert "pool_startup" in persistent["results"][0].counters.setup_seconds
    for result in persistent["results"][1:]:
        assert "pool_startup" not in result.counters.setup_seconds
    for result in fresh["results"]:
        assert "pool_startup" in result.counters.setup_seconds
    # Serial mode pays driver-side warm-up only: no pool, no shipping.
    for result in serial["results"]:
        assert set(result.counters.setup_seconds) <= {"warmup"}
    # All regimes agree on the clustering itself.
    ref = serial["results"][0]
    for row in out.values():
        for result in row["results"]:
            assert result.n_clusters == ref.n_clusters
            assert result.noise_count == ref.noise_count
