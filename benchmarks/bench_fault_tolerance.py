"""Fault tolerance: recovery-loop overhead and the cost of chaos.

Beyond the paper: Spark gave the authors task retries, straggler
re-execution, and executor replacement for free; this bench quantifies
what the repo's driver-side recovery loop costs and what recovering from
injected faults costs, on one workload across four regimes:

* **baseline** — the plain process engine, no fault policy (the
  zero-overhead fast path).
* **policy-calm** — the recovery loop enabled but no faults injected:
  its pure bookkeeping overhead, which should be small.
* **exception-chaos** — a seeded injector raises in >= 1 attempt-0 task
  per fit; recovery is retry + backoff.
* **crash-chaos** — a seeded injector kills one worker per fit;
  recovery is a full pool re-spawn with a broadcast re-ship.

Asserted claims are structural, not wall-clock: every regime produces
the baseline's labels bit-for-bit; the calm policy records zero fault
events; each chaos regime records exactly the events its injector
forces; and fault buckets never leak into phase breakdowns (respawn
overhead lands in the setup bucket instead).
"""

from common import BENCH_MIN_PTS, bench_dataset, publish, run_once

import numpy as np

from repro import RPDBSCAN
from repro.bench.reporting import format_table
from repro.core import PHASES
from repro.data.datasets import DATASETS
from repro.engine import Engine, FaultInjector, FaultPolicy

WORKERS = 2
PARTITIONS = 8

#: The parallel phases a fit maps through the engine (single-task and
#: driver-side phases see no injection).
_PARALLEL_PHASES = ("I-2 dictionary", "II cell graph", "III-2 labeling")


def _exception_injector() -> FaultInjector:
    """Seeded so >= 1 attempt-0 task raises and every retry is clean."""
    for seed in range(100_000):
        inj = FaultInjector(exception_prob=0.1, seed=seed)
        hit = any(
            inj.decide(p, t, 0).exception
            for p in _PARALLEL_PHASES
            for t in range(PARTITIONS)
        )
        clean = all(
            not inj.decide(p, t, a).any
            for p in _PARALLEL_PHASES
            for t in range(PARTITIONS)
            for a in (1, 2, 3)
        )
        if hit and clean:
            return inj
    raise AssertionError("no suitable exception-chaos seed found")


def _crash_injector() -> FaultInjector:
    """Seeded so exactly one attempt-0 task kills its worker."""
    for seed in range(100_000):
        inj = FaultInjector(crash_prob=0.02, seed=seed)
        faults = [
            (p, t, a)
            for p in _PARALLEL_PHASES
            for t in range(PARTITIONS)
            for a in range(4)
            if inj.decide(p, t, a).any
        ]
        if len(faults) == 1 and faults[0][2] == 0:
            return inj
    raise AssertionError("no suitable crash-chaos seed found")


def _fit(policy: FaultPolicy | None):
    points = bench_dataset("GeoLife", 8000)
    eps = DATASETS["GeoLife"].eps10
    with Engine("process", num_workers=WORKERS, fault_policy=policy) as engine:
        result = RPDBSCAN(
            eps, BENCH_MIN_PTS, PARTITIONS, seed=0, engine=engine
        ).fit(points)
        return result, engine.pools_created, engine.broadcast_ships


def run_experiment():
    calm = FaultPolicy(max_retries=3, backoff_base_s=0.01, speculative=False)
    chaos_exc = FaultPolicy(
        max_retries=5,
        backoff_base_s=0.01,
        speculative=False,
        injector=_exception_injector(),
    )
    chaos_crash = FaultPolicy(
        max_retries=5,
        backoff_base_s=0.01,
        speculative=False,
        injector=_crash_injector(),
    )
    out = {}
    for name, policy in [
        ("baseline", None),
        ("policy-calm", calm),
        ("exception-chaos", chaos_exc),
        ("crash-chaos", chaos_crash),
    ]:
        result, pools, ships = _fit(policy)
        out[name] = {
            "result": result,
            "pools": pools,
            "ships": ships,
            "events": dict(result.fault_events),
            "setup_s": result.setup_seconds,
            "compute_s": result.total_seconds,
        }
    return out


def test_fault_tolerance(benchmark):
    out = run_once(benchmark, run_experiment)

    table = [
        [
            name,
            row["events"].get("retries", 0),
            row["events"].get("timeouts", 0),
            row["events"].get("respawns", 0),
            row["pools"],
            round(row["setup_s"], 4),
            round(row["compute_s"], 4),
        ]
        for name, row in out.items()
    ]
    publish(
        "fault_tolerance",
        format_table(
            ["regime", "retries", "timeouts", "respawns", "pools", "setup s", "compute s"],
            table,
            title=(
                f"Fault tolerance on GeoLife 8k "
                f"(k={PARTITIONS}, {WORKERS} workers)"
            ),
        ),
    )

    baseline = out["baseline"]["result"]
    # Recovery never changes a label: every regime reproduces the
    # baseline bit-for-bit, faults or not.
    for name, row in out.items():
        np.testing.assert_array_equal(row["result"].labels, baseline.labels)

    # The calm policy is pure bookkeeping: no events, one pool.
    assert out["policy-calm"]["events"] == {}
    assert out["policy-calm"]["pools"] == 1

    # Exception chaos recovers by retrying; the pool survives.
    assert out["exception-chaos"]["events"].get("retries", 0) >= 1
    assert out["exception-chaos"]["pools"] == 1

    # Crash chaos recovers by re-spawning the pool and re-shipping the
    # broadcast under a fresh epoch.
    assert out["crash-chaos"]["events"].get("respawns", 0) == 1
    assert out["crash-chaos"]["pools"] == 2
    assert out["crash-chaos"]["ships"] > out["baseline"]["ships"]

    # Fault buckets stay out of the paper's phase accounting; respawn
    # overhead is accounted as engine setup, not phase time.
    for row in out.values():
        assert set(row["result"].counters.phase_seconds) <= set(PHASES)
        assert set(row["result"].counters.breakdown()) <= set(PHASES)
