"""Figures 18-19 and Table 8: impact of data skewness (Appendix B.2).

Workload: the Appendix B.1 Gaussian mixtures with skewness coefficient
alpha in {1/8, 1/4, 1/2, 1} and dimensionality in {3, 4, 5} (Fig 18 is
the data itself; its generation is asserted here via the spread trend).

Paper shapes:
* Fig 19a — RP-DBSCAN's load imbalance grows mildly with alpha (from
  ~1.1-1.3 to ~1.5-2.2) but stays near-perfect in absolute terms;
* Table 8 — the dictionary gets *smaller* as skewness increases (fewer
  non-empty cells) and larger as dimensionality grows.
"""

import numpy as np

from common import publish, run_once

from repro import RPDBSCAN
from repro.bench.reporting import format_table
from repro.core.cells import CellGeometry
from repro.core.dictionary import CellDictionary
from repro.data.generators import gaussian_mixture

ALPHAS = [1 / 8, 1 / 4, 1 / 2, 1.0]
DIMS = [3, 4, 5]
N = 8000
EPS = 5.0  # Appendix B.1: eps = 5, minPts = 100 (scaled to bench size)
MIN_PTS = 20


def run_experiment():
    imbalance = {}
    elapsed = {}
    dict_bytes = {}
    for dim in DIMS:
        for alpha in ALPHAS:
            points = gaussian_mixture(
                N, dim=dim, components=10, alpha=alpha, seed=0
            )
            result = RPDBSCAN(EPS, MIN_PTS, 16, seed=0).fit(points)
            imbalance[(dim, alpha)] = result.load_imbalance
            elapsed[(dim, alpha)] = result.total_seconds
            geometry = CellGeometry(EPS, dim, rho=0.01)
            dictionary = CellDictionary.from_points(points, geometry)
            dict_bytes[(dim, alpha)] = dictionary.size_model().total_bytes
    return imbalance, elapsed, dict_bytes


def test_fig19_skewness_and_table8(benchmark):
    imbalance, elapsed, dict_bytes = run_once(benchmark, run_experiment)

    rows_imb = [
        [f"{dim}D", *(round(imbalance[(dim, a)], 2) for a in ALPHAS)] for dim in DIMS
    ]
    rows_time = [
        [f"{dim}D", *(round(elapsed[(dim, a)], 2) for a in ALPHAS)] for dim in DIMS
    ]
    rows_dict = [
        [f"{dim}D", *(f"{dict_bytes[(dim, a)] / 1024:.0f}K" for a in ALPHAS)]
        for dim in DIMS
    ]
    header = ["dim", *(f"alpha={a}" for a in ALPHAS)]
    publish(
        "fig19_skewness_table8",
        "\n\n".join(
            [
                format_table(header, rows_imb, title="Fig 19a: load imbalance vs skewness"),
                format_table(header, rows_time, title="Fig 19b: elapsed time (s) vs skewness"),
                format_table(header, rows_dict, title="Table 8: dictionary size vs skewness"),
            ]
        ),
    )

    # Fig 18's defining property: higher alpha -> tighter clusters.
    loose = gaussian_mixture(4000, dim=3, components=1, alpha=ALPHAS[0], seed=1)
    tight = gaussian_mixture(4000, dim=3, components=1, alpha=ALPHAS[-1], seed=1)
    assert tight.std(axis=0).mean() < loose.std(axis=0).mean()

    for dim in DIMS:
        series = [imbalance[(dim, a)] for a in ALPHAS]
        # The paper's primary claim: load balance stays near-perfect
        # even at the highest skew.  (The paper's mild upward trend with
        # alpha — 1.33->1.47 etc. — is smaller than run-to-run timer
        # noise on sub-second tasks, so it is reported in the table but
        # not asserted.)
        assert max(series) < 5.0, (dim, series)

    # Table 8 trends: smaller with skewness, larger with dimension.
    for dim in DIMS:
        assert dict_bytes[(dim, ALPHAS[-1])] <= dict_bytes[(dim, ALPHAS[0])], dim
    for alpha in ALPHAS:
        assert dict_bytes[(5, alpha)] >= dict_bytes[(3, alpha)], alpha
