"""Ablation: dictionary defragmentation + sub-dictionary skipping.

Sec 4.2.2 / 5.2: BSP defragmentation keeps contiguous cells together so
an (eps, rho)-region query touches few sub-dictionaries, and MBR-based
skipping makes the untouched ones free — without changing any result.

Measured: identical clustering, plus the average number of
sub-dictionaries a query would have to load, which must be a small
fraction of the total.
"""

import numpy as np

from common import BENCH_MIN_PTS, bench_dataset, publish, run_once

from repro import RPDBSCAN
from repro.bench.reporting import format_table
from repro.data.datasets import DATASETS


def run_experiment():
    points = bench_dataset("OpenStreetMap")
    eps = DATASETS["OpenStreetMap"].eps10
    plain = RPDBSCAN(eps, BENCH_MIN_PTS, 8, seed=0).fit(points)
    capacities = [256, 1024, 4096]
    defrag = {
        cap: RPDBSCAN(
            eps, BENCH_MIN_PTS, 8, seed=0, defragment_capacity=cap
        ).fit(points)
        for cap in capacities
    }
    return plain, defrag


def test_ablation_defragmentation(benchmark):
    plain, defrag = run_once(benchmark, run_experiment)

    rows = []
    for cap, result in defrag.items():
        num_subdicts, avg_consulted = result.subdict_stats
        rows.append(
            [
                cap,
                num_subdicts,
                round(avg_consulted, 2),
                round(avg_consulted / num_subdicts, 4),
            ]
        )
    publish(
        "ablation_defragmentation",
        format_table(
            ["capacity", "sub-dicts", "avg consulted/query", "fraction"],
            rows,
            title="Ablation: sub-dictionary skipping effectiveness",
        ),
    )

    for cap, result in defrag.items():
        # Results must be identical to the monolithic dictionary.
        np.testing.assert_array_equal(result.labels, plain.labels)
        num_subdicts, avg_consulted = result.subdict_stats
        if num_subdicts > 4:
            # Queries touch a small fraction of the sub-dictionaries:
            # that is the memory the paper's skipping saves.
            assert avg_consulted / num_subdicts < 0.5, (cap, result.subdict_stats)
