"""The model plane, measured: batch serving and incremental refit.

Two gates from the ClusterState rework, phrased as regressions rather
than timer jitter:

* **batch serving wins** — ``ClusterModel.predict`` on 50,000 queries
  (drawn around the fitted data, the serving-shaped workload) must beat
  a per-point prediction loop by at least :data:`BATCH_SPEEDUP_MIN` on
  wall time while returning the exact same labels.  The win comes from
  the model plane's columnar layout: one batched candidate sweep over
  the distinct query cells (scalar packed keys, one ``searchsorted``)
  plus a fused segmented distance/argmin pass instead of per-query
  binary searches.
* **incremental refit is sublinear** — ingesting the last
  :data:`INGEST_FRACTION` of the data into a state fitted on the rest
  must cost at most :data:`INGEST_WALL_MAX_FRACTION` of a from-scratch
  fit on everything, while leaving the state **bit-identical** to that
  full fit (labels, core flags, cell labels).  The dirty-cell ledger in
  the published table shows why: only the eps-neighborhood of the
  touched cells is recomputed.

The published table records walls, throughputs, the speedup and refit
ratios, and the dirty-cell fraction for the bench artifact.
"""

import time

import numpy as np
from common import bench_dataset, publish, run_once

from repro import RPDBSCAN
from repro.bench.reporting import format_duration, format_table
from repro.core.prediction import ClusterModel
from repro.core.serialization import (
    deserialize_cluster_state,
    serialize_cluster_state,
)
from repro.data.datasets import DATASETS

N_POINTS = 20_000
N_QUERIES = 50_000
MIN_PTS = 20
K = 8
REPEATS = 3

#: Fraction of the data arriving after the initial fit.
INGEST_FRACTION = 0.01
#: Batch predict must beat the per-point loop by at least this factor
#: (measured ~20x on the reference container).
BATCH_SPEEDUP_MIN = 10.0
#: A 1% ingest must cost at most this fraction of a full refit
#: (measured ~0.2x on the reference container).
INGEST_WALL_MAX_FRACTION = 0.3


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    out = None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def run_experiment():
    points = bench_dataset("GeoLife", N_POINTS)
    eps = DATASETS["GeoLife"].eps10 / 4
    cut = int(N_POINTS * (1 - INGEST_FRACTION))
    base, late = points[:cut], points[cut:]

    # ---- full refit baseline vs incremental ingest --------------------
    full_wall, full = _best_of(
        lambda: RPDBSCAN(eps, MIN_PTS, K, seed=0).fit(points)
    )
    base_blob = serialize_cluster_state(
        RPDBSCAN(eps, MIN_PTS, K, seed=0).fit(base).state
    )

    def one_ingest():
        state = deserialize_cluster_state(base_blob)
        report = state.ingest(late)
        return state, report

    ingest_wall, (state, report) = _best_of(one_ingest)
    ingest_identical = bool(
        np.array_equal(state.labels, full.labels)
        and np.array_equal(state.core_mask, full.core_mask)
        and np.array_equal(state.cell_labels, full.state.cell_labels)
    )

    # ---- batch predict vs the per-point loop --------------------------
    model = ClusterModel.from_state(full.state)
    rng = np.random.default_rng(0)
    queries = points[rng.integers(0, N_POINTS, N_QUERIES)] + rng.normal(
        0.0, eps / 2, (N_QUERIES, points.shape[1])
    )
    model.predict(queries[:64])  # warm candidate tables
    batch_wall, batch_labels = _best_of(lambda: model.predict(queries))

    loop_labels = np.empty(N_QUERIES, dtype=np.int64)
    loop_start = time.perf_counter()
    for i in range(N_QUERIES):
        loop_labels[i] = model.predict(queries[i : i + 1])[0]
    loop_wall = time.perf_counter() - loop_start

    return {
        "full_wall": full_wall,
        "ingest_wall": ingest_wall,
        "report": report,
        "ingest_identical": ingest_identical,
        "n_clusters": full.n_clusters,
        "batch_wall": batch_wall,
        "loop_wall": loop_wall,
        "labels_match": bool(np.array_equal(batch_labels, loop_labels)),
        "n_core": model.n_core_points,
    }


def test_model_plane(benchmark):
    out = run_once(benchmark, run_experiment)
    report = out["report"]
    speedup = out["loop_wall"] / out["batch_wall"]
    refit_ratio = out["ingest_wall"] / out["full_wall"]

    publish(
        "model_plane",
        format_table(
            ["scenario", "wall", "throughput", "vs baseline"],
            [
                [
                    f"batch predict ({N_QUERIES} queries)",
                    format_duration(out["batch_wall"]),
                    f"{N_QUERIES / out['batch_wall']:,.0f} q/s",
                    f"{speedup:.1f}x faster than the loop",
                ],
                [
                    "per-point predict loop",
                    format_duration(out["loop_wall"]),
                    f"{N_QUERIES / out['loop_wall']:,.0f} q/s",
                    "baseline",
                ],
                [
                    f"incremental ingest ({late_label()})",
                    format_duration(out["ingest_wall"]),
                    f"{report.cells_dirty}/{report.cells_total} cells dirty",
                    f"{refit_ratio:.2f}x of a full refit",
                ],
                [
                    f"full refit ({N_POINTS} points)",
                    format_duration(out["full_wall"]),
                    f"{out['n_clusters']} clusters",
                    "baseline",
                ],
            ],
            title=(
                f"model plane: {out['n_core']} core points served, "
                f"bit-identical ingest = {out['ingest_identical']}"
            ),
        ),
    )

    # Both paths agree everywhere before any speed claim counts.
    assert out["labels_match"], "batch and per-point labels disagree"
    assert out["ingest_identical"], "ingest is not bit-identical to refit"

    # Gate 1: batch serving amortizes — 10x over the per-point loop.
    assert out["batch_wall"] * BATCH_SPEEDUP_MIN <= out["loop_wall"], (
        f"batch predict {out['batch_wall']:.3f}s not "
        f"{BATCH_SPEEDUP_MIN}x faster than loop {out['loop_wall']:.3f}s"
    )

    # Gate 2: a 1% ingest does sublinear work, and the ledger proves it
    # touched only a fraction of the cells.
    assert out["ingest_wall"] <= (
        out["full_wall"] * INGEST_WALL_MAX_FRACTION
    ), (
        f"ingest {out['ingest_wall']:.3f}s exceeds "
        f"{INGEST_WALL_MAX_FRACTION}x full refit {out['full_wall']:.3f}s"
    )
    assert report.cells_dirty < report.cells_total / 2, (
        "dirty-cell invalidation touched most of the grid"
    )
    assert report.edges_retained > 0


def late_label() -> str:
    return f"{int(N_POINTS * INGEST_FRACTION)} pts, {INGEST_FRACTION:.0%}"
