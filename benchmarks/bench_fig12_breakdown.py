"""Figure 12: breakdown of RP-DBSCAN elapsed time into the five phases.

The paper finds Phase II (cell graph construction) dominates (31-68%,
growing with data size), while Phase I (partitioning + dictionary) and
Phase III (merging + labeling) stay small — "parallel processing ...
comes at little additional cost for pre-processing and post-processing".
"""

from common import BENCH_MIN_PTS, bench_dataset, publish, run_once

from repro import RPDBSCAN
from repro.bench.reporting import format_table, render_stacked_bars
from repro.core.rp_dbscan import PHASE_CELL_GRAPH, PHASES
from repro.data.datasets import DATASETS


def run_experiment():
    out = {}
    for name in ("GeoLife", "Cosmo50", "OpenStreetMap", "TeraClickLog"):
        points = bench_dataset(name)
        result = RPDBSCAN(DATASETS[name].eps10, BENCH_MIN_PTS, 8, seed=0).fit(points)
        out[name] = result.phase_breakdown()
    return out


def test_fig12_phase_breakdown(benchmark):
    breakdowns = run_once(benchmark, run_experiment)

    table = [
        [name, *(round(b[phase], 3) for phase in PHASES)]
        for name, b in breakdowns.items()
    ]
    publish(
        "fig12_breakdown",
        format_table(
            ["dataset", *PHASES],
            table,
            title="Fig 12: RP-DBSCAN elapsed-time breakdown (fractions)",
        )
        + "\n\n"
        + render_stacked_bars(breakdowns),
    )

    for name, breakdown in breakdowns.items():
        assert sum(breakdown.values()) == __import__("pytest").approx(1.0)
        # Phase II dominates, as in the paper.
        assert breakdown[PHASE_CELL_GRAPH] == max(breakdown.values()), name
        assert breakdown[PHASE_CELL_GRAPH] > 0.3, name
