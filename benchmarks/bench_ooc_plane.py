"""The out-of-core sharded data plane, measured.

Two claims the budgeted partial broadcast rides on, asserted with the
usual jitter headroom:

* **bounded residency** — a process-mode fit driven from a
  memory-mapped source with ``broadcast_budget`` set must keep every
  worker's peak resident broadcast bytes at or under the budget, while
  the total shard payload shipped through shared memory *exceeds* the
  budget (i.e. the run genuinely paged shards in and out rather than
  fitting everything at once);
* **bounded slowdown** — the budgeted run's wall time must stay within
  ``TOLERANCE`` times the full-broadcast wall time: the LRU shard cache
  trades a bounded amount of re-attachment churn for the memory cap.

Labels must be bit-identical between the two runs — the budget is a
residency knob, never an accuracy knob.

The published table records the measured numbers for the bench artifact.
"""

import tempfile
import time
from pathlib import Path

import numpy as np
from common import bench_dataset, eps_grid, publish, run_once

from repro import RPDBSCAN
from repro.bench.reporting import format_table
from repro.data.streaming import MemmapSource
from repro.engine import Engine

N_POINTS = 20_000
MIN_PTS = 20
PARTITIONS = 8
NUM_WORKERS = 2
REPEATS = 2
#: Worker-resident broadcast budget, deliberately below the full shard
#: payload at this scale (~2 MB) so the LRU cache has to evict, but not
#: so tight that attach churn dominates the wall time.
BUDGET = 512 * 1024
#: The budgeted run must stay within this factor of the full-broadcast
#: wall time (jitter headroom on top of the real churn cost).
TOLERANCE = 1.3


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    out = None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


def run_experiment():
    points = bench_dataset("GeoLife", N_POINTS)
    eps = eps_grid("GeoLife")[2]

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "points.npy"
        np.save(path, points)

        # Both runs ingest from the same memory-mapped source so the only
        # variable under test is the broadcast mode: full (every worker
        # maps the whole dictionary) vs budgeted (LRU partial residency).
        def fit(budget):
            source = MemmapSource.from_npy(path)
            with Engine(
                "process", num_workers=NUM_WORKERS, broadcast_channel="shm"
            ) as engine:
                return RPDBSCAN(
                    eps,
                    MIN_PTS,
                    PARTITIONS,
                    seed=0,
                    engine=engine,
                    broadcast_budget=budget,
                ).fit(source)

        full_s, full = _best_of(lambda: fit(None))
        budgeted_s, budgeted = _best_of(lambda: fit(BUDGET))

    residency = budgeted.broadcast_residency
    workers = residency["workers"]
    driver = residency["driver"]
    shipped = budgeted.counters.broadcast_bytes
    return {
        "full_s": full_s,
        "budgeted_s": budgeted_s,
        "labels_identical": bool(np.array_equal(budgeted.labels, full.labels)),
        "full_segment_bytes": full.counters.broadcast_bytes.get("shm_segment", 0),
        "root_segment_bytes": shipped.get("shm_root_segment", 0),
        "shard_segment_bytes": shipped.get("shm_shard_segments", 0),
        "num_shards": driver["num_shards"],
        "num_workers_reporting": len(workers),
        "worker_peaks": [stats["peak_resident_bytes"] for stats in workers],
        "worker_evictions": sum(stats["shard_evictions"] for stats in workers),
        "worker_attaches": sum(stats["shard_attaches"] for stats in workers),
        "n_clusters": budgeted.n_clusters,
    }


def test_ooc_plane(benchmark):
    out = run_once(benchmark, run_experiment)

    peak = max(out["worker_peaks"], default=0)
    table = [
        ["wall time", f"{out['full_s']:.3f}s", f"{out['budgeted_s']:.3f}s",
         f"{out['budgeted_s'] / max(out['full_s'], 1e-9):.2f}x"],
        ["segment bytes shipped", f"{out['full_segment_bytes']} B",
         f"{out['root_segment_bytes'] + out['shard_segment_bytes']} B "
         f"({out['num_shards']} shards)", None],
        ["peak worker-resident", f"{out['full_segment_bytes']} B (all mapped)",
         f"{peak} B", f"budget {BUDGET} B"],
        ["shard cache churn", "-",
         f"{out['worker_attaches']} attaches / "
         f"{out['worker_evictions']} evictions", None],
    ]
    publish(
        "ooc_plane",
        format_table(
            ["stage", "full broadcast", "budgeted broadcast", "ratio"],
            table,
            title=(
                f"Out-of-core data plane (GeoLife {N_POINTS} via memmap, "
                f"{PARTITIONS} partitions, {NUM_WORKERS} workers, "
                f"budget {BUDGET} B: {out['n_clusters']} clusters)"
            ),
        ),
    )

    # The budget is a residency knob, never an accuracy knob.
    assert out["labels_identical"]
    # Every worker reported a ledger and stayed within the budget.
    assert out["num_workers_reporting"] == NUM_WORKERS
    assert peak <= BUDGET
    # The run genuinely paged: the shard payload exceeds the budget and
    # the LRU cache had to evict to stay under it.
    assert out["shard_segment_bytes"] > BUDGET
    assert out["worker_evictions"] > 0
    # Bounded slowdown: churn must not blow up the wall time.
    assert out["budgeted_s"] <= out["full_s"] * TOLERANCE
