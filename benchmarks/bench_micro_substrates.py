"""Micro-benchmarks of the substrate hot paths (pytest-benchmark).

Not a paper figure — these track the building blocks whose cost the
system figures are made of: cell assignment, dictionary building,
pseudo random partitioning, (eps, rho)-region queries, kd-tree ball
queries, union-find merging, and the full RP-DBSCAN pipeline at a small
fixed size.  Useful as a regression baseline when optimizing.
"""

import time

import numpy as np
import pytest

from repro import RPDBSCAN
from repro.core.cells import CellGeometry
from repro.core.dictionary import CellDictionary
from repro.core.partitioning import pseudo_random_partition
from repro.core.region_query import RegionQueryEngine
from repro.graph.union_find import UnionFind
from repro.spatial.grid import group_points_by_cell
from repro.spatial.kdtree import KDTree


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(0)
    return np.concatenate(
        [rng.normal([0, 0], 0.5, (5000, 2)), rng.uniform(-3, 3, (5000, 2))]
    )


@pytest.fixture(scope="module")
def geometry():
    return CellGeometry(eps=0.2, dim=2, rho=0.01)


@pytest.fixture(scope="module")
def dictionary(points, geometry):
    return CellDictionary.from_points(points, geometry)


def test_micro_cell_grouping(benchmark, points, geometry):
    benchmark(group_points_by_cell, points, geometry.side)


def test_micro_dictionary_build(benchmark, points, geometry):
    benchmark(CellDictionary.from_points, points, geometry)


def test_micro_partitioning(benchmark, points, geometry):
    benchmark(pseudo_random_partition, points, geometry, 8, seed=0)


def test_micro_region_query_batch(benchmark, points, geometry, dictionary):
    engine = RegionQueryEngine(dictionary)
    cell_id = geometry.grid.cell_id_of(points[0])
    ids = geometry.cell_ids(points)
    members = points[np.all(ids == np.array(cell_id), axis=1)]
    benchmark(engine.query_cell_batch, cell_id, members)


def test_micro_kdtree_query(benchmark, points):
    tree = KDTree(points)
    benchmark(tree.query_ball, np.zeros(2), 0.5)


def test_micro_union_find(benchmark):
    edges = [(i, (i * 7 + 3) % 2000) for i in range(2000)]

    def run():
        uf = UnionFind()
        for a, b in edges:
            uf.union(a, b)
        return uf.set_count

    benchmark(run)


def test_micro_rp_dbscan_end_to_end(benchmark, points):
    benchmark.pedantic(
        lambda: RPDBSCAN(0.2, 15, 8, seed=0).fit(points), rounds=3, iterations=1
    )


# ----------------------------------------------------------------------
# Executor substrates: serial vs process pool vs remote loopback
# ----------------------------------------------------------------------

#: Remote loopback (2 nodes x 2 workers, TCP broadcast + dispatch) may
#: cost at most this factor over the process pool (4 workers, shm/pickle
#: broadcast) on the same 50k fit.  Localhost TCP is not free — pickled
#: task blobs and the per-node broadcast ship ride the wire — but if the
#: substrate costs more than half again the pool's wall, its framing or
#: scheduling has regressed.
REMOTE_TOLERANCE = 1.5

SUBSTRATE_POINTS = 50_000
SUBSTRATE_EPS = 0.2
SUBSTRATE_MIN_PTS = 20
SUBSTRATE_PARTITIONS = 8


def _substrate_fit(points, engine=None):
    started = time.perf_counter()
    result = RPDBSCAN(
        SUBSTRATE_EPS, SUBSTRATE_MIN_PTS, SUBSTRATE_PARTITIONS,
        seed=0, engine=engine,
    ).fit(points)
    return time.perf_counter() - started, result


def run_substrate_experiment():
    from common import bench_dataset, publish

    from repro.bench.reporting import format_table
    from repro.engine import Engine, loopback_nodes

    points = bench_dataset("GeoLife", SUBSTRATE_POINTS)

    serial_s, serial = _substrate_fit(points)

    with Engine("process", num_workers=4) as engine:
        process_s, process = _substrate_fit(points, engine)

    with loopback_nodes(num_nodes=2, workers=2) as addrs:
        with Engine("remote", nodes=addrs) as engine:
            remote_s, remote = _substrate_fit(points, engine)
            ledger = engine.node_ledger()

    assert np.array_equal(process.labels, serial.labels)
    assert np.array_equal(remote.labels, serial.labels)

    rows = [
        ["serial", "1", f"{serial_s:.3f}s", "1.00x"],
        ["process", "4", f"{process_s:.3f}s", f"{process_s / serial_s:.2f}x"],
        ["remote loopback", "2x2", f"{remote_s:.3f}s",
         f"{remote_s / serial_s:.2f}x"],
    ]
    publish(
        "micro_substrates",
        format_table(
            ["substrate", "workers", "wall", "vs serial"],
            rows,
            title=(
                f"Executor substrates (GeoLife {SUBSTRATE_POINTS}, "
                f"eps={SUBSTRATE_EPS}, minPts={SUBSTRATE_MIN_PTS}, "
                f"k={SUBSTRATE_PARTITIONS}; labels bit-identical; "
                f"remote ships/node="
                f"{[row['ships'] for row in ledger]})"
            ),
        ),
    )
    return {
        "serial_s": serial_s,
        "process_s": process_s,
        "remote_s": remote_s,
        "ships": [row["ships"] for row in ledger],
    }


def test_micro_executor_substrates(benchmark):
    from common import run_once

    out = run_once(benchmark, run_substrate_experiment)
    # One broadcast fan-out per node per epoch, however the wall falls.
    assert all(ships >= 1 for ships in out["ships"])
    # The distributed substrate must stay within tolerance of the pool.
    assert out["remote_s"] <= out["process_s"] * REMOTE_TOLERANCE
