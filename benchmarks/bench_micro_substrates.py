"""Micro-benchmarks of the substrate hot paths (pytest-benchmark).

Not a paper figure — these track the building blocks whose cost the
system figures are made of: cell assignment, dictionary building,
pseudo random partitioning, (eps, rho)-region queries, kd-tree ball
queries, union-find merging, and the full RP-DBSCAN pipeline at a small
fixed size.  Useful as a regression baseline when optimizing.
"""

import numpy as np
import pytest

from repro import RPDBSCAN
from repro.core.cells import CellGeometry
from repro.core.dictionary import CellDictionary
from repro.core.partitioning import pseudo_random_partition
from repro.core.region_query import RegionQueryEngine
from repro.graph.union_find import UnionFind
from repro.spatial.grid import group_points_by_cell
from repro.spatial.kdtree import KDTree


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(0)
    return np.concatenate(
        [rng.normal([0, 0], 0.5, (5000, 2)), rng.uniform(-3, 3, (5000, 2))]
    )


@pytest.fixture(scope="module")
def geometry():
    return CellGeometry(eps=0.2, dim=2, rho=0.01)


@pytest.fixture(scope="module")
def dictionary(points, geometry):
    return CellDictionary.from_points(points, geometry)


def test_micro_cell_grouping(benchmark, points, geometry):
    benchmark(group_points_by_cell, points, geometry.side)


def test_micro_dictionary_build(benchmark, points, geometry):
    benchmark(CellDictionary.from_points, points, geometry)


def test_micro_partitioning(benchmark, points, geometry):
    benchmark(pseudo_random_partition, points, geometry, 8, seed=0)


def test_micro_region_query_batch(benchmark, points, geometry, dictionary):
    engine = RegionQueryEngine(dictionary)
    cell_id = geometry.grid.cell_id_of(points[0])
    ids = geometry.cell_ids(points)
    members = points[np.all(ids == np.array(cell_id), axis=1)]
    benchmark(engine.query_cell_batch, cell_id, members)


def test_micro_kdtree_query(benchmark, points):
    tree = KDTree(points)
    benchmark(tree.query_ball, np.zeros(2), 0.5)


def test_micro_union_find(benchmark):
    edges = [(i, (i * 7 + 3) % 2000) for i in range(2000)]

    def run():
        uf = UnionFind()
        for a, b in edges:
            uf.union(a, b)
        return uf.set_count

    benchmark(run)


def test_micro_rp_dbscan_end_to_end(benchmark, points):
    benchmark.pedantic(
        lambda: RPDBSCAN(0.2, 15, 8, seed=0).fit(points), rounds=3, iterations=1
    )
