"""Figure 11 / Table 6: total elapsed time of the parallel algorithms.

The paper's headline efficiency result: across four data sets and the
ε grid {ε10/8 … ε10}, RP-DBSCAN is always the fastest parallel
algorithm, the ρ-approximate region splits (ESP/RBP/CBP) are slower, and
SPARK-DBSCAN (no approximation) and NG-DBSCAN are slowest or time out.

Shape claims asserted:
* RP-DBSCAN is the fastest completed algorithm in the large-ε half of
  every grid (the regime the paper emphasizes; at ε10 the paper reports
  7.6-24x over ESP);
* RP-DBSCAN's elapsed time does not blow up with ε while region splits'
  duplication-driven cost grows.
"""

import math

from common import (
    BENCH_MIN_PTS,
    TIMEOUT_S,
    bench_dataset,
    eps_grid,
    parallel_algorithms,
    publish,
    run_once,
)

from repro.bench.harness import run_comparison
from repro.bench.reporting import format_table


def run_experiment():
    all_rows = {}
    for name in ("GeoLife", "Cosmo50", "OpenStreetMap", "TeraClickLog"):
        points = bench_dataset(name)
        for eps in eps_grid(name):
            rows = run_comparison(
                parallel_algorithms(eps, BENCH_MIN_PTS),
                points,
                timeout_s=TIMEOUT_S,
                params={"dataset": name, "eps": eps},
            )
            all_rows[(name, eps)] = rows
    return all_rows


def test_fig11_table6_elapsed_time(benchmark):
    all_rows = run_once(benchmark, run_experiment)

    algorithms = list(parallel_algorithms(1.0, 1))
    table = []
    for (name, eps), rows in all_rows.items():
        by_algo = {r.algorithm: r for r in rows}
        table.append(
            [name, round(eps, 4)]
            + [by_algo[a].elapsed_s for a in algorithms]
        )
    publish(
        "fig11_table6_elapsed",
        format_table(
            ["dataset", "eps", *algorithms],
            table,
            title="Fig 11 / Table 6: total elapsed time (s); N/A = timeout",
        ),
    )

    wins = 0
    comparisons = 0
    for (name, eps), rows in all_rows.items():
        by_algo = {r.algorithm: r for r in rows}
        rp = by_algo["RP-DBSCAN"]
        assert not rp.timed_out, f"RP-DBSCAN timed out on {name} eps={eps}"
        # Headline shape: on the heavily skewed GeoLife, RP-DBSCAN beats
        # every region-split algorithm in the upper half of the eps grid
        # (where skew-driven duplication and imbalance dominate; at the
        # tiniest eps the dictionary has the most entries and the halo
        # the fewest points, a regime the paper's Fig 11a log scale
        # compresses).
        if name == "GeoLife" and eps >= eps_grid(name)[2]:
            for other in ("ESP-DBSCAN", "RBP-DBSCAN", "CBP-DBSCAN"):
                row = by_algo[other]
                if not row.timed_out:
                    assert rp.elapsed_s <= row.elapsed_s * 1.15, (
                        f"{other} beat RP-DBSCAN on {name} eps={eps}"
                    )
        # Across the upper half of every grid, RP-DBSCAN wins the large
        # majority of head-to-heads against the rho-approx region splits.
        if eps >= eps_grid(name)[2]:
            for other in ("ESP-DBSCAN", "RBP-DBSCAN", "CBP-DBSCAN"):
                row = by_algo[other]
                if not row.timed_out:
                    comparisons += 1
                    if rp.elapsed_s <= row.elapsed_s * 1.1:
                        wins += 1
    assert comparisons > 0 and wins >= 0.75 * comparisons, (wins, comparisons)

    # RP-DBSCAN's time improves (or stays flat) as eps grows on at least
    # half the data sets — the paper's "dictionary gets more compact"
    # effect (allowing slack for timer noise).
    improving = 0
    for name in ("GeoLife", "Cosmo50", "OpenStreetMap", "TeraClickLog"):
        grid = eps_grid(name)
        first = all_rows[(name, grid[0])]
        last = all_rows[(name, grid[-1])]
        rp_first = {r.algorithm: r for r in first}["RP-DBSCAN"].elapsed_s
        rp_last = {r.algorithm: r for r in last}["RP-DBSCAN"].elapsed_s
        if not math.isnan(rp_first) and not math.isnan(rp_last):
            if rp_last <= rp_first * 1.5:
                improving += 1
    assert improving >= 2
