"""Minimum bounding rectangles (paper Definition 5.9).

An MBR is the axis-aligned hypercube spanned by the smallest and largest
coordinates of the sub-cells indexed in a sub-dictionary.  Consulting an
MBR lets an ``(eps, rho)``-region query skip a whole sub-dictionary
(Lemma 5.10): if along any axis the query point is more than ``eps`` away
from the MBR, the sub-dictionary cannot contain a neighbor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MBR"]


@dataclass(frozen=True)
class MBR:
    """Axis-aligned minimum bounding rectangle.

    Attributes
    ----------
    lo:
        Smallest coordinate per dimension.
    hi:
        Largest coordinate per dimension.
    """

    lo: np.ndarray
    hi: np.ndarray

    def __post_init__(self) -> None:
        lo = np.asarray(self.lo, dtype=np.float64)
        hi = np.asarray(self.hi, dtype=np.float64)
        if lo.shape != hi.shape or lo.ndim != 1:
            raise ValueError("MBR corners must be 1-d arrays of equal shape")
        if np.any(lo > hi):
            raise ValueError("MBR lower corner exceeds upper corner")
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)

    @classmethod
    def of_points(cls, points: np.ndarray) -> "MBR":
        """MBR of a non-empty ``(n, d)`` array of points."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError("of_points expects a non-empty (n, d) array")
        return cls(pts.min(axis=0), pts.max(axis=0))

    @property
    def dim(self) -> int:
        """Dimensionality of the rectangle."""
        return self.lo.shape[0]

    def merged(self, other: "MBR") -> "MBR":
        """Smallest MBR containing both ``self`` and ``other``."""
        return MBR(np.minimum(self.lo, other.lo), np.maximum(self.hi, other.hi))

    def contains_point(self, point: np.ndarray) -> bool:
        """Whether ``point`` lies inside (or on the border of) the MBR."""
        p = np.asarray(point, dtype=np.float64)
        return bool(np.all(p >= self.lo) and np.all(p <= self.hi))

    def can_skip(self, point: np.ndarray, eps: float) -> bool:
        """Lemma 5.10 skip test for an ``(eps, rho)``-region query.

        Returns ``True`` when on some axis ``i`` either
        ``hi[i] < point[i] - eps`` or ``lo[i] > point[i] + eps`` holds, in
        which case no sub-cell center indexed under this MBR can be within
        ``eps`` of ``point``.
        """
        p = np.asarray(point, dtype=np.float64)
        return bool(np.any(self.hi < p - eps) or np.any(self.lo > p + eps))

    def min_distance_to(self, point: np.ndarray) -> float:
        """Euclidean distance from ``point`` to the MBR (0 when inside)."""
        p = np.asarray(point, dtype=np.float64)
        delta = np.maximum(np.maximum(self.lo - p, p - self.hi), 0.0)
        return float(np.sqrt(np.dot(delta, delta)))
