"""Spatial substrate: distances, integer grids, MBRs, and a kd-tree.

These are the geometric building blocks shared by the RP-DBSCAN core
(:mod:`repro.core`) and by every baseline algorithm.  Everything here is
implemented from scratch on top of numpy; nothing depends on the rest of
the package.
"""

from repro.spatial.distance import (
    euclidean,
    pairwise_distances,
    points_within,
    squared_distances,
)
from repro.spatial.grid import (
    GridSpec,
    cell_box_bounds,
    cell_ids_for_points,
    group_points_by_cell,
    neighbor_cell_offsets,
)
from repro.spatial.kdtree import KDTree
from repro.spatial.mbr import MBR

__all__ = [
    "euclidean",
    "pairwise_distances",
    "points_within",
    "squared_distances",
    "GridSpec",
    "cell_box_bounds",
    "cell_ids_for_points",
    "group_points_by_cell",
    "neighbor_cell_offsets",
    "KDTree",
    "MBR",
]
