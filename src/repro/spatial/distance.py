"""Euclidean distance helpers, vectorized with numpy.

All DBSCAN variants in this repository use the Euclidean distance, as the
paper does ("Scope: (2) Distance").  The helpers here avoid taking square
roots wherever a squared comparison suffices.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "euclidean",
    "squared_distances",
    "pairwise_distances",
    "seq_squared_distances",
    "points_within",
    "count_within",
]


def euclidean(p: np.ndarray, q: np.ndarray) -> float:
    """Euclidean distance between two points ``p`` and ``q``."""
    diff = np.asarray(p, dtype=np.float64) - np.asarray(q, dtype=np.float64)
    return float(np.sqrt(np.dot(diff, diff)))


def squared_distances(points: np.ndarray, center: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances from every row of ``points`` to ``center``.

    Parameters
    ----------
    points:
        Array of shape ``(n, d)``.
    center:
        Array of shape ``(d,)``.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n,)`` with squared distances.
    """
    pts = np.asarray(points, dtype=np.float64)
    c = np.asarray(center, dtype=np.float64)
    diff = pts - c
    return np.einsum("ij,ij->i", diff, diff)


def pairwise_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense matrix of Euclidean distances between rows of ``a`` and ``b``.

    Uses the expansion ``|a - b|^2 = |a|^2 + |b|^2 - 2 a.b`` which is much
    faster than broadcasting the difference tensor for moderate sizes.
    Negative values caused by floating-point cancellation are clipped to
    zero before the square root.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("pairwise_distances expects 2-d arrays")
    a_sq = np.einsum("ij,ij->i", a, a)[:, None]
    b_sq = np.einsum("ij,ij->i", b, b)[None, :]
    sq = a_sq + b_sq - 2.0 * (a @ b.T)
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq)


def seq_squared_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise *squared* distances with a bit-reproducible summation.

    Accumulates one dimension at a time:
    ``d2 = ((0 + diff_0^2) + diff_1^2) + ...`` — each element of the
    result undergoes exactly the scalar operation sequence
    ``acc += (a[i, k] - b[j, k])**2`` for ``k = 0..d-1``.  IEEE 754
    elementwise operations are exactly rounded, so this matches a plain
    scalar loop (and therefore the compiled Phase II kernels, which run
    that loop) to the bit.  The BLAS expansion used by
    :func:`pairwise_distances` does not have this property: its dot
    products may reorder and fuse, drifting by ulps near a threshold.

    This is the distance backbone of the (eps, rho)-region query's
    ``within`` decision; the ``kernel={numpy,numba}`` bit-identity
    contract rests on both backends sharing this exact sequence.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("seq_squared_distances expects 2-d arrays")
    if a.shape[1] != b.shape[1]:
        raise ValueError("seq_squared_distances expects matching dimensions")
    d2 = np.zeros((a.shape[0], b.shape[0]), dtype=np.float64)
    for k in range(a.shape[1]):
        diff = a[:, k, None] - b[None, :, k]
        d2 += diff * diff
    return d2


def points_within(points: np.ndarray, center: np.ndarray, radius: float) -> np.ndarray:
    """Boolean mask of the rows of ``points`` within ``radius`` of ``center``."""
    return squared_distances(points, center) <= float(radius) ** 2


def count_within(points: np.ndarray, center: np.ndarray, radius: float) -> int:
    """Number of rows of ``points`` within ``radius`` of ``center``."""
    return int(np.count_nonzero(points_within(points, center, radius)))
