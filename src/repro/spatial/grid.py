"""Integer-grid geometry used by cell-based DBSCAN algorithms.

A *grid* (paper Definition 3.1) divides the ``d``-dimensional space into
hypercubes (*cells*) whose diagonal equals ``eps``, i.e. whose side equals
``eps / sqrt(d)``.  Cells are addressed by their integer coordinates —
the componentwise floor of ``point / side`` — so empty regions cost
nothing.

This module provides the pure geometry: identifying cells, grouping
points by cell, bounding boxes of cells, and enumerating the relative
offsets of cells that can possibly contain ``eps``-neighbors.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "GridSpec",
    "cell_ids_for_points",
    "group_points_by_cell",
    "cell_box_bounds",
    "box_min_distance_to_point",
    "box_max_distance_to_point",
    "neighbor_cell_offsets",
    "MAX_ENUMERATED_OFFSETS",
]

#: Above this many candidate offsets, callers should switch from exhaustive
#: offset enumeration to a kd-tree search over non-empty cells (the paper's
#: "R*-tree or kd-tree" in Lemma 5.6).  Exhaustive enumeration is
#: exponential in the dimension.
MAX_ENUMERATED_OFFSETS = 200_000


@dataclass(frozen=True)
class GridSpec:
    """Geometry of a cell grid for a given ``eps`` and dimension.

    Attributes
    ----------
    eps:
        The DBSCAN neighborhood radius; also the cell *diagonal* length.
    dim:
        Dimensionality ``d`` of the data space.
    side:
        Side length of a cell, ``eps / sqrt(d)``, so that the diagonal is
        exactly ``eps`` and any two points in one cell are within ``eps``.
    """

    eps: float
    dim: int

    def __post_init__(self) -> None:
        if self.eps <= 0:
            raise ValueError(f"eps must be positive, got {self.eps}")
        if self.dim < 1:
            raise ValueError(f"dim must be >= 1, got {self.dim}")

    @property
    def side(self) -> float:
        """Cell side length (``eps / sqrt(d)``)."""
        return self.eps / math.sqrt(self.dim)

    @property
    def diagonal(self) -> float:
        """Cell diagonal length — equals ``eps`` by construction."""
        return self.side * math.sqrt(self.dim)

    def cell_id_of(self, point: np.ndarray) -> tuple[int, ...]:
        """Integer cell coordinates containing ``point``."""
        return tuple(int(v) for v in np.floor(np.asarray(point) / self.side))

    def cell_origin(self, cell_id: tuple[int, ...]) -> np.ndarray:
        """Lower corner of the cell with integer coordinates ``cell_id``."""
        return np.asarray(cell_id, dtype=np.float64) * self.side

    def cell_center(self, cell_id: tuple[int, ...]) -> np.ndarray:
        """Center point of the given cell."""
        return (np.asarray(cell_id, dtype=np.float64) + 0.5) * self.side


def cell_ids_for_points(points: np.ndarray, side: float) -> np.ndarray:
    """Integer cell coordinates for every row of ``points``.

    Returns an ``(n, d)`` int64 array.  Vectorized: this is the hot path
    of Phase I-1 (Algorithm 2, ``Map``).
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError("points must be a 2-d array of shape (n, d)")
    return np.floor(pts / float(side)).astype(np.int64)


def group_points_by_cell(points: np.ndarray, side: float) -> dict[tuple[int, ...], np.ndarray]:
    """Group point *indices* by the cell containing them.

    Returns a dict mapping cell id (tuple of ints) to an int64 array of
    row indices into ``points``.  Implemented with a single lexsort so the
    cost is ``O(n log n)`` regardless of the number of cells.
    """
    ids = cell_ids_for_points(points, side)
    n = ids.shape[0]
    if n == 0:
        return {}
    order = np.lexsort(ids.T[::-1])
    sorted_ids = ids[order]
    # Boundaries where the sorted cell id changes.
    change = np.any(sorted_ids[1:] != sorted_ids[:-1], axis=1)
    boundaries = np.concatenate(([0], np.nonzero(change)[0] + 1, [n]))
    groups: dict[tuple[int, ...], np.ndarray] = {}
    for start, stop in zip(boundaries[:-1], boundaries[1:]):
        key = tuple(int(v) for v in sorted_ids[start])
        groups[key] = order[start:stop]
    return groups


def cell_box_bounds(cell_id: tuple[int, ...], side: float) -> tuple[np.ndarray, np.ndarray]:
    """Lower and upper corners of a cell's axis-aligned bounding box."""
    lo = np.asarray(cell_id, dtype=np.float64) * side
    return lo, lo + side


def box_min_distance_to_point(lo: np.ndarray, hi: np.ndarray, point: np.ndarray) -> float:
    """Minimum Euclidean distance from ``point`` to the box ``[lo, hi]``."""
    p = np.asarray(point, dtype=np.float64)
    delta = np.maximum(np.maximum(lo - p, p - hi), 0.0)
    return float(np.sqrt(np.dot(delta, delta)))


def box_max_distance_to_point(lo: np.ndarray, hi: np.ndarray, point: np.ndarray) -> float:
    """Maximum Euclidean distance from ``point`` to the box ``[lo, hi]``."""
    p = np.asarray(point, dtype=np.float64)
    delta = np.maximum(np.abs(lo - p), np.abs(hi - p))
    return float(np.sqrt(np.dot(delta, delta)))


def neighbor_cell_offsets(dim: int, *, radius_cells: int | None = None) -> np.ndarray:
    """Relative integer offsets of cells that can hold an ``eps``-neighbor.

    A cell at offset ``o`` from the query point's cell has a minimum
    box-to-box distance of ``side * ||max(|o| - 1, 0)||``.  Since
    ``eps = side * sqrt(d)``, the offset is relevant iff

        ``sum(max(|o_i| - 1, 0)^2) <= d``.

    The function enumerates all offsets in ``[-a, a]^d`` for the smallest
    sufficient ``a`` and filters them by that condition.  For large ``d``
    the enumeration blows up; callers must then fall back to a kd-tree
    over non-empty cells (see :class:`repro.spatial.kdtree.KDTree`).

    Parameters
    ----------
    dim:
        Dimensionality of the grid.
    radius_cells:
        Override for the enumeration radius ``a``; mainly for tests.

    Returns
    -------
    numpy.ndarray
        Int64 array of shape ``(m, d)`` including the zero offset.

    Raises
    ------
    ValueError
        If the enumeration would exceed :data:`MAX_ENUMERATED_OFFSETS`.
    """
    if radius_cells is None:
        # Need max(|o| - 1, 0)^2 <= d in a single dimension, so
        # |o| <= 1 + floor(sqrt(d)).
        radius_cells = 1 + int(math.isqrt(dim))
    span = 2 * radius_cells + 1
    total = span**dim
    if total > MAX_ENUMERATED_OFFSETS:
        raise ValueError(
            f"enumerating {total} offsets for dim={dim} exceeds "
            f"MAX_ENUMERATED_OFFSETS={MAX_ENUMERATED_OFFSETS}; "
            "use a kd-tree over non-empty cells instead"
        )
    axes = [np.arange(-radius_cells, radius_cells + 1)] * dim
    offsets = np.array(list(itertools.product(*axes)), dtype=np.int64)
    gap = np.maximum(np.abs(offsets) - 1, 0)
    keep = np.einsum("ij,ij->i", gap, gap) <= dim
    return offsets[keep]
