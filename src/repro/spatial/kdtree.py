"""A small kd-tree for radius queries over cell centers.

The paper (Lemma 5.6) assumes candidate cells of an ``(eps, rho)``-region
query are found "with R*-tree or kd-tree" in ``O(log |cell|)``.  For low
dimensions we enumerate integer offsets instead (cheaper), but offset
enumeration is exponential in ``d``; this kd-tree is the high-dimensional
fallback, built once over the centers of the *non-empty* cells.

The implementation is a classic median-split kd-tree with vectorized leaf
scans.  It is deliberately simple: the number of non-empty cells is small
compared to the number of points, so this index is never the bottleneck.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KDTree"]

_LEAF_SIZE = 32


class _Node:
    """Internal kd-tree node (leaf when ``axis`` is None)."""

    __slots__ = ("axis", "threshold", "left", "right", "indices", "lo", "hi")

    def __init__(self) -> None:
        self.axis: int | None = None
        self.threshold: float = 0.0
        self.left: _Node | None = None
        self.right: _Node | None = None
        self.indices: np.ndarray | None = None
        self.lo: np.ndarray | None = None
        self.hi: np.ndarray | None = None


class KDTree:
    """kd-tree over an ``(n, d)`` array supporting ball queries.

    Parameters
    ----------
    points:
        The points to index.  A copy is not made; do not mutate.
    leaf_size:
        Maximum number of points stored in a leaf node.
    """

    def __init__(self, points: np.ndarray, leaf_size: int = _LEAF_SIZE) -> None:
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError("KDTree expects a 2-d (n, d) array")
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self._points = pts
        self._leaf_size = int(leaf_size)
        self._n, self._dim = pts.shape
        indices = np.arange(self._n, dtype=np.int64)
        self._root = self._build(indices) if self._n else None

    def __len__(self) -> int:
        return self._n

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed points."""
        return self._dim

    def _build(self, indices: np.ndarray) -> _Node:
        node = _Node()
        subset = self._points[indices]
        node.lo = subset.min(axis=0)
        node.hi = subset.max(axis=0)
        if indices.shape[0] <= self._leaf_size:
            node.indices = indices
            return node
        spread = node.hi - node.lo
        axis = int(np.argmax(spread))
        if spread[axis] == 0.0:
            # All points identical along every axis: keep as a leaf.
            node.indices = indices
            return node
        values = subset[:, axis]
        median = float(np.median(values))
        left_mask = values <= median
        # Guard against degenerate splits when many values equal the median.
        if left_mask.all() or not left_mask.any():
            order = np.argsort(values, kind="stable")
            half = indices.shape[0] // 2
            left_mask = np.zeros(indices.shape[0], dtype=bool)
            left_mask[order[:half]] = True
            median = float(values[order[half - 1]])
        node.axis = axis
        node.threshold = median
        node.left = self._build(indices[left_mask])
        node.right = self._build(indices[~left_mask])
        return node

    def query_ball(self, center: np.ndarray, radius: float) -> np.ndarray:
        """Indices of all points within ``radius`` of ``center``.

        Returns an int64 array (unsorted).  Distance is Euclidean and the
        boundary is inclusive.
        """
        if self._root is None:
            return np.empty(0, dtype=np.int64)
        c = np.asarray(center, dtype=np.float64)
        if c.shape != (self._dim,):
            raise ValueError(f"center must have shape ({self._dim},)")
        r2 = float(radius) ** 2
        out: list[np.ndarray] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            delta = np.maximum(np.maximum(node.lo - c, c - node.hi), 0.0)
            if float(np.dot(delta, delta)) > r2:
                continue
            if node.indices is not None:
                pts = self._points[node.indices]
                diff = pts - c
                mask = np.einsum("ij,ij->i", diff, diff) <= r2
                if mask.any():
                    out.append(node.indices[mask])
                continue
            stack.append(node.left)  # type: ignore[arg-type]
            stack.append(node.right)  # type: ignore[arg-type]
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(out)

    def query_nearest(self, center: np.ndarray) -> tuple[int, float]:
        """Index of and distance to the nearest indexed point.

        Raises :class:`ValueError` on an empty tree.
        """
        if self._root is None:
            raise ValueError("query_nearest on an empty KDTree")
        c = np.asarray(center, dtype=np.float64)
        best_idx = -1
        best_sq = np.inf
        stack = [self._root]
        while stack:
            node = stack.pop()
            delta = np.maximum(np.maximum(node.lo - c, c - node.hi), 0.0)
            if float(np.dot(delta, delta)) >= best_sq:
                continue
            if node.indices is not None:
                pts = self._points[node.indices]
                diff = pts - c
                sq = np.einsum("ij,ij->i", diff, diff)
                local = int(np.argmin(sq))
                if sq[local] < best_sq:
                    best_sq = float(sq[local])
                    best_idx = int(node.indices[local])
                continue
            stack.append(node.left)  # type: ignore[arg-type]
            stack.append(node.right)  # type: ignore[arg-type]
        return best_idx, float(np.sqrt(best_sq))
