"""Candidate-cell search shared by all cell-based algorithms.

Given the set of non-empty cells of a grid, a
:class:`NeighborCellFinder` answers: *which non-empty cells can contain
a point within ``eps`` of some point of cell C?*  Those are exactly the
cells whose box lies within ``eps`` of C's box.

Two strategies (Lemma 5.6's "R*-tree or kd-tree" vs. direct hashing):

* ``"enumerate"`` — precompute the integer offsets that satisfy the box
  condition and probe the hash map; ideal in low dimensions.
* ``"kdtree"`` — query a kd-tree over non-empty cell centers, then
  filter by the exact box-to-box distance; required when the offset
  table would be exponential in ``d``.

``"auto"`` picks enumerate while the offset table stays small.
"""

from __future__ import annotations

import numpy as np

from repro.spatial.grid import MAX_ENUMERATED_OFFSETS, neighbor_cell_offsets
from repro.spatial.kdtree import KDTree

__all__ = ["NeighborCellFinder"]

CellId = tuple[int, ...]


class NeighborCellFinder:
    """Finds non-empty cells within ``eps`` (box distance) of a query cell.

    Parameters
    ----------
    cell_ids:
        The non-empty cells, as tuples of ints.
    side:
        Cell side length.
    eps:
        Reachability radius; with the paper's geometry this equals
        ``side * sqrt(d)`` but any positive radius is accepted.
    strategy:
        ``"auto"``, ``"enumerate"``, or ``"kdtree"``.
    """

    def __init__(
        self,
        cell_ids: list[CellId] | set[CellId],
        side: float,
        eps: float,
        *,
        strategy: str = "auto",
    ) -> None:
        if side <= 0 or eps <= 0:
            raise ValueError("side and eps must be positive")
        self._cells = set(cell_ids)
        self.side = float(side)
        self.eps = float(eps)
        sample = next(iter(self._cells), None)
        self.dim = len(sample) if sample is not None else 1
        if strategy == "auto":
            reach = 1 + int(np.ceil(self.eps / self.side))
            strategy = (
                "enumerate"
                if (2 * reach + 1) ** self.dim <= MAX_ENUMERATED_OFFSETS
                else "kdtree"
            )
        if strategy not in ("enumerate", "kdtree"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.strategy = strategy
        self._offsets: np.ndarray | None = None
        self._tree: KDTree | None = None
        self._tree_ids: np.ndarray | None = None
        if strategy == "enumerate":
            self._offsets = self._build_offsets()
        else:
            self._build_tree()

    def _build_offsets(self) -> np.ndarray:
        reach = int(np.ceil(self.eps / self.side))
        offsets = neighbor_cell_offsets(self.dim, radius_cells=reach + 1)
        gap = np.maximum(np.abs(offsets) - 1, 0).astype(np.float64) * self.side
        keep = np.einsum("ij,ij->i", gap, gap) <= self.eps**2 * (1 + 1e-12)
        return offsets[keep]

    def _build_tree(self) -> None:
        ids = np.array(sorted(self._cells), dtype=np.int64)
        if ids.size == 0:
            ids = ids.reshape(0, self.dim)
        centers = (ids.astype(np.float64) + 0.5) * self.side
        self._tree = KDTree(centers)
        self._tree_ids = ids

    def candidates(self, cell_id: CellId) -> list[CellId]:
        """Sorted non-empty cells whose box is within ``eps`` of
        ``cell_id``'s box (including ``cell_id`` itself if non-empty).

        ``cell_id`` need not be non-empty; queries from arbitrary cells
        are supported.
        """
        if self.strategy == "enumerate":
            assert self._offsets is not None
            base = np.asarray(cell_id, dtype=np.int64)
            raw = (base + self._offsets).tolist()  # python ints, cheap to hash
            cells = self._cells
            return sorted(t for row in raw if (t := tuple(row)) in cells)
        assert self._tree is not None
        center = (np.asarray(cell_id, dtype=np.float64) + 0.5) * self.side
        # Box-box distance <= eps implies center distance <= eps + diagonal.
        diagonal = self.side * float(np.sqrt(self.dim))
        hits = self._tree.query_ball(center, self.eps + diagonal * (1 + 1e-12))
        if hits.size == 0:
            return []
        others = self._tree_ids[hits]  # (m, d) int64
        delta = np.abs(others - np.asarray(cell_id, dtype=np.int64))
        gap = np.maximum(delta - 1, 0).astype(np.float64) * self.side
        keep = np.einsum("ij,ij->i", gap, gap) <= (self.eps * (1 + 1e-12)) ** 2
        return sorted(map(tuple, others[keep].tolist()))
