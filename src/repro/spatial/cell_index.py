"""Candidate-cell search shared by all cell-based algorithms.

Given the non-empty cells of a grid, a :class:`NeighborCellFinder`
answers: *which non-empty cells can contain a point within ``eps`` of
some point of cell C?*  Those are exactly the cells whose box lies
within ``eps`` of C's box.

The finder consumes the cells as a lexicographically sorted ``(C, d)``
int64 array — the same dense row order the flat cell dictionary and the
cell graph use — so every answer is deterministic and can be returned
either as cell-id tuples (:meth:`candidates`) or directly as dense row
indices (:meth:`candidate_rows`), no hashing involved.

Two strategies (Lemma 5.6's "R*-tree or kd-tree" vs. direct probing):

* ``"enumerate"`` — precompute the integer offsets that satisfy the box
  condition and binary-search the sorted id array; ideal in low
  dimensions.
* ``"kdtree"`` — query a kd-tree over non-empty cell centers, then
  filter by the exact box-to-box distance; required when the offset
  table would be exponential in ``d``.

``"auto"`` picks enumerate while the offset table stays small.
"""

from __future__ import annotations

import numpy as np

from repro.spatial.grid import MAX_ENUMERATED_OFFSETS, neighbor_cell_offsets
from repro.spatial.kdtree import KDTree

__all__ = ["NeighborCellFinder"]

CellId = tuple[int, ...]


def _normalize_ids(
    cell_ids: np.ndarray | list[CellId] | set[CellId],
) -> np.ndarray:
    """Coerce any accepted cell collection to a sorted ``(C, d)`` array.

    Arrays already in lexicographic order pass through without a copy;
    legacy list/set inputs are sorted (and deduplicated) on the way in.
    """
    if isinstance(cell_ids, np.ndarray):
        ids = np.ascontiguousarray(cell_ids, dtype=np.int64)
        if ids.ndim != 2:
            raise ValueError("cell_ids array must be (C, d)")
        if not _rows_strictly_sorted(ids):
            ids = np.unique(ids, axis=0)
        return ids
    rows = sorted(set(map(tuple, cell_ids)))
    if not rows:
        return np.empty((0, 1), dtype=np.int64)
    return np.array(rows, dtype=np.int64)


def _lex_keys(ids: np.ndarray) -> np.ndarray:
    """View ``(m, d)`` int64 rows as a (m,) structured array whose
    comparison order is lexicographic — the key for ``searchsorted``."""
    return ids.view([("", ids.dtype)] * ids.shape[1]).reshape(ids.shape[0])


def _rows_strictly_sorted(ids: np.ndarray) -> bool:
    """``True`` when the rows of ``ids`` are strictly increasing in
    lexicographic order (sorted, no duplicates)."""
    if ids.shape[0] <= 1:
        return True
    a, b = ids[:-1], ids[1:]
    neq = a != b
    if not neq.any(axis=1).all():
        return False  # adjacent duplicate rows
    first = neq.argmax(axis=1)
    rows = np.arange(a.shape[0])
    return bool(np.all(a[rows, first] < b[rows, first]))


class NeighborCellFinder:
    """Finds non-empty cells within ``eps`` (box distance) of a query cell.

    Parameters
    ----------
    cell_ids:
        The non-empty cells: a lexicographically sorted ``(C, d)`` int64
        array (preferred — zero copy), or a list/set of int tuples.
    side:
        Cell side length.
    eps:
        Reachability radius; with the paper's geometry this equals
        ``side * sqrt(d)`` but any positive radius is accepted.
    strategy:
        ``"auto"``, ``"enumerate"``, or ``"kdtree"``.
    """

    def __init__(
        self,
        cell_ids: np.ndarray | list[CellId] | set[CellId],
        side: float,
        eps: float,
        *,
        strategy: str = "auto",
    ) -> None:
        if side <= 0 or eps <= 0:
            raise ValueError("side and eps must be positive")
        self._ids = _normalize_ids(cell_ids)
        self._keys = _lex_keys(self._ids)
        self.side = float(side)
        self.eps = float(eps)
        self.dim = self._ids.shape[1]
        if strategy == "auto":
            reach = 1 + int(np.ceil(self.eps / self.side))
            strategy = (
                "enumerate"
                if (2 * reach + 1) ** self.dim <= MAX_ENUMERATED_OFFSETS
                else "kdtree"
            )
        if strategy not in ("enumerate", "kdtree"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.strategy = strategy
        self._offsets: np.ndarray | None = None
        self._tree: KDTree | None = None
        self._packed: np.ndarray | None = None
        self._offset_keys: np.ndarray | None = None
        self._pack_lo: np.ndarray | None = None
        self._pack_ext: np.ndarray | None = None
        self._pack_strides: np.ndarray | None = None
        if strategy == "enumerate":
            self._offsets = self._build_offsets()
            self._build_packed_keys()
        else:
            self._build_tree()

    @property
    def cell_ids(self) -> np.ndarray:
        """The sorted ``(C, d)`` id array rows index into."""
        return self._ids

    def _build_offsets(self) -> np.ndarray:
        reach = int(np.ceil(self.eps / self.side))
        offsets = neighbor_cell_offsets(self.dim, radius_cells=reach + 1)
        gap = np.maximum(np.abs(offsets) - 1, 0).astype(np.float64) * self.side
        keep = np.einsum("ij,ij->i", gap, gap) <= self.eps**2 * (1 + 1e-12)
        kept = offsets[keep]
        # Lexicographic offset order makes per-query probe rows come out
        # already ascending — the batch path then needs no sort.
        return kept[np.lexsort(kept.T[::-1])]

    def _build_packed_keys(self) -> None:
        """Scalar int64 keys for the batch path: row-major raveling of
        the (bounded) id box preserves lexicographic order, and scalar
        ``searchsorted`` is an order of magnitude faster than the
        structured-dtype one.  Skipped (``_packed is None``) when the id
        extent could overflow the packing."""
        if self._ids.shape[0] == 0:
            return
        lo = self._ids.min(axis=0)
        ext = self._ids.max(axis=0) - lo + 1
        if int(np.prod(ext.astype(object))) >= 1 << 60:
            return
        strides = np.ones(self.dim, dtype=np.int64)
        for axis in range(self.dim - 2, -1, -1):
            strides[axis] = strides[axis + 1] * ext[axis + 1]
        self._pack_lo = lo
        self._pack_ext = ext
        self._pack_strides = strides
        self._packed = ((self._ids - lo) * strides).sum(axis=1)
        assert self._offsets is not None
        self._offset_keys = (self._offsets * strides).sum(axis=1)

    def _build_tree(self) -> None:
        centers = (self._ids.astype(np.float64) + 0.5) * self.side
        self._tree = KDTree(centers)

    def candidate_rows(self, cell_id: CellId) -> np.ndarray:
        """Ascending dense rows (into :attr:`cell_ids`) of the non-empty
        cells whose box is within ``eps`` of ``cell_id``'s box, including
        ``cell_id`` itself if non-empty.

        Because the backing ids are lexicographically sorted, ascending
        row order *is* lexicographic cell-id order — the deterministic
        candidate ordering every consumer relies on.
        """
        base = np.asarray(cell_id, dtype=np.int64)
        if self._ids.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        if self.strategy == "enumerate":
            assert self._offsets is not None
            probes = base + self._offsets
            pos = np.searchsorted(self._keys, _lex_keys(probes))
            clipped = np.minimum(pos, self._ids.shape[0] - 1)
            hit = np.all(self._ids[clipped] == probes, axis=1) & (
                pos < self._ids.shape[0]
            )
            return np.sort(clipped[hit])
        assert self._tree is not None
        center = (base.astype(np.float64) + 0.5) * self.side
        # Box-box distance <= eps implies center distance <= eps + diagonal.
        diagonal = self.side * float(np.sqrt(self.dim))
        hits = self._tree.query_ball(center, self.eps + diagonal * (1 + 1e-12))
        if hits.size == 0:
            return np.empty(0, dtype=np.int64)
        delta = np.abs(self._ids[hits] - base)
        gap = np.maximum(delta - 1, 0).astype(np.float64) * self.side
        keep = np.einsum("ij,ij->i", gap, gap) <= (self.eps * (1 + 1e-12)) ** 2
        return np.sort(hits[keep])

    def candidate_rows_batch(
        self, query_ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """:meth:`candidate_rows` for many query cells in one sweep.

        Returns CSR ``(rows, offsets)``: query ``g``'s candidates are
        ``rows[offsets[g]:offsets[g + 1]]``, ascending — identical to
        ``candidate_rows(query_ids[g])``.  On the enumerate strategy the
        whole batch costs one probe build and one ``searchsorted``
        (chunked to bound the probe matrix), which is what makes dense
        batch prediction cheap; kd-tree falls back to the scalar path.
        """
        queries = np.ascontiguousarray(query_ids, dtype=np.int64)
        if queries.ndim != 2 or queries.shape[1] != self.dim:
            raise ValueError(f"query_ids must be (G, {self.dim})")
        n_queries = queries.shape[0]
        if self._ids.shape[0] == 0 or n_queries == 0:
            return (
                np.empty(0, dtype=np.int64),
                np.zeros(n_queries + 1, dtype=np.int64),
            )
        if self.strategy != "enumerate":
            parts = [
                self.candidate_rows(tuple(int(v) for v in row))
                for row in queries.tolist()
            ]
            sizes = np.array([p.size for p in parts], dtype=np.int64)
            offsets = np.concatenate([[0], np.cumsum(sizes)])
            rows = (
                np.concatenate(parts)
                if parts
                else np.empty(0, dtype=np.int64)
            )
            return rows.astype(np.int64), offsets
        assert self._offsets is not None
        n_offsets = self._offsets.shape[0]
        n_cells = self._ids.shape[0]
        chunk = max(1, (1 << 19) // max(1, n_offsets))
        row_parts: list[np.ndarray] = []
        count_parts: list[np.ndarray] = []
        for begin in range(0, n_queries, chunk):
            batch = queries[begin : begin + chunk]
            if self._packed is not None:
                # Probe keys decompose as key(base) + key(offset), and
                # an in-range probe's key is exact (no collisions), so
                # the whole chunk needs no (g, K, d) probe tensor: per-
                # axis range masks plus one scalar searchsorted.
                rel_base = batch - self._pack_lo
                ok = np.ones((batch.shape[0], n_offsets), dtype=bool)
                for axis in range(self.dim):
                    span = (
                        rel_base[:, axis, None]
                        + self._offsets[None, :, axis]
                    )
                    ok &= (span >= 0) & (span < self._pack_ext[axis])
                probe_keys = (
                    rel_base @ self._pack_strides
                )[:, None] + self._offset_keys[None, :]
                inside = np.nonzero(ok.ravel())[0]
                keys = probe_keys.ravel()[inside]
                pos_in = np.searchsorted(self._packed, keys)
                clip_in = np.minimum(pos_in, n_cells - 1)
                hit = np.zeros(ok.size, dtype=bool)
                hit[inside] = (pos_in < n_cells) & (
                    self._packed[clip_in] == keys
                )
                clipped = np.zeros(ok.size, dtype=np.int64)
                clipped[inside] = clip_in
            else:
                probes = (
                    batch[:, None, :] + self._offsets[None, :, :]
                ).reshape(-1, self.dim)
                pos = np.searchsorted(self._keys, _lex_keys(probes))
                clipped = np.minimum(pos, n_cells - 1)
                hit = np.all(self._ids[clipped] == probes, axis=1) & (
                    pos < n_cells
                )
            per_query = hit.reshape(batch.shape[0], n_offsets)
            counts = per_query.sum(axis=1).astype(np.int64)
            # The offset table is lexicographically sorted, so each
            # query's probes — and therefore its hit rows — are already
            # ascending, matching the scalar path's np.sort.
            row_parts.append(clipped[hit])
            count_parts.append(counts)
        rows = np.concatenate(row_parts)
        offsets = np.concatenate(
            [[0], np.cumsum(np.concatenate(count_parts))]
        ).astype(np.int64)
        return rows, offsets

    def candidates(self, cell_id: CellId) -> list[CellId]:
        """Lexicographically sorted candidate cells as tuples.

        ``cell_id`` need not be non-empty; queries from arbitrary cells
        are supported.
        """
        rows = self.candidate_rows(cell_id)
        return [tuple(row) for row in self._ids[rows].tolist()]
