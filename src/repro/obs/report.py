"""Human-readable run report rendered from a span trace.

``render_run_report(spans)`` turns one recorded run into the text
report the paper's efficiency analysis wants at a glance:

* **per-phase breakdown** — elapsed seconds and fraction per phase
  (Fig 12's view), with task counts and slowest/median task times;
* **per-worker utilization** — busy seconds and busy fraction per
  worker over the mapped phases (Fig 13's load-imbalance view);
* **critical path** — the fork-join lower bound (driver work plus the
  slowest task of every mapped phase) next to the achieved elapsed
  time, i.e. how much of the gap is schedulable slack;
* **straggler summary** — tasks ≥ 2× their phase median, the targets
  speculation would duplicate;
* **broadcast ledger** — every broadcast fan-out with its channel
  (``pickle`` vs zero-copy ``shm`` vs remote ``tcp``), payload and
  segment bytes, and ship time;
* **node broadcast ledger** — remote runs only: one row per node per
  broadcast epoch, showing the substrate shipped each value exactly
  once per node;
* **ingest ledger** — one row per incremental refit
  (:meth:`~repro.core.cluster_state.ClusterState.ingest`): cells
  reconsidered out of the union total, edges recomputed vs retained,
  and the splice wall;
* **fault ledger** — every retry/timeout/respawn/speculation event with
  its wall-clock timestamp.

All figures are computed from spans alone, so a report can be rendered
offline from a ``--trace`` JSONL file via
:func:`repro.obs.exporters.read_spans_jsonl`.
"""

from __future__ import annotations

import statistics
from datetime import datetime, timezone

from repro.bench.reporting import (
    format_duration,
    format_table,
    render_utilization_bar,
)
from repro.obs.spans import Span

__all__ = [
    "render_run_report",
    "render_serving_report",
    "phase_task_durations",
    "worker_busy_seconds",
    "worker_nodes",
    "broadcast_ledger_rows",
    "node_ledger_rows",
    "fault_ledger_rows",
    "merge_ledger_rows",
    "ingest_ledger_rows",
    "serving_ledger_rows",
    "snapshot_quantile",
]

#: An attempt at least this many times slower than its phase median is
#: reported as a straggler (matches the default straggler factor region
#: the fault policy speculates on).
STRAGGLER_FACTOR = 2.0


def _winning_attempts(spans: list[Span]) -> list[Span]:
    """One successful attempt per (phase, task): the accepted result."""
    winners: dict[tuple[str | None, int | None], Span] = {}
    for span in spans:
        if span.kind != "attempt" or span.status != "ok":
            continue
        key = (span.phase, span.task_id)
        if key not in winners or span.annotations.get("winner", False):
            winners[key] = span
    return list(winners.values())


def phase_task_durations(spans: list[Span]) -> dict[str, list[float]]:
    """Measured per-task durations by phase (winning attempts only).

    Prefers the worker-reported compute time (``compute_s`` annotation)
    over the span width, which in recovery mode includes driver queue
    time.  This is the duration list scheduling simulations should
    replay (:meth:`repro.engine.simulate.PhaseSchedule.from_trace`).
    """
    out: dict[str, list[float]] = {}
    for span in _winning_attempts(spans):
        duration = float(span.annotations.get("compute_s", span.duration_s))
        out.setdefault(span.phase or "unknown", []).append(duration)
    return out


def worker_busy_seconds(spans: list[Span]) -> dict[int | str, float]:
    """Total attempt seconds per worker (all attempts, winners or not —
    a lost retry still occupied its worker)."""
    out: dict[int | str, float] = {}
    for span in spans:
        if span.kind != "attempt":
            continue
        worker = span.worker if span.worker is not None else "driver"
        out[worker] = out.get(worker, 0.0) + float(
            span.annotations.get("compute_s", span.duration_s)
        )
    return out


def worker_nodes(spans: list[Span]) -> dict[int | str, str]:
    """Map each worker label to the node its attempts ran on.

    Remote attempts carry a ``node`` annotation; serial/process runs
    record none, so the map is empty and reports stay node-free.
    """
    out: dict[int | str, str] = {}
    for span in spans:
        if span.kind != "attempt":
            continue
        node = span.annotations.get("node")
        if node is None:
            continue
        worker = span.worker if span.worker is not None else "driver"
        out[worker] = node
    return out


def _phase_rows(spans: list[Span]) -> list[list]:
    phases = [s for s in spans if s.kind in ("phase", "driver")]
    total = sum(s.duration_s for s in phases) or 1.0
    by_phase = phase_task_durations(spans)
    rows = []
    for span in phases:
        times = (
            by_phase.get(span.phase or span.name, [])
            if span.kind == "phase"
            else []
        )
        rows.append(
            [
                span.name,
                format_duration(span.duration_s),
                f"{span.duration_s / total:.1%}",
                len(times) or None,
                format_duration(max(times)) if times else None,
                format_duration(statistics.median(times)) if times else None,
            ]
        )
    return rows


def _critical_path_rows(spans: list[Span]) -> tuple[list[list], float, float]:
    elapsed = sum(s.duration_s for s in spans if s.kind in ("phase", "driver"))
    by_phase = phase_task_durations(spans)
    rows = []
    critical = 0.0
    for span in spans:
        if span.kind == "driver":
            critical += span.duration_s
            rows.append([span.name, "driver", format_duration(span.duration_s)])
        elif span.kind == "phase":
            times = by_phase.get(span.phase or span.name)
            if times:
                critical += max(times)
                rows.append(
                    [span.name, "slowest task", format_duration(max(times))]
                )
            else:
                critical += span.duration_s
                rows.append([span.name, "driver", format_duration(span.duration_s)])
    return rows, critical, elapsed


def _straggler_rows(spans: list[Span]) -> list[list]:
    rows = []
    by_phase: dict[str, list[Span]] = {}
    for span in _winning_attempts(spans):
        by_phase.setdefault(span.phase or "unknown", []).append(span)
    for phase, attempts in by_phase.items():
        durations = [
            float(s.annotations.get("compute_s", s.duration_s)) for s in attempts
        ]
        if len(durations) < 2:
            continue
        median = statistics.median(durations)
        floor = max(STRAGGLER_FACTOR * median, 1e-9)
        for span, duration in zip(attempts, durations):
            if duration >= floor:
                rows.append(
                    [
                        phase,
                        span.task_id,
                        span.worker,
                        format_duration(duration),
                        f"{duration / max(median, 1e-9):.1f}x median",
                    ]
                )
    return rows


def broadcast_ledger_rows(spans: list[Span]) -> list[list]:
    """One row per broadcast fan-out: epoch, channel, and byte sizes.

    Rendered from ``broadcast_ship`` setup spans; spans recorded before
    the channel annotations existed (or by a foreign tracer) simply
    contribute blank cells.
    """
    rows = []
    for span in spans:
        if span.kind != "setup" or span.name != "broadcast_ship":
            continue
        payload = span.annotations.get("payload_bytes")
        segment = span.annotations.get("segment_bytes")
        num_segments = span.annotations.get("num_segments")
        segment_cell = f"{segment} B" if segment else None
        if segment and num_segments and num_segments > 1:
            # Sharded broadcast: root + leaf shard segments (partial
            # residency on the worker side).
            segment_cell = f"{segment} B / {num_segments} seg"
        if span.annotations.get("segments_reused"):
            segment_cell = (segment_cell or "") + " (reused)"
        rows.append(
            [
                span.epoch,
                span.annotations.get("channel"),
                f"{payload} B" if payload is not None else None,
                segment_cell,
                format_duration(span.duration_s),
            ]
        )
    return rows


def node_ledger_rows(spans: list[Span]) -> list[list]:
    """One row per node per broadcast epoch: the per-node ship record.

    Rendered from the ``node_broadcast <label>`` setup spans the remote
    engine records under each ``broadcast_ship`` fan-out.  An epoch that
    lists every node exactly once is the substrate's one-ship-per-node
    invariant made visible.
    """
    rows = []
    for span in spans:
        if span.kind != "setup" or not span.name.startswith("node_broadcast"):
            continue
        notes = span.annotations
        payload = notes.get("payload_bytes")
        install = notes.get("install_s")
        warm = notes.get("warm_s")
        rows.append(
            [
                notes.get("node"),
                span.epoch,
                f"{payload} B" if payload is not None else None,
                format_duration(float(install)) if install is not None else None,
                format_duration(float(warm)) if warm is not None else None,
            ]
        )
    rows.sort(key=lambda row: (row[1] or 0, str(row[0])))
    return rows


def merge_ledger_rows(spans: list[Span]) -> list[list]:
    """One row per engine-scheduled Phase III-1 tournament round.

    Rendered from the per-round phase spans the engine tournament
    annotates (``merge_round`` et al.); driver-mode tournaments — whose
    span is modeled, not measured — record no round spans and produce no
    rows (their per-round accounting lives in ``MergeStats``).
    """
    rows = []
    for span in spans:
        if span.kind != "phase" or "merge_round" not in span.annotations:
            continue
        notes = span.annotations
        shipped = notes.get("bytes_shipped")
        rows.append(
            [
                notes.get("merge_round"),
                notes.get("matches"),
                notes.get("edges_in"),
                notes.get("edges_out"),
                notes.get("resolved"),
                notes.get("removed"),
                f"{shipped} B" if shipped is not None else None,
                format_duration(span.duration_s),
            ]
        )
    rows.sort(key=lambda row: (row[0] is None, row[0]))
    return rows


def ingest_ledger_rows(spans: list[Span]) -> list[list]:
    """One row per incremental-refit call: the dirty-cell ledger.

    Rendered from the ``ingest`` driver spans
    :meth:`~repro.core.cluster_state.ClusterState.ingest` annotates:
    points appended, cells reconsidered (dirty) out of the union total,
    edges recomputed vs retained, and the splice wall next to the whole
    call's wall — the figures that show an incremental refit really did
    sublinear work.
    """
    rows = []
    for span in spans:
        if span.kind != "driver" or span.name != "ingest":
            continue
        notes = span.annotations
        if "cells_dirty" not in notes:
            continue
        cells_total = notes.get("cells_total")
        cells_dirty = notes.get("cells_dirty")
        dirty_cell = cells_dirty
        if cells_dirty is not None and cells_total:
            dirty_cell = f"{cells_dirty}/{cells_total}"
        splice = notes.get("splice_seconds")
        rows.append(
            [
                notes.get("num_new_points"),
                dirty_cell,
                notes.get("cells_new"),
                notes.get("edges_recomputed"),
                notes.get("edges_retained"),
                format_duration(float(splice)) if splice is not None else None,
                format_duration(span.duration_s),
            ]
        )
    return rows


def snapshot_quantile(hist: dict, q: float) -> float:
    """Bucket-resolution quantile from a snapshotted histogram dict.

    The dict form is what :meth:`repro.obs.metrics.Histogram.to_dict`
    emits (and what a serving stats reply carries over the wire), so
    clients can read p50/p99 without holding the live registry.  Same
    estimator as :meth:`Histogram.quantile`: the upper bound of the
    bucket containing the ``q``-quantile observation.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    total = hist.get("total", 0)
    if not total:
        return 0.0
    boundaries = hist["boundaries"]
    rank = q * total
    seen = 0
    for i, count in enumerate(hist["counts"]):
        seen += count
        if seen >= rank and count:
            if i < len(boundaries):
                return float(boundaries[i])
            return float(hist["max"])
    return float(hist["max"])


def serving_ledger_rows(snapshot: dict) -> list[list]:
    """The serving ledger: one row per serving metric that matters.

    Rendered from a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
    of a predict server's registry (``serve.*`` and
    ``setup_seconds.serve_*`` names).  Each row is ``[metric, value,
    note]``; metrics the snapshot lacks are simply skipped, so partial
    snapshots (a server that never ingested, a numba-free warm-up)
    render without blank noise.
    """
    rows: list[list] = []

    def scalar(name: str, label: str, fmt=lambda v: f"{v:,.0f}", note=None):
        if name in snapshot:
            rows.append([label, fmt(snapshot[name]), note])

    scalar("serve.requests", "requests answered")
    scalar("serve.points", "points labeled")
    scalar("serve.rejected", "requests rejected", note="admission control")
    scalar("serve.errors", "request errors")
    scalar("serve.ingests", "model swaps (ingest)")
    scalar("serve.epoch", "resident model epoch")
    scalar("serve.worker_respawns", "predictor respawns")
    scalar(
        "serve.queue_depth_peak",
        "peak queue depth",
        note="pending requests",
    )
    latency = snapshot.get("serve.latency_seconds")
    if isinstance(latency, dict) and latency.get("total"):
        for q, label in ((0.5, "latency p50"), (0.9, "latency p90"),
                         (0.99, "latency p99")):
            rows.append(
                [label, format_duration(snapshot_quantile(latency, q)),
                 "bucket upper bound"]
            )
        rows.append(
            ["latency max", format_duration(float(latency["max"])), None]
        )
    batch = snapshot.get("serve.batch_points")
    if isinstance(batch, dict) and batch.get("total"):
        rows.append(
            [
                "batch size mean",
                f"{batch['sum'] / batch['total']:.1f} pts",
                f"{batch['total']:,} dispatches",
            ]
        )
        rows.append(
            [
                "batch size p99",
                f"{snapshot_quantile(batch, 0.99):.0f} pts",
                "bucket upper bound",
            ]
        )
    for name, label in (
        ("setup_seconds.serve_install", "model install (setup)"),
        ("setup_seconds.serve_warmup", "JIT warm-up (setup)"),
        ("setup_seconds.serve_ingest", "ingest refits (setup)"),
    ):
        if name in snapshot:
            rows.append([label, format_duration(float(snapshot[name])), None])
    return rows


def render_serving_report(snapshot: dict, *, title: str = "serving report") -> str:
    """Render the serving ledger of one predict server as text."""
    rows = serving_ledger_rows(snapshot)
    if not rows:
        return f"{title}\n{'=' * len(title)}\n(no serving traffic recorded)"
    sections = [f"{title}\n{'=' * len(title)}"]
    sections.append(
        format_table(
            ["metric", "value", "note"],
            rows,
            title="serving ledger",
        )
    )
    return "\n\n".join(sections)


def fault_ledger_rows(spans: list[Span]) -> list[list]:
    """Fault events with wall-clock timestamps, in event order."""
    rows = []
    for span in spans:
        if span.kind != "event":
            continue
        stamp = datetime.fromtimestamp(span.wall_start_s, tz=timezone.utc)
        rows.append(
            [
                stamp.strftime("%H:%M:%S.%f")[:-3],
                span.name,
                span.phase,
                span.task_id,
                span.annotations.get("reason"),
            ]
        )
    return rows


def render_run_report(spans: list[Span], *, title: str = "run report") -> str:
    """Render the full text report for one recorded run."""
    sections = [f"{title}\n{'=' * len(title)}"]

    for span in spans:
        # One header line per fit: input size and the resolved Phase II
        # kernel backend, so a report is self-describing about which
        # code path produced its phase timings.
        if span.kind == "fit" and "kernel" in span.annotations:
            notes = span.annotations
            sections.append(
                f"fit: n={notes.get('n')} dim={notes.get('dim')} "
                f"kernel={notes.get('kernel')}"
            )

    rows = _phase_rows(spans)
    if rows:
        sections.append(
            format_table(
                ["phase", "elapsed", "share", "tasks", "slowest", "median"],
                rows,
                title="phase breakdown (setup excluded)",
            )
        )

    setup = [s for s in spans if s.kind == "setup"]
    if setup:
        total_setup = sum(s.duration_s for s in setup)
        sections.append(
            f"engine setup: {format_duration(total_setup)} across "
            f"{len(setup)} step(s) "
            f"({', '.join(sorted({s.name for s in setup}))})"
        )

    rows = broadcast_ledger_rows(spans)
    if rows:
        sections.append(
            format_table(
                ["epoch", "channel", "payload", "segment", "ship time"],
                rows,
                title="broadcast ledger (one row per fan-out)",
            )
        )

    rows = node_ledger_rows(spans)
    if rows:
        sections.append(
            format_table(
                ["node", "epoch", "payload", "install", "warm"],
                rows,
                title="node broadcast ledger (one ship per node per epoch)",
            )
        )

    busy = worker_busy_seconds(spans)
    nodes = worker_nodes(spans)
    phase_spans = [s for s in spans if s.kind == "phase"]
    window = sum(s.duration_s for s in phase_spans) or 1.0
    if busy:
        rows = [
            [
                str(worker),
                *([nodes.get(worker)] if nodes else []),
                format_duration(seconds),
                render_utilization_bar(seconds / window),
                f"{seconds / window:.1%}",
            ]
            for worker, seconds in sorted(
                busy.items(), key=lambda kv: -kv[1]
            )
        ]
        sections.append(
            format_table(
                ["worker", *(["node"] if nodes else []),
                 "busy", "utilization", "busy frac"],
                rows,
                title="per-worker utilization (over mapped-phase time)",
            )
        )

    rows, critical, elapsed = _critical_path_rows(spans)
    if rows:
        slack = elapsed - critical
        sections.append(
            format_table(
                ["phase", "bound by", "time"],
                rows,
                title=(
                    f"critical path: {format_duration(critical)} lower bound "
                    f"vs {format_duration(elapsed)} elapsed "
                    f"({format_duration(max(slack, 0.0))} schedulable slack)"
                ),
            )
        )

    rows = merge_ledger_rows(spans)
    if rows:
        sections.append(
            format_table(
                [
                    "round", "matches", "edges in", "edges out",
                    "resolved", "removed", "shipped", "wall",
                ],
                rows,
                title=(
                    "merge-round ledger "
                    "(engine-scheduled tournament, measured walls)"
                ),
            )
        )

    rows = ingest_ledger_rows(spans)
    if rows:
        sections.append(
            format_table(
                [
                    "new pts", "dirty cells", "new cells",
                    "edges recomputed", "edges retained", "splice", "wall",
                ],
                rows,
                title="ingest ledger (one row per incremental refit)",
            )
        )

    rows = _straggler_rows(spans)
    if rows:
        sections.append(
            format_table(
                ["phase", "task", "worker", "time", "vs median"],
                rows,
                title=f"stragglers (>= {STRAGGLER_FACTOR:g}x phase median)",
            )
        )

    rows = fault_ledger_rows(spans)
    if rows:
        sections.append(
            format_table(
                ["time (UTC)", "event", "phase", "task", "reason"],
                rows,
                title="fault ledger",
            )
        )

    return "\n\n".join(sections)
