"""Observability subsystem: span tracing, metrics, exporters, profiling.

The window into the execution engine the Spark UI gave the paper's
authors: who ran what, when, where, and what it cost.

* :mod:`repro.obs.spans` — :class:`Span`/:class:`Tracer`, the nested
  fit → phase → task → attempt timeline with fault-event annotations;
  :data:`NULL_TRACER` keeps untraced runs at no-op cost.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges, and fixed-bucket histograms; the legacy
  :class:`~repro.engine.counters.Counters` is now a compatibility shim
  mirroring into one of these.
* :mod:`repro.obs.exporters` — JSONL span logs (round-trippable) and
  Chrome ``trace_event`` JSON for ``chrome://tracing`` / Perfetto.
* :mod:`repro.obs.report` — the human-readable run report: phase
  breakdown, worker utilization, critical path, stragglers, fault
  ledger.
* :mod:`repro.obs.profiling` — opt-in per-task ``cProfile`` capture
  merged across workers into one ``pstats`` view.

See docs/OBSERVABILITY.md for the span model and exporter formats.
"""

from repro.obs.exporters import (
    TRACE_FORMATS,
    read_spans_jsonl,
    to_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
    write_trace,
)
from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    SERVE_BATCH_BUCKETS,
    SERVE_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profiling import dump_merged_profile, merge_profile_blobs, profile_call
from repro.obs.report import (
    merge_ledger_rows,
    render_run_report,
    render_serving_report,
    serving_ledger_rows,
)
from repro.obs.spans import (
    EVENT_RESPAWN,
    EVENT_RETRY,
    EVENT_SPECULATION,
    EVENT_TIMEOUT,
    NULL_TRACER,
    SPAN_KINDS,
    NullTracer,
    Span,
    TraceValidationError,
    Tracer,
    validate_trace,
)

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SPAN_KINDS",
    "EVENT_RETRY",
    "EVENT_TIMEOUT",
    "EVENT_RESPAWN",
    "EVENT_SPECULATION",
    "validate_trace",
    "TraceValidationError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_SECONDS_BUCKETS",
    "SERVE_LATENCY_BUCKETS",
    "SERVE_BATCH_BUCKETS",
    "write_spans_jsonl",
    "read_spans_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_trace",
    "TRACE_FORMATS",
    "render_run_report",
    "merge_ledger_rows",
    "render_serving_report",
    "serving_ledger_rows",
    "profile_call",
    "merge_profile_blobs",
    "dump_merged_profile",
]
