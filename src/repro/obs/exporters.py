"""Trace exporters: JSON-lines span log and Chrome ``trace_event`` JSON.

Two machine formats plus helpers shared by the human-readable run
report (:mod:`repro.obs.report`):

* **JSONL** — one :meth:`~repro.obs.spans.Span.to_dict` record per
  line; trivially greppable, streamable, and round-trippable
  (:func:`read_spans_jsonl`), so recorded traces can be re-loaded to
  build a :class:`~repro.engine.simulate.PhaseSchedule` or re-rendered
  as a report long after the run.
* **Chrome trace** — the ``trace_event`` JSON array format understood
  by ``chrome://tracing`` and https://ui.perfetto.dev: open the file
  there to scrub through the run.  Spans become complete (``"ph":
  "X"``) events; fault events become instants (``"ph": "i"``).  Rows
  are organized one track per worker — driver-side spans (fit, phases,
  setup, driver work) on the ``driver`` track, task attempts on their
  worker's track — so retry/speculation overlap is visible at a glance.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.obs.spans import Span, validate_trace

__all__ = [
    "write_spans_jsonl",
    "read_spans_jsonl",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_trace",
    "TRACE_FORMATS",
]

#: Formats understood by :func:`write_trace` (and the CLI's
#: ``--trace-format``).
TRACE_FORMATS = ("jsonl", "chrome")


def write_spans_jsonl(spans: list[Span], path: str | Path) -> None:
    """Write one JSON record per span; validates the trace first."""
    validate_trace(spans)
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span.to_dict(), sort_keys=True))
            fh.write("\n")


def read_spans_jsonl(path: str | Path) -> list[Span]:
    """Load a span list written by :func:`write_spans_jsonl`."""
    spans: list[Span] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


def _worker_tracks(spans: list[Span]) -> dict[int | str, int]:
    """Stable worker → Chrome ``tid`` mapping; driver is tid 0."""
    tracks: dict[int | str, int] = {}
    for span in spans:
        worker = span.worker
        if worker is None or worker == "driver":
            continue
        if worker not in tracks:
            tracks[worker] = len(tracks) + 1
    return tracks


def to_chrome_trace(spans: list[Span]) -> dict[str, Any]:
    """Convert a trace to the Chrome ``trace_event`` JSON object.

    Timestamps are microseconds relative to the earliest span, which is
    what Perfetto expects; negative timestamps (impossible here) would
    be clamped by the viewer anyway.
    """
    validate_trace(spans)
    events: list[dict[str, Any]] = []
    pid = 1
    tracks = _worker_tracks(spans)
    events.append(
        {"ph": "M", "pid": pid, "name": "process_name",
         "args": {"name": "rp-dbscan"}}
    )
    events.append(
        {"ph": "M", "pid": pid, "tid": 0, "name": "thread_name",
         "args": {"name": "driver"}}
    )
    for worker, tid in tracks.items():
        events.append(
            {"ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
             "args": {"name": f"worker {worker}"}}
        )
    t0 = min((s.start_s for s in spans), default=0.0)

    def micros(t: float) -> float:
        return (t - t0) * 1e6

    for span in spans:
        tid = tracks.get(span.worker, 0)
        args: dict[str, Any] = {"status": span.status}
        for key in ("phase", "task_id", "attempt", "epoch", "worker"):
            value = getattr(span, key)
            if value is not None:
                args[key] = value
        args.update(span.annotations)
        if span.kind == "event":
            events.append(
                {
                    "name": span.name,
                    "cat": span.kind,
                    "ph": "i",
                    "s": "g",  # global-scope instant: draws a full-height line
                    "ts": micros(span.start_s),
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
        else:
            events.append(
                {
                    "name": span.name,
                    "cat": span.kind,
                    "ph": "X",
                    "ts": micros(span.start_s),
                    "dur": max(span.duration_s, 0.0) * 1e6,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: list[Span], path: str | Path) -> None:
    """Write the Chrome/Perfetto trace JSON to ``path``."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(spans), fh)


def write_trace(spans: list[Span], path: str | Path, fmt: str = "jsonl") -> None:
    """Write ``spans`` to ``path`` in one of :data:`TRACE_FORMATS`."""
    if fmt == "jsonl":
        write_spans_jsonl(spans, path)
    elif fmt == "chrome":
        write_chrome_trace(spans, path)
    else:
        raise ValueError(
            f"unknown trace format {fmt!r}; expected one of {TRACE_FORMATS}"
        )
