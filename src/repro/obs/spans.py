"""Span-based tracing: the *when/where* companion to the counters.

The engine's :class:`~repro.engine.counters.Counters` answer *how much*
— total seconds per phase, items per task.  They cannot answer *when*
each task ran, on which worker, or how retries and speculative attempts
overlapped, which is exactly what the paper's load-imbalance story
(Figs 12–13) is about.  This module records that timeline as a tree of
:class:`Span` objects:

``fit`` → ``phase`` → ``task`` → ``attempt``, plus zero-duration
``event`` spans (retry / timeout / respawn / speculation) and ``setup``
spans (pool startup, broadcast shipping) hanging off whatever was
active when they happened.

Clocks
------
Span ``start_s``/``end_s`` are monotonic (:func:`time.perf_counter`).
On Linux — where the process executor forks — ``perf_counter`` reads
``CLOCK_MONOTONIC``, which is system-wide, so worker-measured task
timestamps land on the same axis as driver-side phase spans.  Every
span additionally records ``wall_start_s`` (:func:`time.time`) so
events can be reported as wall-clock datetimes (the fault ledger uses
this for respawn timestamps).

Overhead
--------
The tracer is opt-in.  :data:`NULL_TRACER` (the default everywhere) is
a no-op subclass whose methods return immediately, so untraced runs pay
a single attribute lookup and call per recording site —
``benchmarks/bench_trace_overhead.py`` pins this below 5%.
"""

from __future__ import annotations

import itertools
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SPAN_KINDS",
    "EVENT_RETRY",
    "EVENT_TIMEOUT",
    "EVENT_RESPAWN",
    "EVENT_SPECULATION",
    "validate_trace",
    "TraceValidationError",
]

#: The span vocabulary, outermost first.  ``driver`` marks driver-side
#: algorithm work inside a phase (e.g. the Phase III-1 merge); ``setup``
#: marks engine overhead (pool startup, broadcast shipping, warm-up)
#: that the counters likewise keep out of phase breakdowns.
SPAN_KINDS = ("fit", "phase", "driver", "setup", "task", "attempt", "event")

#: Names of the fault-recovery event spans, matching the counter
#: buckets of :mod:`repro.engine.faults` one-to-one.
EVENT_RETRY = "retry"
EVENT_TIMEOUT = "timeout"
EVENT_RESPAWN = "respawn"
EVENT_SPECULATION = "speculation"

#: Terminal statuses an attempt span may carry.  ``lost`` means the
#: attempt was invalidated by a pool re-spawn; ``abandoned`` means the
#: phase finished while the attempt was still in flight (a racing
#: duplicate won).
ATTEMPT_STATUSES = ("ok", "error", "timeout", "lost", "abandoned")


class TraceValidationError(ValueError):
    """A span (or a trace) violates the well-formedness contract."""


@dataclass
class Span:
    """One node of the trace tree.

    Attributes
    ----------
    span_id / parent_id:
        Tree structure; ``parent_id is None`` marks a root span.
    name:
        Phase name for ``phase`` spans, event name for ``event`` spans,
        ``"task"``/``"attempt"`` labels otherwise.
    kind:
        One of :data:`SPAN_KINDS`.
    start_s / end_s:
        Monotonic timestamps (tracer clock); ``end_s is None`` while
        the span is open.
    wall_start_s:
        ``time.time()`` at span start, for wall-clock reporting.
    worker:
        Worker PID (process mode) or
        :data:`~repro.engine.counters.DRIVER_WORKER`.
    phase / task_id / attempt / epoch:
        Execution coordinates, where applicable.
    status:
        ``"ok"`` or one of the failure statuses (attempt spans).
    annotations:
        Free-form extras (``compute_s``, ``reason``, ``timed_out`` ...).
    """

    span_id: int
    name: str
    kind: str
    start_s: float
    wall_start_s: float
    parent_id: int | None = None
    end_s: float | None = None
    worker: int | str | None = None
    phase: str | None = None
    task_id: int | None = None
    attempt: int | None = None
    epoch: int | None = None
    status: str = "ok"
    annotations: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        """Span duration; 0.0 while the span is still open."""
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    @property
    def closed(self) -> bool:
        return self.end_s is not None

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation (one JSONL record)."""
        out: dict[str, Any] = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "wall_start_s": self.wall_start_s,
            "status": self.status,
        }
        for key in ("worker", "phase", "task_id", "attempt", "epoch"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.annotations:
            out["annotations"] = dict(self.annotations)
        return out

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> "Span":
        """Inverse of :meth:`to_dict`."""
        return cls(
            span_id=record["span_id"],
            parent_id=record.get("parent_id"),
            name=record["name"],
            kind=record["kind"],
            start_s=record["start_s"],
            end_s=record.get("end_s"),
            wall_start_s=record.get("wall_start_s", record["start_s"]),
            worker=record.get("worker"),
            phase=record.get("phase"),
            task_id=record.get("task_id"),
            attempt=record.get("attempt"),
            epoch=record.get("epoch"),
            status=record.get("status", "ok"),
            annotations=dict(record.get("annotations", {})),
        )


class Tracer:
    """Collects spans for one run; driver-side, single-threaded.

    Nesting is tracked by an explicit stack fed by the
    :meth:`span` context manager; spans recorded outside any open span
    become roots.  Worker-measured timings enter through
    :meth:`record_span`, which accepts explicit start/end times instead
    of reading the clock.

    Parameters
    ----------
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`.  When
        attached, every closed ``attempt`` span feeds a per-phase
        duration histogram (``task_seconds.<phase>``) — the
        "spans+histograms" tracing level of the overhead bench.
    """

    #: Class-level flag so recording sites can skip argument building
    #: entirely under the null tracer.
    enabled = True

    def __init__(self, *, metrics: Any = None) -> None:
        self.spans: list[Span] = []
        self.metrics = metrics
        self._ids = itertools.count()
        self._stack: list[Span] = []

    # -- low-level recording -------------------------------------------

    def _now(self) -> float:
        return time.perf_counter()

    def current_parent_id(self) -> int | None:
        """Span id new spans will be parented to (``None`` at root)."""
        return self._stack[-1].span_id if self._stack else None

    def start_span(
        self,
        name: str,
        kind: str,
        *,
        parent_id: int | None = None,
        push: bool = True,
        **coords: Any,
    ) -> Span:
        """Open a span now; ``push=True`` makes it the implicit parent."""
        span = Span(
            span_id=next(self._ids),
            name=name,
            kind=kind,
            start_s=self._now(),
            wall_start_s=time.time(),
            parent_id=parent_id if parent_id is not None else self.current_parent_id(),
            **coords,
        )
        self.spans.append(span)
        if push:
            self._stack.append(span)
        return span

    def end_span(self, span: Span, status: str = "ok", **annotations: Any) -> None:
        """Close ``span``; pops it from the stack if it is on top."""
        span.end_s = self._now()
        span.status = status
        if annotations:
            span.annotations.update(annotations)
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        self._observe(span)

    @contextmanager
    def span(self, name: str, kind: str, **coords: Any):
        """``with tracer.span(...)`` — nested spans parent automatically."""
        span = self.start_span(name, kind, **coords)
        try:
            yield span
        except BaseException:
            self.end_span(span, status="error")
            raise
        self.end_span(span, status=span.status)

    def record_span(
        self,
        name: str,
        kind: str,
        *,
        start_s: float,
        end_s: float,
        parent_id: int | None = None,
        wall_start_s: float | None = None,
        status: str = "ok",
        annotations: dict[str, Any] | None = None,
        **coords: Any,
    ) -> Span:
        """Append an already-measured (closed) span.

        This is how worker-side timings land in the trace: the worker
        reports ``(start, end)`` on the shared monotonic clock and the
        driver records them after the fact.  ``wall_start_s`` defaults
        to a back-projection from the driver's current clock pair.
        """
        if wall_start_s is None:
            wall_start_s = time.time() - (self._now() - start_s)
        span = Span(
            span_id=next(self._ids),
            name=name,
            kind=kind,
            start_s=start_s,
            end_s=end_s,
            wall_start_s=wall_start_s,
            parent_id=parent_id if parent_id is not None else self.current_parent_id(),
            status=status,
            annotations=dict(annotations or {}),
            **coords,
        )
        self.spans.append(span)
        self._observe(span)
        return span

    def event(
        self, name: str, *, parent_id: int | None = None, **coords: Any
    ) -> Span:
        """Record an instantaneous ``event`` span (duration zero)."""
        now = self._now()
        return self.record_span(
            name,
            "event",
            start_s=now,
            end_s=now,
            parent_id=parent_id,
            wall_start_s=time.time(),
            **coords,
        )

    def _observe(self, span: Span) -> None:
        if self.metrics is not None and span.kind == "attempt" and span.closed:
            self.metrics.histogram(
                f"task_seconds.{span.phase or 'unknown'}"
            ).observe(span.duration_s)

    # -- views ----------------------------------------------------------

    def find(self, *, kind: str | None = None, name: str | None = None) -> list[Span]:
        """Spans matching the given kind and/or name, in record order."""
        return [
            s
            for s in self.spans
            if (kind is None or s.kind == kind)
            and (name is None or s.name == name)
        ]

    def events(self, name: str | None = None) -> list[Span]:
        """The fault-event spans (optionally of one ``name``)."""
        return self.find(kind="event", name=name)


class NullTracer(Tracer):
    """A tracer that records nothing; the default everywhere.

    Shares the :class:`Tracer` interface so call sites never branch;
    every method is a constant-time no-op.  A single shared instance,
    :data:`NULL_TRACER`, is used as the disabled default.
    """

    enabled = False

    _NULL_SPAN: Span | None = None

    def __init__(self) -> None:
        super().__init__()
        if NullTracer._NULL_SPAN is None:
            NullTracer._NULL_SPAN = Span(
                span_id=-1, name="null", kind="event", start_s=0.0,
                wall_start_s=0.0, end_s=0.0,
            )

    def start_span(self, name, kind, **kwargs):  # noqa: D102
        return NullTracer._NULL_SPAN

    def end_span(self, span, status="ok", **annotations):  # noqa: D102
        return None

    @contextmanager
    def span(self, name, kind, **coords):  # noqa: D102
        yield NullTracer._NULL_SPAN

    def record_span(self, name, kind, **kwargs):  # noqa: D102
        return NullTracer._NULL_SPAN

    def event(self, name, **kwargs):  # noqa: D102
        return NullTracer._NULL_SPAN


#: Shared no-op tracer: the engine's default, so untraced runs never
#: allocate spans.
NULL_TRACER = NullTracer()


def validate_trace(spans: list[Span]) -> None:
    """Assert the well-formedness contract of a finished trace.

    Every span must be **closed** (``end_s`` set), have a
    **non-negative duration**, be **parented** to a span that exists in
    the trace (or be a root), and carry a known ``kind``; container
    kinds (``fit``/``phase``) must not hang off leaves.  Raises
    :class:`TraceValidationError` on the first violation; used by the
    CI smoke test and the exporters.
    """
    by_id = {s.span_id: s for s in spans}
    if len(by_id) != len(spans):
        raise TraceValidationError("duplicate span ids in trace")
    for span in spans:
        if span.kind not in SPAN_KINDS:
            raise TraceValidationError(
                f"span {span.span_id} has unknown kind {span.kind!r}"
            )
        if not span.closed:
            raise TraceValidationError(
                f"span {span.span_id} ({span.kind} {span.name!r}) was never closed"
            )
        if span.duration_s < 0:
            raise TraceValidationError(
                f"span {span.span_id} ({span.kind} {span.name!r}) has negative "
                f"duration {span.duration_s}"
            )
        if span.parent_id is not None:
            parent = by_id.get(span.parent_id)
            if parent is None:
                raise TraceValidationError(
                    f"span {span.span_id} ({span.kind} {span.name!r}) references "
                    f"missing parent {span.parent_id}"
                )
            if parent.kind in ("task", "attempt", "event"):
                # Structure check: leaves cannot parent containers.
                if span.kind in ("fit", "phase"):
                    raise TraceValidationError(
                        f"{span.kind} span {span.span_id} parented under "
                        f"{parent.kind} span {parent.span_id}"
                    )
