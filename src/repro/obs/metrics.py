"""Metrics registry: named counters, gauges, and fixed-bucket histograms.

The registry generalizes the flat dict buckets of
:class:`~repro.engine.counters.Counters` into three first-class metric
types with a Prometheus-style data model (monotonic counters, last-value
gauges, cumulative-bucket histograms).  ``Counters`` itself survives as
a **compatibility shim**: every write to its legacy dicts is mirrored
into an attached registry under stable names —

===========================  =====================================
legacy bucket                registry metric
===========================  =====================================
``phase_seconds[p]``         counter ``phase_seconds.<p>``
``setup_seconds[c]``         counter ``setup_seconds.<c>``
``fault_events[k]``          counter ``fault_events.<k>``
``phase_tasks[p]`` items     counter ``items.<p>``
``phase_tasks[p]`` times     histogram ``task_seconds.<p>``
===========================  =====================================

so existing consumers keep reading the dicts while new tooling (run
reports, exporters, dashboards) reads the registry — with identical
values, which ``tests/obs/test_metrics.py`` pins.
"""

from __future__ import annotations

import bisect
import math
from collections.abc import Sequence
from typing import Any

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_SECONDS_BUCKETS",
    "SERVE_LATENCY_BUCKETS",
    "SERVE_BATCH_BUCKETS",
]

#: Default histogram boundaries for task-duration metrics, in seconds:
#: log-spaced from 1 ms to 60 s, wide enough for both micro-tasks and
#: chaos-delayed stragglers.  Observations above the last boundary land
#: in the implicit +Inf bucket.
DEFAULT_SECONDS_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Request-latency boundaries for the serving plane, in seconds:
#: log-spaced from 50 µs to 10 s.  Serving latencies sit two orders of
#: magnitude below task durations (a micro-batched predict answers in
#: hundreds of microseconds), so the task buckets above would collapse
#: every healthy request into their first bin and p50/p99 would be
#: indistinguishable.
SERVE_LATENCY_BUCKETS = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 10.0,
)

#: Batch-size boundaries (fused points per dispatch) for the serving
#: plane's batch-size distribution: powers of two up to the largest
#: sane micro-batch.
SERVE_BATCH_BUCKETS = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
)


class Counter:
    """A monotonically non-decreasing value (float-valued)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A value that goes up and down; remembers only the latest set."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-boundary histogram with cumulative-style bucket counts.

    ``boundaries`` are upper bounds of the finite buckets, strictly
    increasing; an implicit +Inf bucket catches the rest.  ``counts``
    holds per-bucket (non-cumulative) observation counts, so
    ``len(counts) == len(boundaries) + 1``.
    """

    __slots__ = ("name", "boundaries", "counts", "total", "sum", "min", "max")

    def __init__(
        self, name: str, boundaries: Sequence[float] = DEFAULT_SECONDS_BUCKETS
    ) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket boundaries must be strictly increasing")
        self.name = name
        self.boundaries = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.boundaries, value)] += 1
        self.total += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the
        bucket containing the ``q``-quantile observation)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.total == 0:
            return 0.0
        rank = q * self.total
        seen = 0
        for i, count in enumerate(self.counts):
            seen += count
            if seen >= rank and count:
                if i < len(self.boundaries):
                    return self.boundaries[i]
                return self.max
        return self.max

    def to_dict(self) -> dict[str, Any]:
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "min": self.min if self.total else None,
            "max": self.max if self.total else None,
        }


class MetricsRegistry:
    """Namespace of metrics, get-or-create by name.

    A name belongs to exactly one metric type; asking for it as a
    different type raises — the mistake this catches is two call sites
    silently splitting one logical metric.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, name: str, factory, kind: type):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), Gauge)

    def histogram(
        self, name: str, boundaries: Sequence[float] = DEFAULT_SECONDS_BUCKETS
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, boundaries), Histogram
        )

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __iter__(self):
        return iter(self._metrics.items())

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def value(self, name: str) -> float:
        """Scalar value of a counter/gauge (KeyError if absent)."""
        metric = self._metrics[name]
        if isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a histogram; use snapshot()")
        return metric.value

    def snapshot(self) -> dict[str, Any]:
        """JSON-serializable dump of every metric."""
        out: dict[str, Any] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                out[name] = metric.to_dict()
            else:
                out[name] = metric.value
        return out
