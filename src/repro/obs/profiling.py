"""Opt-in per-task ``cProfile`` capture, merged across workers.

Tracing answers *when* a task ran; profiling answers *what it spent its
time on*.  Because tasks execute in pool worker processes, each worker
profiles its own task body and ships the raw profile back to the driver
as a ``marshal`` blob (the on-disk format of ``cProfile``/``pstats``),
where :func:`merge_profile_blobs` folds them into one
:class:`pstats.Stats` — the aggregate hot-function view of the whole
parallel run.

The capture wrapper adds one ``cProfile.Profile`` enable/disable per
task, so profiling is opt-in (``Engine(profile=True)`` or the CLI's
``--profile``) and never on in benchmarks unless asked.
"""

from __future__ import annotations

import cProfile
import marshal
import os
import pstats
import tempfile
from pathlib import Path
from typing import Any, Callable

__all__ = ["profile_call", "merge_profile_blobs", "dump_merged_profile"]


def profile_call(fn: Callable[..., Any], *args: Any) -> tuple[Any, bytes]:
    """Run ``fn(*args)`` under ``cProfile``; return ``(result, blob)``.

    ``blob`` is the marshaled stats table, the same bytes
    ``Profile.dump_stats`` writes, so any pstats tooling can read it.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = fn(*args)
    finally:
        profiler.disable()
    profiler.create_stats()
    return result, marshal.dumps(profiler.stats)


def merge_profile_blobs(blobs: list[bytes]) -> pstats.Stats | None:
    """Fold per-task profile blobs into one :class:`pstats.Stats`.

    ``pstats`` only loads from files, so each blob takes a round-trip
    through a temporary file; fine at per-task granularity.  Returns
    ``None`` for an empty list.
    """
    stats: pstats.Stats | None = None
    for blob in blobs:
        fd, path = tempfile.mkstemp(suffix=".prof")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            if stats is None:
                stats = pstats.Stats(path)
            else:
                stats.add(path)
        finally:
            os.unlink(path)
    return stats


def dump_merged_profile(blobs: list[bytes], path: str | Path) -> pstats.Stats | None:
    """Merge ``blobs`` and write the combined stats file to ``path``.

    The output is a standard pstats dump: inspect it with
    ``python -m pstats <path>`` or ``snakeviz``.
    """
    stats = merge_profile_blobs(blobs)
    if stats is not None:
        stats.dump_stats(str(path))
    return stats
