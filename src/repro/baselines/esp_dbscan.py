"""ESP-DBSCAN: even-split partitioning with rho-approximation.

The paper's reimplementation of RDD-DBSCAN [7] (Table 2): the space is
recursively cut so that sub-regions hold as equal point counts as
possible, each split runs rho-approximate local DBSCAN over its region
plus an ``eps`` halo, and local clusters are merged through shared
points.
"""

from __future__ import annotations

from repro.baselines.region_split import RegionSplitDBSCAN, partition_even_split

__all__ = ["ESPDBSCAN"]


class ESPDBSCAN(RegionSplitDBSCAN):
    """Even-split region DBSCAN (RDD-DBSCAN with rho-approximation)."""

    def __init__(
        self, eps: float, min_pts: int, num_splits: int = 8, *, rho: float = 0.01
    ) -> None:
        super().__init__(
            eps,
            min_pts,
            num_splits,
            partitioner=partition_even_split,
            local="rho",
            rho=rho,
        )
