"""RBP-DBSCAN: reduced-boundary partitioning with rho-approximation.

The paper's reimplementation of DBSCAN-MR [8] (Table 2): cuts are chosen
to minimize the number of points inside the overlap band around each cut
plane, reducing data duplication between splits (the effect measured in
Fig 14, where RBP duplicates the least of the region-split family).
"""

from __future__ import annotations

from repro.baselines.region_split import RegionSplitDBSCAN, partition_reduced_boundary

__all__ = ["RBPDBSCAN"]


class RBPDBSCAN(RegionSplitDBSCAN):
    """Reduced-boundary region DBSCAN (DBSCAN-MR with rho-approximation)."""

    def __init__(
        self, eps: float, min_pts: int, num_splits: int = 8, *, rho: float = 0.01
    ) -> None:
        super().__init__(
            eps,
            min_pts,
            num_splits,
            partitioner=partition_reduced_boundary,
            local="rho",
            rho=rho,
        )
