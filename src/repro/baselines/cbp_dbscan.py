"""CBP-DBSCAN: cost-based partitioning with rho-approximation.

The paper's reimplementation of MR-DBSCAN [18] (Table 2): cut positions
equalize an *estimated local clustering cost* derived from an
``eps``-cell histogram rather than raw point counts, which is why CBP
shows the lowest load imbalance of the region-split family in Fig 13 —
while still being far from RP-DBSCAN's near-perfect balance.
"""

from __future__ import annotations

from repro.baselines.region_split import RegionSplitDBSCAN, partition_cost_based

__all__ = ["CBPDBSCAN"]


class CBPDBSCAN(RegionSplitDBSCAN):
    """Cost-based region DBSCAN (MR-DBSCAN with rho-approximation)."""

    def __init__(
        self, eps: float, min_pts: int, num_splits: int = 8, *, rho: float = 0.01
    ) -> None:
        super().__init__(
            eps,
            min_pts,
            num_splits,
            partitioner=partition_cost_based,
            local="rho",
            rho=rho,
        )
