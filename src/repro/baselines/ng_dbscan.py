"""NG-DBSCAN: vertex-centric neighbor-graph DBSCAN (Lulli et al., 2016).

The graph-based comparator of Table 2.  NG-DBSCAN never performs region
queries; instead it:

1. **Phase 1** — grows an approximation of the ``eps``-neighbor graph
   from a random starting configuration, NN-Descent style: every node
   keeps its ``k`` closest known vertices and, each superstep, learns
   about its neighbors' neighbors.  Pairs discovered within ``eps`` are
   accumulated into the epsilon-graph.  Nodes deactivate once they know
   enough epsilon-neighbors; the loop stops when few nodes remain active
   or after a superstep budget.
2. **Phase 2** — marks nodes with at least ``minPts`` epsilon-neighbors
   (self included) as core, forms clusters as connected components of
   core nodes in the epsilon-graph, and attaches border nodes to a
   neighboring core's cluster.

The output approximates DBSCAN: with enough supersteps the epsilon-graph
converges and the clustering matches; with few supersteps clusters can
fragment — exactly the accuracy/time trade-off the original paper
describes.  Being iterative over the full point set, it is also the
slowest scalable baseline on large inputs, which reproduces its position
in Fig 11a.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.base import BaselineResult, relabel_dense
from repro.graph.union_find import UnionFind

__all__ = ["NGDBSCAN"]


class NGDBSCAN:
    """Vertex-centric approximate DBSCAN.

    Parameters
    ----------
    eps, min_pts:
        DBSCAN parameters.
    k_neighbors:
        Size of each node's candidate neighbor list (the original
        implementation's default is 10).
    max_supersteps:
        Superstep budget for Phase 1.
    termination_fraction:
        Stop when fewer than this fraction of nodes remain active.
    seed:
        RNG seed for the random starting configuration.
    """

    def __init__(
        self,
        eps: float,
        min_pts: int,
        *,
        k_neighbors: int = 10,
        max_supersteps: int = 12,
        termination_fraction: float = 0.01,
        seed: int | None = 0,
    ) -> None:
        if eps <= 0:
            raise ValueError("eps must be positive")
        if min_pts < 1:
            raise ValueError("min_pts must be >= 1")
        if k_neighbors < 1:
            raise ValueError("k_neighbors must be >= 1")
        self.eps = float(eps)
        self.min_pts = int(min_pts)
        self.k_neighbors = int(k_neighbors)
        self.max_supersteps = int(max_supersteps)
        self.termination_fraction = float(termination_fraction)
        self.seed = seed

    def fit(self, points: np.ndarray) -> BaselineResult:
        """Cluster ``points`` via the neighbor-graph approximation."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError("points must be (n, d)")
        n = pts.shape[0]
        if n == 0:
            return BaselineResult(
                labels=np.empty(0, dtype=np.int64),
                core_mask=np.empty(0, dtype=bool),
                n_clusters=0,
            )
        t0 = time.perf_counter()
        eps_adjacency = self._build_eps_graph(pts)
        t1 = time.perf_counter()
        labels, core_mask, n_clusters = self._phase2(eps_adjacency, n)
        t2 = time.perf_counter()
        return BaselineResult(
            labels=labels,
            core_mask=core_mask,
            n_clusters=n_clusters,
            phase_seconds={"phase1 neighbor graph": t1 - t0, "phase2 clustering": t2 - t1},
        )

    def fit_predict(self, points: np.ndarray) -> np.ndarray:
        """Cluster ``points`` and return only the label array."""
        return self.fit(points).labels

    # ------------------------------------------------------------------
    # Phase 1: epsilon-graph construction
    # ------------------------------------------------------------------

    def _build_eps_graph(self, pts: np.ndarray) -> list[set[int]]:
        n = pts.shape[0]
        k = min(self.k_neighbors, max(1, n - 1))
        rng = np.random.default_rng(self.seed)
        # Random starting neighbor lists (avoid self by shifting).
        neighbors = rng.integers(0, n - 1, size=(n, k), dtype=np.int64)
        shift = neighbors >= np.arange(n)[:, None]
        neighbors = neighbors + shift
        neighbor_dists = self._distances_rowwise(pts, neighbors)

        # Enough epsilon-neighbors to decide coreness; extra headroom so
        # border attachment has candidates.
        cap = max(2 * self.min_pts, 32)
        eps_adjacency: list[set[int]] = [set() for _ in range(n)]
        self._absorb(pts, np.arange(n), neighbors, neighbor_dists, eps_adjacency, cap)

        active = np.ones(n, dtype=bool)
        for _ in range(self.max_supersteps):
            active_idx = np.nonzero(active)[0]
            if active_idx.size <= self.termination_fraction * n:
                break
            improved = self._superstep(
                pts, active_idx, neighbors, neighbor_dists, eps_adjacency, cap
            )
            # Deactivate nodes that learned nothing new or know enough.
            saturated = np.array(
                [len(eps_adjacency[i]) >= cap for i in active_idx], dtype=bool
            )
            active[active_idx] = improved & ~saturated
        return eps_adjacency

    def _superstep(
        self,
        pts: np.ndarray,
        active_idx: np.ndarray,
        neighbors: np.ndarray,
        neighbor_dists: np.ndarray,
        eps_adjacency: list[set[int]],
        cap: int,
    ) -> np.ndarray:
        """One vertex-centric superstep: probe neighbors-of-neighbors.

        Returns a boolean array aligned with ``active_idx``: whether the
        node's candidate list improved this superstep.
        """
        n, k = neighbors.shape
        improved = np.zeros(active_idx.size, dtype=bool)
        chunk = max(1, 200_000 // max(k * k, 1))
        for start in range(0, active_idx.size, chunk):
            rows = active_idx[start : start + chunk]
            own = neighbors[rows]  # (m, k)
            # Neighbors of neighbors: (m, k*k).
            candidates = neighbors[own].reshape(rows.size, k * k)
            candidates = np.concatenate([own, candidates], axis=1)
            dists = self._distances_rowwise(pts, candidates, rows)
            # Self-candidates get infinite distance so they are ignored.
            dists[candidates == rows[:, None]] = np.inf
            self._absorb(pts, rows, candidates, dists, eps_adjacency, cap)
            # Keep the k closest distinct candidates per node.
            order = np.argsort(dists, axis=1, kind="stable")
            for local, row in enumerate(rows):
                seen: list[int] = []
                seen_set: set[int] = set()
                for j in order[local]:
                    candidate = int(candidates[local, j])
                    if candidate in seen_set or not np.isfinite(dists[local, j]):
                        continue
                    seen.append(candidate)
                    seen_set.add(candidate)
                    if len(seen) == k:
                        break
                if len(seen) < k:  # pad with current list
                    for candidate in neighbors[row]:
                        if int(candidate) not in seen_set:
                            seen.append(int(candidate))
                            seen_set.add(int(candidate))
                        if len(seen) == k:
                            break
                new_row = np.array(seen[:k], dtype=np.int64)
                if new_row.shape[0] == k and not np.array_equal(
                    new_row, neighbors[row]
                ):
                    improved[start + local] = True
                    neighbors[row, : new_row.shape[0]] = new_row
                    diff = pts[new_row] - pts[row]
                    neighbor_dists[row, : new_row.shape[0]] = np.sqrt(
                        np.einsum("ij,ij->i", diff, diff)
                    )
        return improved

    @staticmethod
    def _distances_rowwise(
        pts: np.ndarray, columns: np.ndarray, rows: np.ndarray | None = None
    ) -> np.ndarray:
        """Distances from point ``rows[i]`` to each ``columns[i, j]``."""
        if rows is None:
            rows = np.arange(columns.shape[0])
        diff = pts[columns] - pts[rows][:, None, :]
        return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))

    def _absorb(
        self,
        pts: np.ndarray,
        rows: np.ndarray,
        candidates: np.ndarray,
        dists: np.ndarray,
        eps_adjacency: list[set[int]],
        cap: int,
    ) -> None:
        """Record discovered epsilon-pairs (both directions, capped)."""
        within = dists <= self.eps
        for local, row in enumerate(rows):
            row = int(row)
            if not within[local].any():
                continue
            bucket = eps_adjacency[row]
            for j in np.nonzero(within[local])[0]:
                other = int(candidates[local, j])
                if other == row:
                    continue
                if len(bucket) < cap:
                    bucket.add(other)
                other_bucket = eps_adjacency[other]
                if len(other_bucket) < cap:
                    other_bucket.add(row)

    # ------------------------------------------------------------------
    # Phase 2: clustering on the epsilon-graph
    # ------------------------------------------------------------------

    def _phase2(
        self, eps_adjacency: list[set[int]], n: int
    ) -> tuple[np.ndarray, np.ndarray, int]:
        core_mask = np.array(
            [len(adj) + 1 >= self.min_pts for adj in eps_adjacency], dtype=bool
        )
        uf = UnionFind(int(i) for i in np.nonzero(core_mask)[0])
        for node in np.nonzero(core_mask)[0]:
            node = int(node)
            for other in eps_adjacency[node]:
                if core_mask[other]:
                    uf.union(node, other)
        component = uf.component_labels()
        labels = np.full(n, -1, dtype=np.int64)
        for node, label in component.items():
            labels[node] = label
        for node in range(n):
            if core_mask[node] or labels[node] >= 0:
                continue
            for other in sorted(eps_adjacency[node]):
                if core_mask[other]:
                    labels[node] = component[other]
                    break
        labels, n_clusters = relabel_dense(labels)
        return labels, core_mask, n_clusters
