"""SPARK-DBSCAN: cost-based partitioning without rho-approximation.

The open-source ``spark_dbscan`` implementation of MR-DBSCAN the paper
compares against (Table 2): same cost-based region split as CBP-DBSCAN,
but the local clusterer is the *exact* DBSCAN — which is why it is by
far the slowest entry in Fig 11 ("we observe that it is infeasible to
exclude an approximation technique to deal with large-scale data sets").
"""

from __future__ import annotations

from repro.baselines.region_split import RegionSplitDBSCAN, partition_cost_based

__all__ = ["SparkDBSCAN"]


class SparkDBSCAN(RegionSplitDBSCAN):
    """Cost-based region DBSCAN with exact local clustering."""

    def __init__(self, eps: float, min_pts: int, num_splits: int = 8) -> None:
        super().__init__(
            eps,
            min_pts,
            num_splits,
            partitioner=partition_cost_based,
            local="exact",
        )
