"""The original DBSCAN algorithm (Ester et al., 1996), exact.

Used exactly as the paper uses its R-package DBSCAN: "only for
retrieving the correct clustering to validate the approximation accuracy
of RP-DBSCAN" (Sec 7.1.1) — so the implementation prioritizes being
demonstrably exact while staying fast enough for 10^5-point inputs.

It is grid-accelerated: points are bucketed into cells with diagonal
``eps`` and region queries only touch the bounded set of neighboring
cells, but every density count and every reachability decision uses
exact point-to-point distances.  The clustering itself follows the
standard three steps:

1. mark core points (``|N_eps(p)| >= minPts``, self included);
2. connect core points within ``eps`` of each other (union-find; all
   core points of one cell are mutually reachable since the cell
   diagonal is ``eps``, so they are chained in O(cell size));
3. attach each non-core point within ``eps`` of a core point to that
   core point's cluster (border points), everything else is noise.

This produces exactly the clusters of Definition 2.4 (border-point ties
broken deterministically toward the nearest core point).
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.base import BaselineResult, relabel_dense
from repro.graph.union_find import UnionFind
from repro.spatial.cell_index import NeighborCellFinder
from repro.spatial.distance import pairwise_distances
from repro.spatial.grid import GridSpec, group_points_by_cell

__all__ = ["ExactDBSCAN"]


class ExactDBSCAN:
    """Exact, single-machine DBSCAN.

    Parameters
    ----------
    eps:
        Neighborhood radius.
    min_pts:
        Minimum neighborhood size (the point itself counts, as in
        ``|N_eps(p)| >= minPts`` with ``p in N_eps(p)``).
    candidate_strategy:
        Passed to :class:`NeighborCellFinder` (``"auto"`` by default).
    """

    def __init__(self, eps: float, min_pts: int, *, candidate_strategy: str = "auto") -> None:
        if eps <= 0:
            raise ValueError("eps must be positive")
        if min_pts < 1:
            raise ValueError("min_pts must be >= 1")
        self.eps = float(eps)
        self.min_pts = int(min_pts)
        self.candidate_strategy = candidate_strategy

    def fit(self, points: np.ndarray) -> BaselineResult:
        """Cluster ``points``; returns exact DBSCAN labels."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError("points must be (n, d)")
        n, dim = pts.shape
        start = time.perf_counter()
        if n == 0:
            return BaselineResult(
                labels=np.empty(0, dtype=np.int64),
                core_mask=np.empty(0, dtype=bool),
                n_clusters=0,
            )
        grid = GridSpec(self.eps, dim)
        groups = group_points_by_cell(pts, grid.side)
        finder = NeighborCellFinder(
            set(groups), grid.side, self.eps, strategy=self.candidate_strategy
        )

        core_mask = self._mark_core(pts, groups, finder)
        labels = self._cluster(pts, groups, finder, core_mask)
        labels, n_clusters = relabel_dense(labels)
        elapsed = time.perf_counter() - start
        return BaselineResult(
            labels=labels,
            core_mask=core_mask,
            n_clusters=n_clusters,
            phase_seconds={"total": elapsed},
        )

    def fit_predict(self, points: np.ndarray) -> np.ndarray:
        """Cluster ``points`` and return only the label array."""
        return self.fit(points).labels

    # ------------------------------------------------------------------

    def _mark_core(
        self,
        pts: np.ndarray,
        groups: dict[tuple[int, ...], np.ndarray],
        finder: NeighborCellFinder,
    ) -> np.ndarray:
        """Exact neighbor counting per cell, vectorized per cell pair."""
        eps = self.eps
        core_mask = np.zeros(pts.shape[0], dtype=bool)
        for cell_id, indices in groups.items():
            cell_pts = pts[indices]
            neighbor_indices = [groups[c] for c in finder.candidates(cell_id)]
            candidates = np.concatenate(neighbor_indices)
            dist = pairwise_distances(cell_pts, pts[candidates])
            counts = (dist <= eps).sum(axis=1)
            core_mask[indices] = counts >= self.min_pts
        return core_mask

    def _cluster(
        self,
        pts: np.ndarray,
        groups: dict[tuple[int, ...], np.ndarray],
        finder: NeighborCellFinder,
        core_mask: np.ndarray,
    ) -> np.ndarray:
        eps = self.eps
        uf = UnionFind()
        core_by_cell: dict[tuple[int, ...], np.ndarray] = {}
        for cell_id, indices in groups.items():
            core_here = indices[core_mask[indices]]
            if core_here.size:
                core_by_cell[cell_id] = core_here
                # All core points of one cell are pairwise within eps
                # (cell diagonal = eps): chain them.
                first = int(core_here[0])
                uf.add(first)
                for idx in core_here[1:]:
                    uf.union(first, int(idx))

        # Connect core points across neighboring cells.  One union per
        # (core point, neighbor cell) suffices because the neighbor
        # cell's core points are already chained.
        cell_list = sorted(core_by_cell)
        for cell_id in cell_list:
            mine = core_by_cell[cell_id]
            for other in finder.candidates(cell_id):
                if other <= cell_id or other not in core_by_cell:
                    continue
                theirs = core_by_cell[other]
                dist = pairwise_distances(pts[mine], pts[theirs])
                hits = dist <= eps
                rows = np.nonzero(hits.any(axis=1))[0]
                for row in rows:
                    col = int(np.argmax(hits[row]))
                    uf.union(int(mine[row]), int(theirs[col]))

        component = uf.component_labels()
        labels = np.full(pts.shape[0], -1, dtype=np.int64)
        for indices in core_by_cell.values():
            for idx in indices:
                labels[int(idx)] = component[int(idx)]

        # Border points: nearest core neighbor within eps wins.
        for cell_id, indices in groups.items():
            border = indices[~core_mask[indices]]
            if border.size == 0:
                continue
            neighbor_core = [
                core_by_cell[c]
                for c in finder.candidates(cell_id)
                if c in core_by_cell
            ]
            if not neighbor_core:
                continue
            core_candidates = np.concatenate(neighbor_core)
            dist = pairwise_distances(pts[border], pts[core_candidates])
            dist[dist > eps] = np.inf
            nearest = np.argmin(dist, axis=1)
            reachable = np.isfinite(dist[np.arange(border.size), nearest])
            for row in np.nonzero(reachable)[0]:
                owner = int(core_candidates[nearest[row]])
                labels[int(border[row])] = component[owner]
        return labels
