"""Single-machine rho-approximate DBSCAN (Gan & Tao, SIGMOD 2015).

The approximation the paper folds into its region-split baselines
("for fair comparison ... we implemented rho-approximate DBSCAN in
ESP-DBSCAN, RBP-DBSCAN, and CBP-DBSCAN", Sec 7.1.2): density counts use
a cell/sub-cell summary instead of exact point distances, with the same
sandwich guarantee (Theorem 5.3) RP-DBSCAN inherits.

The implementation composes the repository's core primitives — the
two-level cell dictionary, the (eps, rho)-region query, cell-graph
construction, and point labeling — over a *single* partition holding
every cell.  That makes the identity explicit: RP-DBSCAN with ``k = 1``
partitions *is* rho-approximate DBSCAN plus partitioning bookkeeping.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.base import BaselineResult
from repro.core.cells import CellGeometry
from repro.core.construction import QueryContext, build_cell_subgraph
from repro.core.dictionary import CellDictionary
from repro.core.labeling import build_labeling_context, label_partition
from repro.core.merging import progressive_merge
from repro.core.partitioning import pseudo_random_partition

__all__ = ["RhoDBSCAN"]


class RhoDBSCAN:
    """rho-approximate DBSCAN on a single machine.

    Parameters
    ----------
    eps:
        Neighborhood radius.
    min_pts:
        Minimum (approximate) neighborhood size for a core point.
    rho:
        Approximation parameter; the clustering converges to exact
        DBSCAN as ``rho -> 0`` (Theorem 5.4).
    """

    def __init__(self, eps: float, min_pts: int, rho: float = 0.01) -> None:
        if eps <= 0:
            raise ValueError("eps must be positive")
        if min_pts < 1:
            raise ValueError("min_pts must be >= 1")
        self.eps = float(eps)
        self.min_pts = int(min_pts)
        self.rho = float(rho)

    def fit(self, points: np.ndarray) -> BaselineResult:
        """Cluster ``points`` with approximate region queries."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError("points must be (n, d)")
        n, dim = pts.shape
        start = time.perf_counter()
        if n == 0:
            return BaselineResult(
                labels=np.empty(0, dtype=np.int64),
                core_mask=np.empty(0, dtype=bool),
                n_clusters=0,
            )
        geometry = CellGeometry(self.eps, dim, self.rho)
        [partition] = pseudo_random_partition(pts, geometry, 1, seed=0)
        dictionary = CellDictionary.from_points(pts, geometry)
        context = QueryContext(dictionary)
        subgraph = build_cell_subgraph(partition, context, self.min_pts)
        graph, _ = progressive_merge([subgraph.graph])
        labeling_context = build_labeling_context(
            graph, [partition], {0: subgraph.core_mask}, self.eps,
            dictionary.index_map,
        )
        global_indices, local_labels = label_partition(partition, labeling_context)
        labels = np.full(n, -1, dtype=np.int64)
        labels[global_indices] = local_labels
        core_mask = np.zeros(n, dtype=bool)
        core_mask[partition.global_indices] = subgraph.core_mask
        elapsed = time.perf_counter() - start
        return BaselineResult(
            labels=labels,
            core_mask=core_mask,
            n_clusters=labeling_context.n_clusters,
            phase_seconds={"total": elapsed},
        )

    def fit_predict(self, points: np.ndarray) -> np.ndarray:
        """Cluster ``points`` and return only the label array."""
        return self.fit(points).labels
