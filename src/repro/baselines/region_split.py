"""The region-split parallel DBSCAN family (paper Sec 2.2.2, Table 2).

These baselines split the *space* into ``k`` contiguous, disjoint core
regions, give each split its core-region points plus a halo of width
``eps`` (the overlap that the same-split restriction requires), run a
local DBSCAN per split, and merge local clusters through the points
shared by overlapping splits.

The framework is shared; the three published strategies differ only in
how the cut positions are chosen:

* **even-split** (RDD-DBSCAN / ESP-DBSCAN): split the most populated
  region at the median of its widest axis, equalizing point counts.
* **reduced-boundary** (DBSCAN-MR / RBP-DBSCAN): choose the cut that
  minimizes the number of points inside the ``cut +- eps`` boundary
  band, subject to a balance constraint.
* **cost-based** (MR-DBSCAN / CBP- and SPARK-DBSCAN): estimate the local
  clustering cost of a region from an ``eps``-cell histogram (sum of
  squared cell counts — region queries are quadratic in local density)
  and equalize estimated *cost* instead of point count.

Merging is the standard shared-point rule: a halo point marked core by
*any* split is genuinely core (halo truncation can only undercount a
neighborhood), so all local clusters containing it are united.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass

import numpy as np

from repro.baselines.base import BaselineResult, relabel_dense
from repro.baselines.dbscan import ExactDBSCAN
from repro.baselines.rho_dbscan import RhoDBSCAN
from repro.graph.union_find import UnionFind

__all__ = [
    "Region",
    "RegionSplitDBSCAN",
    "partition_even_split",
    "partition_reduced_boundary",
    "partition_cost_based",
]


@dataclass(frozen=True)
class Region:
    """A half-open axis-aligned box ``[lo, hi)``; outer faces are infinite.

    Regions produced by the partitioners are pairwise disjoint and
    jointly cover the whole space, so every point has exactly one owner.
    """

    lo: tuple[float, ...]
    hi: tuple[float, ...]

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean ownership mask (half-open box test)."""
        lo = np.asarray(self.lo)
        hi = np.asarray(self.hi)
        return np.all(points >= lo, axis=1) & np.all(points < hi, axis=1)

    def contains_expanded(self, points: np.ndarray, eps: float) -> np.ndarray:
        """Membership in the box inflated by ``eps`` (core + halo)."""
        lo = np.asarray(self.lo) - eps
        hi = np.asarray(self.hi) + eps
        return np.all(points >= lo, axis=1) & np.all(points < hi, axis=1)

    def split(self, axis: int, cut: float) -> tuple["Region", "Region"]:
        """Split at ``cut`` along ``axis`` into two half-open boxes."""
        if not self.lo[axis] < cut <= self.hi[axis]:
            raise ValueError(f"cut {cut} outside region on axis {axis}")
        left_hi = list(self.hi)
        left_hi[axis] = cut
        right_lo = list(self.lo)
        right_lo[axis] = cut
        return (
            Region(self.lo, tuple(left_hi)),
            Region(tuple(right_lo), self.hi),
        )


def _root_region(dim: int) -> Region:
    return Region((-np.inf,) * dim, (np.inf,) * dim)


# ----------------------------------------------------------------------
# Partitioning strategies
# ----------------------------------------------------------------------


def partition_even_split(points: np.ndarray, k: int, eps: float) -> list[Region]:
    """Even-split partitioning (RDD-DBSCAN): equalize point counts."""
    return _recursive_partition(points, k, eps, _cut_median)


def partition_reduced_boundary(points: np.ndarray, k: int, eps: float) -> list[Region]:
    """Reduced-boundary partitioning (DBSCAN-MR): minimize halo points."""
    return _recursive_partition(points, k, eps, _cut_min_boundary)


def partition_cost_based(points: np.ndarray, k: int, eps: float) -> list[Region]:
    """Cost-based partitioning (MR-DBSCAN): equalize estimated cost."""
    return _recursive_partition(points, k, eps, _cut_balance_cost)


def _recursive_partition(points, k, eps, choose_cut) -> list[Region]:
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError("points must be (n, d)")
    if k < 1:
        raise ValueError("k must be >= 1")
    dim = pts.shape[1]
    root = _root_region(dim)
    # Max-heap by region point count; counter breaks ties deterministically.
    heap: list[tuple[int, int, Region, np.ndarray]] = []
    counter = 0
    all_idx = np.arange(pts.shape[0])
    heapq.heappush(heap, (-pts.shape[0], counter, root, all_idx))
    done: list[Region] = []
    while heap and len(heap) + len(done) < k:
        neg_count, _, region, idx = heapq.heappop(heap)
        sub = pts[idx]
        cut = choose_cut(sub, eps)
        if cut is None:
            done.append(region)
            continue
        axis, position = cut
        left, right = region.split(axis, position)
        left_mask = sub[:, axis] < position
        counter += 1
        heapq.heappush(heap, (-int(left_mask.sum()), counter, left, idx[left_mask]))
        counter += 1
        heapq.heappush(
            heap, (-int((~left_mask).sum()), counter, right, idx[~left_mask])
        )
    return done + [entry[2] for entry in heap]


def _cut_median(sub: np.ndarray, eps: float) -> tuple[int, float] | None:
    """Median cut on the widest axis (even split)."""
    if sub.shape[0] < 2:
        return None
    spread = sub.max(axis=0) - sub.min(axis=0)
    for axis in np.argsort(spread)[::-1]:
        axis = int(axis)
        if spread[axis] <= 0:
            return None
        position = float(np.median(sub[:, axis]))
        lo, hi = sub[:, axis].min(), sub[:, axis].max()
        if lo < position <= hi and (sub[:, axis] < position).any():
            return axis, position
    return None


def _cut_min_boundary(sub: np.ndarray, eps: float) -> tuple[int, float] | None:
    """Cut minimizing points within ``eps`` of the cut plane, keeping at
    least a quarter of the region's points on each side."""
    n = sub.shape[0]
    if n < 4:
        return _cut_median(sub, eps)
    quantiles = np.linspace(0.25, 0.75, 17)
    best: tuple[int, int, float] | None = None  # (band_count, axis, cut)
    for axis in range(sub.shape[1]):
        values = sub[:, axis]
        if values.max() - values.min() <= 0:
            continue
        candidates = np.unique(np.quantile(values, quantiles))
        for position in candidates:
            position = float(position)
            left = int((values < position).sum())
            if left < n // 4 or (n - left) < n // 4:
                continue
            band = int(((values >= position - eps) & (values < position + eps)).sum())
            if best is None or band < best[0]:
                best = (band, axis, position)
    if best is None:
        return _cut_median(sub, eps)
    return best[1], best[2]


def _cost_histogram(values: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Prefix-summable per-point weights sorted by ``values``."""
    order = np.argsort(values, kind="stable")
    return order, np.cumsum(weights[order])


def _cut_balance_cost(sub: np.ndarray, eps: float) -> tuple[int, float] | None:
    """Cut equalizing estimated local-clustering cost (cost-based).

    Cost of a region is estimated as ``sum(n_c^2)`` over its ``eps``-side
    histogram cells: a region query in a cell of density ``n_c`` touches
    ``O(n_c)`` points and every point issues one query, so local work is
    quadratic in cell density.  Each point carries a weight equal to its
    cell's density; prefix sums of weights along an axis then approximate
    the cost split.
    """
    n = sub.shape[0]
    if n < 2:
        return None
    side = max(eps, 1e-12)
    cells = np.floor(sub / side).astype(np.int64)
    _, inverse, counts = np.unique(
        cells, axis=0, return_inverse=True, return_counts=True
    )
    weights = counts[inverse].astype(np.float64)  # point weight = its cell density
    total = float(weights.sum())
    best: tuple[float, int, float] | None = None  # (imbalance, axis, cut)
    for axis in range(sub.shape[1]):
        values = sub[:, axis]
        if values.max() - values.min() <= 0:
            continue
        order = np.argsort(values, kind="stable")
        sorted_values = values[order]
        prefix = np.cumsum(weights[order])
        # Candidate cuts between distinct coordinates.
        distinct = np.nonzero(sorted_values[1:] != sorted_values[:-1])[0]
        if distinct.size == 0:
            continue
        left_cost = prefix[distinct]
        imbalance = np.abs(total - 2.0 * left_cost)
        pick = int(np.argmin(imbalance))
        candidate = (
            float(imbalance[pick]),
            axis,
            float(sorted_values[distinct[pick] + 1]),
        )
        if best is None or candidate[0] < best[0]:
            best = candidate
    if best is None:
        return None
    return best[1], best[2]


# ----------------------------------------------------------------------
# The shared framework
# ----------------------------------------------------------------------


class RegionSplitDBSCAN:
    """Parallel DBSCAN via contiguous overlapping sub-regions.

    Parameters
    ----------
    eps, min_pts:
        DBSCAN parameters.
    num_splits:
        Number of sub-regions ``k``.
    partitioner:
        One of the ``partition_*`` functions in this module.
    local:
        ``"rho"`` (rho-approximate local DBSCAN, as the paper's
        ESP/RBP/CBP reimplementations) or ``"exact"`` (SPARK-DBSCAN).
    rho:
        Approximation parameter for the ``"rho"`` local clusterer.
    """

    def __init__(
        self,
        eps: float,
        min_pts: int,
        num_splits: int = 8,
        *,
        partitioner=partition_cost_based,
        local: str = "rho",
        rho: float = 0.01,
    ) -> None:
        if local not in ("rho", "exact"):
            raise ValueError(f"unknown local clusterer {local!r}")
        self.eps = float(eps)
        self.min_pts = int(min_pts)
        self.num_splits = int(num_splits)
        self.partitioner = partitioner
        self.local = local
        self.rho = float(rho)

    def _local_clusterer(self):
        if self.local == "rho":
            return RhoDBSCAN(self.eps, self.min_pts, self.rho)
        return ExactDBSCAN(self.eps, self.min_pts)

    def fit(self, points: np.ndarray) -> BaselineResult:
        """Split, locally cluster, and merge."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError("points must be (n, d)")
        n = pts.shape[0]
        if n == 0:
            return BaselineResult(
                labels=np.empty(0, dtype=np.int64),
                core_mask=np.empty(0, dtype=bool),
                n_clusters=0,
            )
        t0 = time.perf_counter()
        regions = self.partitioner(pts, self.num_splits, self.eps)
        split_members = [
            np.nonzero(region.contains_expanded(pts, self.eps))[0] for region in regions
        ]
        t_partition = time.perf_counter() - t0

        # Local clustering per split (halo included).
        clusterer = self._local_clusterer()
        split_labels: list[np.ndarray] = []
        split_core: list[np.ndarray] = []
        task_seconds: list[float] = []
        point_counts: list[int] = []
        for members in split_members:
            start = time.perf_counter()
            local = clusterer.fit(pts[members])
            task_seconds.append(time.perf_counter() - start)
            point_counts.append(int(members.shape[0]))
            split_labels.append(local.labels)
            split_core.append(local.core_mask)

        # Merge: union clusters through shared points that are core in
        # some split; collect per-point assignments.
        t1 = time.perf_counter()
        uf = UnionFind()
        for split_id, labels in enumerate(split_labels):
            for label in np.unique(labels[labels >= 0]):
                uf.add((split_id, int(label)))
        owner_label = np.full(n, -1, dtype=np.int64)
        any_label: dict[int, tuple[int, int]] = {}
        assignments: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        core_mask = np.zeros(n, dtype=bool)
        for split_id, (members, labels, core) in enumerate(
            zip(split_members, split_labels, split_core)
        ):
            for row, point in enumerate(members):
                label = int(labels[row])
                if label >= 0:
                    assignments[int(point)].append((split_id, label))
                if core[row]:
                    core_mask[int(point)] = True
        for point, assigned in enumerate(assignments):
            if not assigned:
                continue
            if core_mask[point]:
                first = assigned[0]
                uf.add(first)
                for other in assigned[1:]:
                    uf.union(first, other)
            any_label[point] = assigned[0]

        # Ownership: a point's own region decides; fall back to any split
        # that assigned it (border points near region boundaries).
        owner_assignment: dict[int, tuple[int, int]] = {}
        for split_id, region in enumerate(regions):
            owned = np.nonzero(region.contains(pts))[0]
            members = split_members[split_id]
            position = {int(p): r for r, p in enumerate(members)}
            labels = split_labels[split_id]
            for point in owned:
                row = position.get(int(point))
                if row is not None and labels[row] >= 0:
                    owner_assignment[int(point)] = (split_id, int(labels[row]))
        component = uf.component_labels()
        for point in range(n):
            assigned = owner_assignment.get(point, any_label.get(point))
            if assigned is None:
                continue
            rep = component.get(assigned)
            owner_label[point] = rep if rep is not None else -1
        labels, n_clusters = relabel_dense(owner_label)
        t_merge = time.perf_counter() - t1
        return BaselineResult(
            labels=labels,
            core_mask=core_mask,
            n_clusters=n_clusters,
            split_task_seconds=task_seconds,
            split_point_counts=point_counts,
            phase_seconds={
                "partition": t_partition,
                "local": sum(task_seconds),
                "merge": t_merge,
            },
        )

    def fit_predict(self, points: np.ndarray) -> np.ndarray:
        """Cluster ``points`` and return only the label array."""
        return self.fit(points).labels
