"""Common result type and interface for all baseline algorithms.

Every baseline returns a :class:`BaselineResult` holding the labels plus
the measurements the evaluation figures need: per-split local-clustering
task times (load imbalance, Fig 13) and the number of points processed
per split (duplication, Fig 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

__all__ = ["BaselineResult", "ClusteringAlgorithm"]


@dataclass
class BaselineResult:
    """Uniform output of every clustering algorithm in this repository.

    Attributes
    ----------
    labels:
        ``(n,)`` int64 cluster labels, ``-1`` for noise.
    core_mask:
        ``(n,)`` bool core-point flags (may be all-``False`` for
        algorithms without an explicit core notion, e.g. NG-DBSCAN's
        seeds are reported here).
    n_clusters:
        Number of clusters found.
    split_task_seconds:
        Wall time of local clustering per split (empty for
        single-machine algorithms).
    split_point_counts:
        Points processed per split, *including halo duplicates* for
        region-split algorithms.
    phase_seconds:
        Named phase durations (partitioning / local / merge ...).
    """

    labels: np.ndarray
    core_mask: np.ndarray
    n_clusters: int
    split_task_seconds: list[float] = field(default_factory=list)
    split_point_counts: list[int] = field(default_factory=list)
    phase_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def noise_count(self) -> int:
        """Number of points labeled as noise."""
        return int(np.count_nonzero(self.labels == -1))

    @property
    def total_seconds(self) -> float:
        """Total elapsed time across recorded phases."""
        return sum(self.phase_seconds.values())

    @property
    def load_imbalance(self) -> float:
        """Slowest/fastest local-clustering split ratio (Fig 13)."""
        if len(self.split_task_seconds) < 2:
            return 1.0
        fastest = max(min(self.split_task_seconds), 1e-9)
        return max(self.split_task_seconds) / fastest

    @property
    def points_processed(self) -> int:
        """Total points processed across splits, duplicates included
        (Fig 14); equals ``len(labels)`` only without duplication."""
        if self.split_point_counts:
            return int(sum(self.split_point_counts))
        return int(self.labels.shape[0])


class ClusteringAlgorithm(Protocol):
    """Interface implemented by every algorithm in this repository."""

    def fit(self, points: np.ndarray) -> BaselineResult:
        """Cluster ``points`` and return a :class:`BaselineResult`."""
        ...


def relabel_dense(labels: np.ndarray) -> tuple[np.ndarray, int]:
    """Map arbitrary non-negative labels to dense ``0..k-1`` (noise kept).

    Returns the relabeled array and the number of clusters.
    """
    out = np.full(labels.shape[0], -1, dtype=np.int64)
    mask = labels >= 0
    if not mask.any():
        return out, 0
    unique = np.unique(labels[mask])
    mapping = {int(old): new for new, old in enumerate(unique)}
    out[mask] = np.array([mapping[int(v)] for v in labels[mask]], dtype=np.int64)
    return out, len(unique)
