"""Every comparison algorithm from the paper's Table 2.

* :class:`~repro.baselines.dbscan.ExactDBSCAN` — the original DBSCAN
  (grid-accelerated but exact); ground truth for accuracy experiments.
* :class:`~repro.baselines.rho_dbscan.RhoDBSCAN` — single-machine
  rho-approximate DBSCAN (Gan & Tao), the local clusterer used inside
  the region-split baselines with rho-approximation.
* :class:`~repro.baselines.esp_dbscan.ESPDBSCAN` — even-split
  partitioning (RDD-DBSCAN) with rho-approximation.
* :class:`~repro.baselines.rbp_dbscan.RBPDBSCAN` — reduced-boundary
  partitioning (DBSCAN-MR) with rho-approximation.
* :class:`~repro.baselines.cbp_dbscan.CBPDBSCAN` — cost-based
  partitioning (MR-DBSCAN) with rho-approximation.
* :class:`~repro.baselines.spark_dbscan.SparkDBSCAN` — cost-based
  partitioning *without* rho-approximation (exact local DBSCAN).
* :class:`~repro.baselines.ng_dbscan.NGDBSCAN` — vertex-centric
  neighbor-graph DBSCAN.
* :class:`~repro.baselines.naive_random.NaiveRandomDBSCAN` — the naive
  point-level random split of Sec 2.2.1 (accuracy ablation).

All expose ``fit(points) -> BaselineResult`` with labels, per-split task
times, and duplication counts so the harness can compute the paper's
efficiency metrics uniformly.
"""

from repro.baselines.base import BaselineResult
from repro.baselines.cbp_dbscan import CBPDBSCAN
from repro.baselines.dbscan import ExactDBSCAN
from repro.baselines.esp_dbscan import ESPDBSCAN
from repro.baselines.naive_random import NaiveRandomDBSCAN
from repro.baselines.ng_dbscan import NGDBSCAN
from repro.baselines.rbp_dbscan import RBPDBSCAN
from repro.baselines.rho_dbscan import RhoDBSCAN
from repro.baselines.spark_dbscan import SparkDBSCAN

__all__ = [
    "BaselineResult",
    "ExactDBSCAN",
    "RhoDBSCAN",
    "ESPDBSCAN",
    "RBPDBSCAN",
    "CBPDBSCAN",
    "SparkDBSCAN",
    "NGDBSCAN",
    "NaiveRandomDBSCAN",
]
