"""Naive random split DBSCAN (paper Sec 2.2.1: SDBC / S-DBSCAN family).

The strawman RP-DBSCAN improves upon: split the *points* (not cells)
randomly into ``k`` disjoint subsets, run local DBSCAN per subset with a
proportionally scaled ``minPts`` (each subset sees roughly ``1/k`` of
every neighborhood), then merge local clusters whose core points come
within ``eps`` of each other, judged on sampled cluster representatives.

This "succeeded to improve efficiency but lost accuracy": without a
global summary, region queries see only the split's own points, so
densities — and therefore core decisions and cluster shapes — are
approximate.  The ablation bench quantifies that accuracy loss against
RP-DBSCAN, whose two-level cell dictionary restores exact-density
queries under random splitting.
"""

from __future__ import annotations

import time

import numpy as np

from repro.baselines.base import BaselineResult, relabel_dense
from repro.baselines.dbscan import ExactDBSCAN
from repro.graph.union_find import UnionFind
from repro.spatial.distance import pairwise_distances

__all__ = ["NaiveRandomDBSCAN"]


class NaiveRandomDBSCAN:
    """Point-level random split DBSCAN with representative-based merging.

    Parameters
    ----------
    eps, min_pts:
        DBSCAN parameters (of the *global* problem; each split runs with
        ``max(1, round(min_pts / k))``).
    num_splits:
        Number of random subsets ``k``.
    representatives_per_cluster:
        Core points sampled per local cluster for the merge test.
    seed:
        RNG seed for the split and sampling.
    """

    def __init__(
        self,
        eps: float,
        min_pts: int,
        num_splits: int = 8,
        *,
        representatives_per_cluster: int = 64,
        seed: int | None = 0,
    ) -> None:
        if num_splits < 1:
            raise ValueError("num_splits must be >= 1")
        self.eps = float(eps)
        self.min_pts = int(min_pts)
        self.num_splits = int(num_splits)
        self.representatives_per_cluster = int(representatives_per_cluster)
        self.seed = seed

    def fit(self, points: np.ndarray) -> BaselineResult:
        """Cluster ``points`` with the naive random-split strategy."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError("points must be (n, d)")
        n = pts.shape[0]
        if n == 0:
            return BaselineResult(
                labels=np.empty(0, dtype=np.int64),
                core_mask=np.empty(0, dtype=bool),
                n_clusters=0,
            )
        rng = np.random.default_rng(self.seed)
        order = rng.permutation(n)
        local_min_pts = max(1, round(self.min_pts / self.num_splits))
        clusterer = ExactDBSCAN(self.eps, local_min_pts)

        split_indices: list[np.ndarray] = []
        split_results: list[BaselineResult] = []
        task_seconds: list[float] = []
        t0 = time.perf_counter()
        for split_id in range(self.num_splits):
            indices = order[split_id :: self.num_splits]
            start = time.perf_counter()
            split_results.append(clusterer.fit(pts[indices]))
            task_seconds.append(time.perf_counter() - start)
            split_indices.append(indices)
        t_local = time.perf_counter() - t0

        # Merge via sampled core representatives.
        t1 = time.perf_counter()
        uf = UnionFind()
        reps: list[tuple[tuple[int, int], np.ndarray]] = []
        for split_id, (indices, local) in enumerate(zip(split_indices, split_results)):
            for label in np.unique(local.labels[local.labels >= 0]):
                key = (split_id, int(label))
                uf.add(key)
                members = (local.labels == label) & local.core_mask
                rows = np.nonzero(members)[0]
                if rows.size > self.representatives_per_cluster:
                    rows = rng.choice(
                        rows, self.representatives_per_cluster, replace=False
                    )
                reps.append((key, pts[indices[rows]]))
        for i in range(len(reps)):
            key_i, pts_i = reps[i]
            if pts_i.shape[0] == 0:
                continue
            for j in range(i + 1, len(reps)):
                key_j, pts_j = reps[j]
                if key_i[0] == key_j[0] or pts_j.shape[0] == 0:
                    continue
                if uf.connected(key_i, key_j):
                    continue
                if (pairwise_distances(pts_i, pts_j) <= self.eps).any():
                    uf.union(key_i, key_j)
        component = uf.component_labels()
        labels = np.full(n, -1, dtype=np.int64)
        core_mask = np.zeros(n, dtype=bool)
        for split_id, (indices, local) in enumerate(zip(split_indices, split_results)):
            assigned = local.labels >= 0
            rows = np.nonzero(assigned)[0]
            for row in rows:
                labels[int(indices[row])] = component[(split_id, int(local.labels[row]))]
            core_mask[indices[local.core_mask]] = True
        labels, n_clusters = relabel_dense(labels)
        t_merge = time.perf_counter() - t1
        return BaselineResult(
            labels=labels,
            core_mask=core_mask,
            n_clusters=n_clusters,
            split_task_seconds=task_seconds,
            split_point_counts=[int(idx.shape[0]) for idx in split_indices],
            phase_seconds={"local": t_local, "merge": t_merge},
        )

    def fit_predict(self, points: np.ndarray) -> np.ndarray:
        """Cluster ``points`` and return only the label array."""
        return self.fit(points).labels
