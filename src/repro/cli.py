"""``rp-dbscan`` command-line interface.

Six subcommands::

    rp-dbscan generate --dataset GeoLife --n 20000 --out points.npy
    rp-dbscan cluster points.npy --eps 3 --min-pts 40 --out labels.txt \
        --save-model model.rpst
    rp-dbscan predict queries.npy --model model.rpst --out labels.npy
    rp-dbscan serve --model model.rpst --port 7171 --workers 2
    rp-dbscan compare points.npy --eps 3 --min-pts 40 --timeout 120
    rp-dbscan accuracy points.npy --eps 3 --min-pts 40

``generate`` synthesizes one of the data-set stand-ins, ``cluster`` runs
RP-DBSCAN on a point file (optionally persisting the fitted model plane
as an ``RPST`` stream), ``predict`` classifies new points against a
saved model (streamed in chunks, so beyond-RAM query files work),
``serve`` runs the online predict server of :mod:`repro.serve`,
``compare`` runs RP-DBSCAN against the parallel baselines (Table-6
style), and ``accuracy`` measures the Rand index of RP-DBSCAN against
exact DBSCAN (Table-4 style).
"""

from __future__ import annotations

import argparse
import sys

from datetime import datetime, timezone

import numpy as np

from repro.baselines import (
    CBPDBSCAN,
    ESPDBSCAN,
    NGDBSCAN,
    RBPDBSCAN,
    SparkDBSCAN,
)
from repro.bench.harness import run_comparison
from repro.bench.reporting import format_table
from repro.core.rp_dbscan import RPDBSCAN
from repro.data.datasets import DATASETS
from repro.data.io import load_points, save_labels, save_points
from repro.engine import Engine, FaultInjector, FaultPolicy
from repro.kernels import KERNELS, KernelUnavailableError
from repro.obs import (
    EVENT_RESPAWN,
    TRACE_FORMATS,
    Tracer,
    render_run_report,
    write_trace,
)

__all__ = ["main"]


def _parse_bytes(text: str) -> int:
    """Parse a byte size with an optional k/m/g suffix (``"64k"``)."""
    raw = text.strip().lower()
    multiplier = 1
    for suffix, scale in (("k", 1 << 10), ("m", 1 << 20), ("g", 1 << 30)):
        if raw.endswith(suffix):
            raw = raw[: -len(suffix)]
            multiplier = scale
            break
    try:
        value = int(float(raw) * multiplier)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid byte size {text!r}; use e.g. 65536, 64k, 16m, 1g"
        ) from None
    if value < 1:
        raise argparse.ArgumentTypeError("byte size must be >= 1")
    return value


def _add_dbscan_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--eps", type=float, required=True, help="neighborhood radius")
    parser.add_argument("--min-pts", type=int, required=True, help="core threshold")
    parser.add_argument("--rho", type=float, default=0.01, help="approximation rate")
    parser.add_argument(
        "--partitions", type=int, default=8, help="number of pseudo random partitions"
    )
    parser.add_argument("--seed", type=int, default=0, help="partitioning seed")


def _cmd_generate(args: argparse.Namespace) -> int:
    spec = DATASETS.get(args.dataset)
    if spec is None:
        known = ", ".join(sorted(DATASETS))
        print(f"unknown dataset {args.dataset!r}; choose one of: {known}", file=sys.stderr)
        return 2
    points = spec.generator(args.n, seed=args.seed)
    save_points(args.out, points)
    print(f"wrote {points.shape[0]} x {points.shape[1]} points to {args.out}")
    print(f"suggested eps10={spec.eps10}, min_pts={spec.min_pts}")
    return 0


def _fault_policy_from_args(args: argparse.Namespace) -> FaultPolicy | None:
    """Build the opt-in fault policy the CLI flags describe (or None)."""
    injector = None
    node_chaos = (
        getattr(args, "chaos_node_crash", 0.0)
        or getattr(args, "chaos_node_delay", 0.0)
        or getattr(args, "chaos_node_drop", 0.0)
    )
    if args.chaos_crash or args.chaos_delay or args.chaos_exception or node_chaos:
        injector = FaultInjector(
            crash_prob=args.chaos_crash,
            delay_prob=args.chaos_delay,
            exception_prob=args.chaos_exception,
            delay_s=args.chaos_delay_s,
            node_crash_prob=getattr(args, "chaos_node_crash", 0.0),
            node_delay_prob=getattr(args, "chaos_node_delay", 0.0),
            node_drop_prob=getattr(args, "chaos_node_drop", 0.0),
            seed=args.chaos_seed,
        )
    if args.max_retries is None and args.task_timeout is None and injector is None:
        return None
    kwargs = {"injector": injector}
    if args.max_retries is not None:
        kwargs["max_retries"] = args.max_retries
    if args.task_timeout is not None:
        kwargs["task_timeout_s"] = args.task_timeout
    return FaultPolicy(**kwargs)


def _cmd_cluster(args: argparse.Namespace) -> int:
    if args.memmap:
        from repro.data.streaming import open_point_source

        points = open_point_source(args.points)
    else:
        points = load_points(args.points)
    # Tracing is always on for the CLI (the overhead is negligible next
    # to process startup) so the fault ledger can show wall-clock
    # respawn times even when no --trace file was requested.
    tracer = Tracer()
    nodes = [a for a in args.nodes.split(",") if a] if args.nodes else None
    try:
        engine = Engine(
            args.engine,
            num_workers=args.workers,
            fault_policy=_fault_policy_from_args(args),
            tracer=tracer,
            profile=bool(args.profile),
            broadcast_channel=args.broadcast,
            nodes=nodes,
            heartbeat_timeout_s=args.heartbeat_timeout,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        try:
            model = RPDBSCAN(
                eps=args.eps,
                min_pts=args.min_pts,
                num_partitions=args.partitions,
                rho=args.rho,
                seed=args.seed,
                engine=engine,
                merge_mode=args.merge,
                graph_layout=args.graph_layout,
                broadcast_budget=args.broadcast_budget,
                kernel=args.kernel,
            )
        except KernelUnavailableError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        result = model.fit(points)
    finally:
        engine.close()
    print(
        f"clusters={result.n_clusters} noise={result.noise_count} "
        f"core={int(result.core_mask.sum())} kernel={result.kernel} "
        f"elapsed={result.total_seconds:.3f}s"
    )
    for phase, fraction in result.phase_breakdown().items():
        print(f"  {phase}: {fraction:.1%}")
    stats = result.merge_stats
    if stats.num_rounds:
        span_kind = "measured" if stats.span_is_measured else "modeled"
        merge_line = (
            f"  merge: mode={stats.mode} rounds={stats.num_rounds} "
            f"span={stats.span_seconds() * 1000:.1f}ms ({span_kind}) "
            f"edges {stats.edges_per_round[0]}->{stats.edges_per_round[-1]}"
        )
        shipped_total = sum(stats.bytes_shipped_per_round)
        if shipped_total:
            merge_line += f" shipped={shipped_total}B"
        print(merge_line)
    if result.broadcast_bytes:
        shipped = " ".join(
            f"{channel}={nbytes}B"
            for channel, nbytes in sorted(result.broadcast_bytes.items())
        )
        print(f"  broadcast ({args.broadcast}): {shipped}")
    if result.broadcast_residency is not None:
        driver = result.broadcast_residency["driver"]
        workers = result.broadcast_residency["workers"]
        peak = max(
            [w["peak_resident_bytes"] for w in workers]
            + [driver["peak_resident_bytes"]]
        )
        evictions = driver["shard_evictions"] + sum(
            w["shard_evictions"] for w in workers
        )
        print(
            f"  residency: shards={driver['num_shards']} "
            f"budget={driver['budget_bytes']}B peak={peak}B "
            f"evictions={evictions}"
        )
    if result.node_ledger:
        for row in result.node_ledger:
            status = "up" if row["alive"] else "down"
            print(
                f"  node {row['node']} ({row['addr']}): "
                f"workers={row['workers']} tasks={row['tasks']} "
                f"ships={row['ships']} shipped={row['bytes_shipped']}B "
                f"deaths={row['deaths']} rejoins={row['rejoins']} [{status}]"
            )
    if result.fault_events:
        events = " ".join(
            f"{kind}={count}" for kind, count in sorted(result.fault_events.items())
        )
        print(f"  fault recovery: {events}")
        for span in tracer.events(EVENT_RESPAWN):
            stamp = datetime.fromtimestamp(span.wall_start_s, tz=timezone.utc)
            reason = span.annotations.get("reason", "worker lost")
            print(
                f"    respawn at {stamp.strftime('%H:%M:%S.%f')[:-3]} UTC "
                f"({reason})"
            )
    if args.report:
        print()
        print(render_run_report(tracer.spans, title=f"run report: {args.points}"))
    if args.trace:
        write_trace(tracer.spans, args.trace, fmt=args.trace_format)
        print(f"trace ({args.trace_format}) written to {args.trace}")
    if args.profile:
        if engine.dump_profile(args.profile):
            print(f"merged cProfile stats written to {args.profile}")
        else:
            print("no profile data captured", file=sys.stderr)
    if args.out:
        save_labels(args.out, result.labels)
        print(f"labels written to {args.out}")
    if args.save_model:
        if result.state is None:
            print(
                "error: --save-model requires an in-memory fit "
                "(incompatible with --memmap: the model plane holds the "
                "fitted points)",
                file=sys.stderr,
            )
            return 2
        from repro.core.serialization import save_cluster_state

        save_cluster_state(result.state, args.save_model)
        print(f"model ({result.state.num_points} points) written to {args.save_model}")
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.core.prediction import ClusterModel
    from repro.core.serialization import load_cluster_state
    from repro.data.streaming import open_point_source

    try:
        state = load_cluster_state(args.model)
    except (ValueError, OSError) as exc:
        print(f"error: cannot load model {args.model!r}: {exc}", file=sys.stderr)
        return 2
    # Queries stream through a PointSource (memmapped for .npy when
    # --memmap) and predict runs per chunk, so a query file larger than
    # RAM classifies in bounded memory.
    try:
        source = open_point_source(args.points, memmap=args.memmap)
    except (ValueError, OSError) as exc:
        print(f"error: cannot open {args.points!r}: {exc}", file=sys.stderr)
        return 2
    try:
        model = ClusterModel.from_state(state, kernel=args.kernel)
    except KernelUnavailableError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if source.dim != state.geometry.dim:
        print(
            f"error: query points have dim {source.dim}; the model "
            f"expects (m, {state.geometry.dim})",
            file=sys.stderr,
        )
        return 2
    warmup_s = model.warmup()
    labels = np.empty(source.num_points, dtype=np.int64)
    for start, chunk in source.iter_chunks():
        labels[start : start + chunk.shape[0]] = model.predict(chunk)
    noise = int((labels == -1).sum())
    print(
        f"predicted {source.num_points} points against "
        f"{model.n_core_points} cores in {model.num_cells} cells "
        f"(eps={state.eps}, kernel={model.kernel}): "
        f"assigned={source.num_points - noise} noise={noise}"
    )
    print(f"  setup: warmup={warmup_s:.3f}s")
    if args.out:
        save_labels(args.out, labels)
        print(f"labels written to {args.out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.__main__ import run_from_args

    return run_from_args(args)


def _cmd_compare(args: argparse.Namespace) -> int:
    points = load_points(args.points)
    k = args.partitions
    algorithms = {
        "SPARK-DBSCAN": lambda: SparkDBSCAN(args.eps, args.min_pts, k),
        "NG-DBSCAN": lambda: NGDBSCAN(args.eps, args.min_pts),
        "ESP-DBSCAN": lambda: ESPDBSCAN(args.eps, args.min_pts, k, rho=args.rho),
        "RBP-DBSCAN": lambda: RBPDBSCAN(args.eps, args.min_pts, k, rho=args.rho),
        "CBP-DBSCAN": lambda: CBPDBSCAN(args.eps, args.min_pts, k, rho=args.rho),
        "RP-DBSCAN": lambda: RPDBSCAN(
            args.eps, args.min_pts, k, rho=args.rho, seed=args.seed
        ),
    }
    rows = run_comparison(algorithms, points, timeout_s=args.timeout)
    table = [
        [
            row.algorithm,
            row.elapsed_s,
            row.n_clusters if not row.timed_out else None,
            row.noise if not row.timed_out else None,
            row.load_imbalance,
            row.points_processed if not row.timed_out else None,
        ]
        for row in rows
    ]
    print(
        format_table(
            ["algorithm", "elapsed (s)", "clusters", "noise", "imbalance", "pts processed"],
            table,
            title=f"Comparison on {args.points} (eps={args.eps}, minPts={args.min_pts})",
        )
    )
    return 0


def _cmd_accuracy(args: argparse.Namespace) -> int:
    from repro.baselines import ExactDBSCAN
    from repro.metrics import rand_index, summarize_clustering

    points = load_points(args.points)
    exact = ExactDBSCAN(args.eps, args.min_pts).fit(points)
    approx = RPDBSCAN(
        args.eps,
        args.min_pts,
        args.partitions,
        rho=args.rho,
        seed=args.seed,
    ).fit(points)
    index = rand_index(exact.labels, approx.labels)
    print(f"exact DBSCAN:  {summarize_clustering(exact.labels).describe()}")
    print(f"RP-DBSCAN:     {summarize_clustering(approx.labels).describe()}")
    print(f"Rand index (rho={args.rho}): {index:.4f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="rp-dbscan",
        description="RP-DBSCAN (SIGMOD 2018) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="synthesize a data-set stand-in")
    generate.add_argument("--dataset", required=True, help="name from Table 3")
    generate.add_argument("--n", type=int, default=20_000, help="number of points")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True, help="output .npy or .csv path")
    generate.set_defaults(func=_cmd_generate)

    cluster = sub.add_parser("cluster", help="run RP-DBSCAN on a point file")
    cluster.add_argument("points", help="input .npy or .csv point file")
    _add_dbscan_args(cluster)
    cluster.add_argument("--out", help="optional label output path")
    cluster.add_argument(
        "--save-model",
        metavar="PATH",
        help="persist the fitted model plane (ClusterState) as an RPST "
        "stream, servable with `rp-dbscan predict`",
    )
    engine_group = cluster.add_argument_group("execution engine")
    engine_group.add_argument(
        "--engine",
        "--executor",
        dest="engine",
        choices=("serial", "process", "remote"),
        default="serial",
        help="task executor (default: serial); remote dispatches to node "
        "agents named by --nodes",
    )
    engine_group.add_argument(
        "--workers", type=int, default=None,
        help="process-mode worker count (remote mode sizes pools per node "
        "via each agent's --workers)",
    )
    engine_group.add_argument(
        "--nodes",
        default=None,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="remote-executor node agents (comma separated), each running "
        "`python -m repro.node`",
    )
    engine_group.add_argument(
        "--heartbeat-timeout", type=float, default=10.0,
        help="remote mode: seconds of node silence before the driver "
        "declares it dead and reschedules its in-flight tasks",
    )
    engine_group.add_argument(
        "--broadcast",
        choices=("auto", "pickle", "shm"),
        default="auto",
        help="broadcast channel: pickle blobs per worker, one zero-copy "
        "shared-memory segment, or auto (shm whenever the value carries a "
        "columnar dictionary; default)",
    )
    engine_group.add_argument(
        "--broadcast-budget",
        type=_parse_bytes,
        default=None,
        metavar="BYTES",
        help="shard the broadcast dictionary and cap each worker's resident "
        "leaf bytes at this budget (suffixes k/m/g; labels stay bit-identical "
        "to a full broadcast)",
    )
    engine_group.add_argument(
        "--memmap",
        action="store_true",
        help="ingest the point file as a memory-mapped source: partitions "
        "materialize per task instead of loading the data set up front",
    )
    engine_group.add_argument(
        "--merge",
        choices=("driver", "engine", "auto"),
        default="auto",
        help="Phase III-1 tournament scheduling: every match on the driver, "
        "rounds dispatched through the engine, or a cost model picking per "
        "run (default; labels are bit-identical either way)",
    )
    engine_group.add_argument(
        "--graph-layout",
        choices=("flat", "dict"),
        default="flat",
        help="cell-graph layout: columnar flat arrays (default) or the "
        "dict-of-tuples reference implementation",
    )
    engine_group.add_argument(
        "--kernel",
        choices=KERNELS,
        default="auto",
        help="Phase II inner-loop backend: compiled numba kernels (requires "
        "the 'kernels' extra), the vectorized numpy reference, or auto "
        "(default: numba when installed, else numpy; labels are "
        "bit-identical either way)",
    )
    engine_group.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="per-task retry budget (enables the fault-tolerant recovery loop)",
    )
    engine_group.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="per-task timeout in seconds (enables the recovery loop)",
    )
    chaos_group = cluster.add_argument_group(
        "chaos testing (seeded fault injection; implies the recovery loop)"
    )
    chaos_group.add_argument(
        "--chaos-crash", type=float, default=0.0,
        help="probability an attempt kills its worker",
    )
    chaos_group.add_argument(
        "--chaos-delay", type=float, default=0.0,
        help="probability an attempt is delayed",
    )
    chaos_group.add_argument(
        "--chaos-exception", type=float, default=0.0,
        help="probability an attempt raises",
    )
    chaos_group.add_argument(
        "--chaos-delay-s", type=float, default=0.1,
        help="injected delay duration in seconds",
    )
    chaos_group.add_argument(
        "--chaos-node-crash", type=float, default=0.0,
        help="remote mode: probability a node crashes mid-phase "
        "(terminates its agent process)",
    )
    chaos_group.add_argument(
        "--chaos-node-delay", type=float, default=0.0,
        help="remote mode: probability a node delays its first dispatch "
        "of a phase",
    )
    chaos_group.add_argument(
        "--chaos-node-drop", type=float, default=0.0,
        help="remote mode: probability a node drops its driver connection "
        "once per phase",
    )
    chaos_group.add_argument(
        "--chaos-seed", type=int, default=0, help="fault-injection seed"
    )
    obs_group = cluster.add_argument_group("observability")
    obs_group.add_argument(
        "--trace",
        metavar="PATH",
        help="write the span trace to PATH after the run",
    )
    obs_group.add_argument(
        "--trace-format",
        choices=TRACE_FORMATS,
        default="jsonl",
        help="trace file format: jsonl span log or Chrome trace_event "
        "(load chrome traces at https://ui.perfetto.dev)",
    )
    obs_group.add_argument(
        "--report",
        action="store_true",
        help="print the full run report (phases, workers, critical path)",
    )
    obs_group.add_argument(
        "--profile",
        metavar="PATH",
        help="capture per-task cProfile data and write merged pstats to PATH",
    )
    cluster.set_defaults(func=_cmd_cluster)

    predict = sub.add_parser(
        "predict", help="classify new points against a saved model"
    )
    predict.add_argument("points", help="query .npy or .csv point file")
    predict.add_argument(
        "--model", required=True, metavar="PATH",
        help="RPST model file written by `cluster --save-model`",
    )
    predict.add_argument("--out", help="optional label output path")
    predict.add_argument(
        "--kernel",
        choices=KERNELS,
        default="auto",
        help="distance backend for batch predict (bit-identical across "
        "backends)",
    )
    predict.add_argument(
        "--memmap",
        action="store_true",
        help="memory-map .npy query files and predict chunk by chunk "
        "(beyond-RAM query sets; labels are identical to an eager read)",
    )
    predict.set_defaults(func=_cmd_predict)

    serve = sub.add_parser(
        "serve",
        help="serve predictions from a saved model over TCP "
        "(micro-batching; see also `python -m repro.serve`)",
    )
    from repro.serve.__main__ import add_serve_arguments

    add_serve_arguments(serve)
    serve.set_defaults(func=_cmd_serve)

    compare = sub.add_parser("compare", help="run all parallel algorithms")
    compare.add_argument("points", help="input .npy or .csv point file")
    _add_dbscan_args(compare)
    compare.add_argument(
        "--timeout", type=float, default=None, help="per-algorithm budget in seconds"
    )
    compare.set_defaults(func=_cmd_compare)

    accuracy = sub.add_parser(
        "accuracy", help="Rand index of RP-DBSCAN vs exact DBSCAN"
    )
    accuracy.add_argument("points", help="input .npy or .csv point file")
    _add_dbscan_args(accuracy)
    accuracy.set_defaults(func=_cmd_accuracy)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
