"""The asyncio predict server: socket → micro-batch → shm kernel.

``PredictServer`` is the serving plane's front end.  It loads one
fitted :class:`~repro.core.cluster_state.ClusterState`, hoists the
derived :class:`~repro.core.prediction.ClusterModel` into shared memory
through a :class:`~repro.serve.pool.PredictorPool` (the model exists
once in physical memory no matter how many predictor processes attach),
and answers ``MSG_PREDICT`` frames by gathering concurrent requests in
a :class:`~repro.serve.batcher.MicroBatcher` and dispatching them as
fused columnar batches with per-request scatter-back.

Design points, in the order a request meets them:

* **Wire** — the length-prefixed frame codec of
  :mod:`repro.engine.remote.protocol`; payload meanings in
  :mod:`repro.serve.wire`.  One outstanding request per connection
  (concurrency comes from connections, which is what micro-batching
  wants anyway).
* **Admission control** — the server refuses work beyond
  ``max_pending`` in-flight requests with an immediate ``MSG_ERROR``
  rejection instead of queueing unbounded latency; a serving error is
  per-request, the connection survives.
* **Micro-batching** — ``batch_window_s`` / ``max_batch`` as in
  :class:`MicroBatcher`; ``max_batch=1`` degenerates to
  request-at-a-time (the measured baseline).
* **Warm start** — the pool install runs
  :meth:`ClusterModel.warmup` in every worker (JIT compile + candidate
  tables) before the socket opens, billed to
  ``setup_seconds.serve_install`` / ``serve_warmup`` — the first
  request never pays compile cost.
* **Serve-while-ingest** — ``MSG_INGEST`` appends points through
  :meth:`ClusterState.ingest` (incremental refit) and atomically swaps
  the resident model under a bumped epoch tag; predicts in flight keep
  answering from the old epoch until the swap lands (DBSCAN++'s
  sampled-core analysis bounds the staleness window — see ISSUE/PAPERS
  discussion), and label replies carry the answering epoch so clients
  can observe the swap.
* **Observability** — latency histograms, queue-depth gauges, the
  batch-size distribution, and install/warm-up setup counters in a
  :class:`~repro.obs.metrics.MetricsRegistry`, rendered by
  :func:`repro.obs.report.render_serving_report` and served raw over
  ``MSG_STATS``.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.prediction import ClusterModel
from repro.engine.remote.protocol import (
    MSG_INGEST,
    MSG_INGEST_ACK,
    MSG_LABELS,
    MSG_PREDICT,
    MSG_SHUTDOWN,
    MSG_STATS,
    MSG_STATS_ACK,
    MSG_ERROR,
    FrameError,
    read_frame,
    write_frame,
)
from repro.obs.metrics import (
    SERVE_BATCH_BUCKETS,
    SERVE_LATENCY_BUCKETS,
    MetricsRegistry,
)
from repro.serve import wire
from repro.serve.batcher import MicroBatcher
from repro.serve.pool import PredictorPool

__all__ = ["ServeConfig", "PredictServer", "running_server"]


@dataclass
class ServeConfig:
    """Tunables of one predict server."""

    host: str = "127.0.0.1"
    #: ``0`` binds an OS-assigned port (read it back from ``server.port``).
    port: int = 0
    #: Predictor worker processes attaching the shm-resident model.
    workers: int = 1
    #: Micro-batch gather window in seconds (``0`` = dispatch per request).
    batch_window_s: float = 0.001
    #: Fused-point cap per dispatch (``1`` = request-at-a-time baseline).
    max_batch: int = 256
    #: Admission bound: in-flight requests beyond this are rejected.
    max_pending: int = 1024
    #: Distance backend for the resident model (``auto``/``numpy``/...).
    kernel: str = "auto"


@dataclass
class _ServeState:
    """Mutable serving-side bookkeeping grouped for readability."""

    epoch: int = 0
    queue_peak: int = 0
    connections: int = 0
    ingest_lock: asyncio.Lock = field(default_factory=asyncio.Lock)


class PredictServer:
    """One serving endpoint over one resident cluster model.

    Parameters
    ----------
    state:
        The fitted model plane; :meth:`start` derives the serving view
        and owns it from then on (``ingest`` mutates this state).
    config:
        :class:`ServeConfig`; defaults serve a 1-worker micro-batching
        endpoint on an OS-assigned port.
    registry:
        Optional externally owned metrics registry (tests share one).
    """

    def __init__(
        self,
        state,
        config: ServeConfig | None = None,
        *,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self._state = state
        self.config = config or ServeConfig()
        self.registry = registry or MetricsRegistry()
        self._serve = _ServeState()
        self._pool: PredictorPool | None = None
        self._batcher: MicroBatcher | None = None
        self._server: asyncio.AbstractServer | None = None
        self._stopped = asyncio.Event()
        self._latency = self.registry.histogram(
            "serve.latency_seconds", SERVE_LATENCY_BUCKETS
        )
        self._batch_hist = self.registry.histogram(
            "serve.batch_points", SERVE_BATCH_BUCKETS
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def host(self) -> str:
        return self.config.host

    @property
    def port(self) -> int:
        """The bound port (resolves ``config.port == 0`` after start)."""
        if self._server is None:
            return self.config.port
        return self._server.sockets[0].getsockname()[1]

    @property
    def epoch(self) -> int:
        """Epoch tag of the resident model."""
        return self._serve.epoch

    async def start(self) -> None:
        """Install the model shm-resident, warm it, open the socket."""
        cfg = self.config
        loop = asyncio.get_running_loop()
        model = ClusterModel.from_state(self._state, kernel=cfg.kernel)
        self._pool = PredictorPool(cfg.workers)
        install = await loop.run_in_executor(None, self._pool.install, model)
        self._serve.epoch = install.epoch
        self.registry.gauge("serve.epoch").set(install.epoch)
        self.registry.counter("setup_seconds.serve_install").inc(
            max(install.seconds - install.warmup_seconds, 0.0)
        )
        self.registry.counter("setup_seconds.serve_warmup").inc(
            install.warmup_seconds
        )
        self._batcher = MicroBatcher(
            self._dispatch,
            window_s=cfg.batch_window_s,
            max_batch=cfg.max_batch,
            on_batch=lambda n_req, n_pts: self._batch_hist.observe(n_pts),
        )
        self._server = await asyncio.start_server(
            self._handle_client, cfg.host, cfg.port
        )

    async def stop(self) -> None:
        """Close the socket, drain in-flight work, stop the pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._batcher is not None:
            await self._batcher.drain()
        if self._pool is not None:
            pool, self._pool = self._pool, None
            await asyncio.get_running_loop().run_in_executor(None, pool.close)
        self._stopped.set()

    async def serve_until_stopped(self) -> None:
        """Block until a ``MSG_SHUTDOWN`` frame (or :meth:`stop`)."""
        await self._stopped.wait()

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    async def _dispatch(self, fused: np.ndarray) -> tuple[int, np.ndarray]:
        """Batcher → pool bridge: one fused batch, one worker round trip."""
        return await asyncio.wrap_future(self._pool.submit_predict(fused))

    async def _handle_client(self, reader, writer) -> None:
        self._serve.connections += 1
        try:
            while True:
                try:
                    msg_type, payload = await read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                except FrameError as exc:
                    # A malformed *frame* means the stream is garbage —
                    # unlike a per-request rejection this is terminal.
                    with contextlib.suppress(Exception):
                        await write_frame(
                            writer, MSG_ERROR, wire.encode_error(str(exc))
                        )
                    return
                try:
                    if msg_type == MSG_PREDICT:
                        await self._on_predict(writer, payload)
                    elif msg_type == MSG_INGEST:
                        await self._on_ingest(writer, payload)
                    elif msg_type == MSG_STATS:
                        await self._on_stats(writer)
                    elif msg_type == MSG_SHUTDOWN:
                        await write_frame(writer, MSG_SHUTDOWN)
                        asyncio.get_running_loop().create_task(self.stop())
                        return
                    else:
                        await write_frame(
                            writer,
                            MSG_ERROR,
                            wire.encode_error(
                                f"unsupported message type {msg_type} on a "
                                "serving connection"
                            ),
                        )
                except ConnectionError:
                    return
        finally:
            self._serve.connections -= 1
            with contextlib.suppress(Exception):
                writer.close()

    async def _reject(self, writer, message: str, *, counter: str) -> None:
        self.registry.counter(counter).inc()
        await write_frame(writer, MSG_ERROR, wire.encode_error(message))

    async def _on_predict(self, writer, payload: bytes) -> None:
        start = time.perf_counter()
        try:
            points = wire.decode_points(payload)
        except wire.WireFormatError as exc:
            await self._reject(writer, str(exc), counter="serve.errors")
            return
        dim = self._state.geometry.dim
        if points.shape[1] != dim:
            await self._reject(
                writer,
                f"query points have dim {points.shape[1]}; the resident "
                f"model expects {dim}",
                counter="serve.errors",
            )
            return
        if points.shape[0] == 0:
            await self._reject(
                writer, "empty point block", counter="serve.errors"
            )
            return
        depth = self._batcher.pending_requests
        if depth >= self.config.max_pending:
            # Overload: answer *now* with a rejection the client can
            # retry, rather than stretching every queued request's tail.
            await self._reject(
                writer,
                f"server overloaded: {depth} requests in flight "
                f"(max_pending={self.config.max_pending})",
                counter="serve.rejected",
            )
            return
        self.registry.gauge("serve.queue_depth").set(depth + 1)
        if depth + 1 > self._serve.queue_peak:
            self._serve.queue_peak = depth + 1
            self.registry.gauge("serve.queue_depth_peak").set(depth + 1)
        try:
            epoch, labels = await self._batcher.submit(points)
        except Exception as exc:
            await self._reject(
                writer, f"predict failed: {exc}", counter="serve.errors"
            )
            return
        self._latency.observe(time.perf_counter() - start)
        self.registry.counter("serve.requests").inc()
        self.registry.counter("serve.points").inc(points.shape[0])
        await write_frame(writer, MSG_LABELS, wire.encode_labels(epoch, labels))

    async def _on_ingest(self, writer, payload: bytes) -> None:
        try:
            points = wire.decode_points(payload)
        except wire.WireFormatError as exc:
            await self._reject(writer, str(exc), counter="serve.errors")
            return
        dim = self._state.geometry.dim
        if points.shape[1] != dim:
            await self._reject(
                writer,
                f"ingest points have dim {points.shape[1]}; the resident "
                f"model expects {dim}",
                counter="serve.errors",
            )
            return
        loop = asyncio.get_running_loop()
        start = time.perf_counter()
        # One refit at a time; predicts keep flowing against the old
        # epoch the whole while — the swap below is the only sync point.
        async with self._serve.ingest_lock:
            try:
                report = await loop.run_in_executor(
                    None, self._state.ingest, points
                )
                model = ClusterModel.from_state(
                    self._state, kernel=self.config.kernel
                )
                install = await loop.run_in_executor(
                    None, self._pool.install, model
                )
            except Exception as exc:
                await self._reject(
                    writer, f"ingest failed: {exc}", counter="serve.errors"
                )
                return
            self._serve.epoch = install.epoch
        self.registry.counter("serve.ingests").inc()
        self.registry.gauge("serve.epoch").set(install.epoch)
        self.registry.counter("setup_seconds.serve_ingest").inc(
            time.perf_counter() - start
        )
        self.registry.counter("setup_seconds.serve_warmup").inc(
            install.warmup_seconds
        )
        ack = {
            "epoch": install.epoch,
            "num_new_points": report.num_new_points,
            "cells_total": report.cells_total,
            "cells_dirty": report.cells_dirty,
            "cells_new": report.cells_new,
            "n_clusters": report.n_clusters,
            "ingest_seconds": report.total_seconds,
            "install_seconds": install.seconds,
            "warmup_seconds": install.warmup_seconds,
        }
        await write_frame(writer, MSG_INGEST_ACK, wire.encode_obj(ack))

    async def _on_stats(self, writer) -> None:
        self.registry.gauge("serve.worker_respawns").set(
            self._pool.respawns if self._pool else 0
        )
        stats = {
            "epoch": self._serve.epoch,
            "num_points": self._state.num_points,
            "connections": self._serve.connections,
            "batches_dispatched": (
                self._batcher.batches_dispatched if self._batcher else 0
            ),
            "config": {
                "workers": self.config.workers,
                "batch_window_s": self.config.batch_window_s,
                "max_batch": self.config.max_batch,
                "max_pending": self.config.max_pending,
                "kernel": self.config.kernel,
            },
            "snapshot": self.registry.snapshot(),
        }
        await write_frame(writer, MSG_STATS_ACK, wire.encode_obj(stats))


@contextlib.contextmanager
def running_server(state, config: ServeConfig | None = None):
    """A started :class:`PredictServer` on a background event loop.

    The in-process harness tests, the example, and the bench baseline
    use: spins one daemon thread running the server's loop, yields the
    server once its socket is bound (``server.port`` is resolved), and
    tears everything down — pool, segment, loop — on exit.
    """
    server = PredictServer(state, config)
    started = threading.Event()
    failure: list[BaseException] = []
    loop_holder: list[asyncio.AbstractEventLoop] = []

    async def _main() -> None:
        loop_holder.append(asyncio.get_running_loop())
        try:
            await server.start()
        except BaseException as exc:  # surface startup failure to caller
            failure.append(exc)
            started.set()
            return
        started.set()
        await server.serve_until_stopped()

    thread = threading.Thread(
        target=lambda: asyncio.run(_main()), name="predict-server", daemon=True
    )
    thread.start()
    started.wait(timeout=120.0)
    if failure:
        thread.join(timeout=10.0)
        raise failure[0]
    try:
        yield server
    finally:
        loop = loop_holder[0]
        if not server._stopped.is_set():
            asyncio.run_coroutine_threadsafe(server.stop(), loop).result(
                timeout=30.0
            )
        thread.join(timeout=30.0)
