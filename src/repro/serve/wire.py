"""Serving-plane payload codecs (the bytes inside the protocol frames).

The serving wire rides the exact frame codec of the distributed
substrate (:mod:`repro.engine.remote.protocol`: magic + version + type
+ length); this module only defines what the *payloads* mean for the
four serving message types:

``MSG_PREDICT``
    A point block: ``u64 m`` + ``u32 d`` (big-endian, matching the
    frame header) followed by ``m * d`` little-endian float64 values in
    row-major order.  Raw array bytes, not pickle — the predict path is
    the hot path and must not pay object encoding per request.
``MSG_LABELS``
    ``u64 epoch`` + ``u64 m`` followed by ``m`` little-endian int64
    labels.  ``epoch`` names the resident model that answered, so a
    client can observe an ``ingest`` swap mid-stream.
``MSG_INGEST``
    The same point block as ``MSG_PREDICT``.
``MSG_INGEST_ACK`` / ``MSG_STATS_ACK``
    Pickled dicts — control-plane traffic, rare by construction.
``MSG_ERROR``
    A UTF-8 reason string.  On a serving connection an error is a
    *per-request* rejection (overload, shape mismatch); the connection
    stays usable, unlike the node-agent dialect where ERROR is terminal.

Array byte order is pinned little-endian explicitly (``<f8``/``<i8``)
rather than native so a frame means the same thing on any peer.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any

import numpy as np

__all__ = [
    "MAX_POINTS_PER_REQUEST",
    "WireFormatError",
    "encode_points",
    "decode_points",
    "encode_labels",
    "decode_labels",
    "encode_error",
    "decode_error",
    "encode_obj",
    "decode_obj",
]

#: Upper bound on points in one request — far above any sane micro-
#: batching client, small enough that a corrupt length field cannot
#: demand an absurd allocation.
MAX_POINTS_PER_REQUEST = 1 << 24  # 16.7M points

_POINTS_HEADER = struct.Struct(">QI")
_LABELS_HEADER = struct.Struct(">QQ")


class WireFormatError(ValueError):
    """A serving payload is not well-formed."""


def encode_points(points: np.ndarray) -> bytes:
    """Serialize an ``(m, d)`` float64 point block."""
    pts = np.asarray(points)
    if pts.ndim != 2:
        raise WireFormatError("points must be (m, d)")
    m, d = pts.shape
    # Bound-check on the view, before ascontiguousarray can materialize
    # an oversized block.
    if m > MAX_POINTS_PER_REQUEST:
        raise WireFormatError(
            f"{m} points exceed the {MAX_POINTS_PER_REQUEST}-point "
            "per-request bound"
        )
    pts = np.ascontiguousarray(pts, dtype="<f8")
    return _POINTS_HEADER.pack(m, d) + pts.tobytes()


def decode_points(payload: bytes) -> np.ndarray:
    """Parse a point block back into a float64 ``(m, d)`` array."""
    if len(payload) < _POINTS_HEADER.size:
        raise WireFormatError("truncated point-block header")
    m, d = _POINTS_HEADER.unpack_from(payload)
    if d < 1:
        raise WireFormatError("point block must have at least one axis")
    if m > MAX_POINTS_PER_REQUEST:
        raise WireFormatError(
            f"{m} points exceed the {MAX_POINTS_PER_REQUEST}-point "
            "per-request bound"
        )
    expected = _POINTS_HEADER.size + 8 * m * d
    if len(payload) != expected:
        raise WireFormatError(
            f"point block of {len(payload)} bytes, expected {expected}"
        )
    data = np.frombuffer(payload, dtype="<f8", offset=_POINTS_HEADER.size)
    return data.reshape(m, d).astype(np.float64, copy=False)


def encode_labels(epoch: int, labels: np.ndarray) -> bytes:
    """Serialize a label vector under the answering model's epoch."""
    out = np.ascontiguousarray(labels, dtype="<i8")
    if out.ndim != 1:
        raise WireFormatError("labels must be 1-d")
    return _LABELS_HEADER.pack(int(epoch), out.shape[0]) + out.tobytes()


def decode_labels(payload: bytes) -> tuple[int, np.ndarray]:
    """Parse a label payload; returns ``(epoch, labels)``."""
    if len(payload) < _LABELS_HEADER.size:
        raise WireFormatError("truncated label header")
    epoch, m = _LABELS_HEADER.unpack_from(payload)
    expected = _LABELS_HEADER.size + 8 * m
    if len(payload) != expected:
        raise WireFormatError(
            f"label payload of {len(payload)} bytes, expected {expected}"
        )
    labels = np.frombuffer(payload, dtype="<i8", offset=_LABELS_HEADER.size)
    return epoch, labels.astype(np.int64, copy=False)


def encode_error(message: str) -> bytes:
    """Serialize a rejection reason."""
    return message.encode("utf-8", errors="replace")


def decode_error(payload: bytes) -> str:
    """Parse a rejection reason."""
    return payload.decode("utf-8", errors="replace")


def encode_obj(obj: Any) -> bytes:
    """Pickle a control-plane payload (ingest acks, stats snapshots)."""
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def decode_obj(payload: bytes) -> Any:
    """Unpickle a control-plane payload."""
    return pickle.loads(payload)
