"""Serving plane: high-throughput online prediction over a resident model.

The deployment answer to "the fit is done — now answer queries": an
asyncio TCP front end (:class:`~repro.serve.server.PredictServer`)
holding one :class:`~repro.core.prediction.ClusterModel` resident in
shared memory, micro-batching concurrent requests
(:class:`~repro.serve.batcher.MicroBatcher`) into fused columnar
dispatches against a pool of predictor processes
(:class:`~repro.serve.pool.PredictorPool`) that attach the model
zero-copy.  ``ingest`` swaps the resident model atomically under an
epoch tag while predicts keep flowing.

Entry points: ``python -m repro.serve`` / ``rp-dbscan serve`` for the
daemon, :class:`~repro.serve.client.ServeClient` for callers, and
:func:`~repro.serve.server.running_server` for in-process harnesses.
"""

from repro.serve.batcher import MicroBatcher
from repro.serve.client import RequestRejected, ServeClient, ServeProtocolError
from repro.serve.pool import InstallStats, PredictorPool, ServePoolError
from repro.serve.server import PredictServer, ServeConfig, running_server

__all__ = [
    "MicroBatcher",
    "PredictorPool",
    "InstallStats",
    "ServePoolError",
    "PredictServer",
    "ServeConfig",
    "running_server",
    "ServeClient",
    "RequestRejected",
    "ServeProtocolError",
]
