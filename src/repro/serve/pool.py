"""Predictor worker pool: N processes serving one shm-resident model.

The serving plane's compute substrate.  The driver exports the
:class:`~repro.core.prediction.ClusterModel` through the engine's
shared-memory broadcast path (:func:`repro.engine.shm.export_broadcast`
hoists the model's payload — a ``FlatCellDictionary`` — into one
segment) and every predictor worker attaches zero-copy: regardless of
the worker count, the core-point table exists once in physical memory.

Each worker is one process plus one driver-side proxy thread that owns
the worker's pipe.  Jobs (predict batches, model installs) flow through
a per-worker FIFO queue, which is what makes a model swap **atomic
under an epoch tag** without locking the hot path:

* the driver tags every batch with the epoch current at dispatch;
* an ``install`` is just another job, so per worker it strictly orders
  against batches — every batch enqueued before the install is answered
  by the old model, everything after by the new one;
* once *all* workers acked the install, no batch can ever touch the old
  epoch again (FIFO acks prove their queues drained past it), so the
  driver unlinks the old segment exactly then.

Worker death is absorbed, not fatal: the proxy respawns the process,
re-installs the current epoch, and only the in-flight job fails (the
server surfaces it as a per-request error).
"""

from __future__ import annotations

import itertools
import os
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from multiprocessing import get_context

import numpy as np

from repro.engine.shm import (
    attach_segment,
    create_segment,
    destroy_segment,
    export_broadcast,
    import_broadcast,
)

__all__ = ["PredictorPool", "InstallStats", "ServePoolError"]


class ServePoolError(RuntimeError):
    """The pool cannot serve (worker lost mid-job, pool closed)."""


@dataclass
class InstallStats:
    """The ledger of one model install fan-out."""

    #: Epoch tag the installed model serves under.
    epoch: int
    #: Wall seconds of the whole fan-out (export + segment + acks).
    seconds: float
    #: Slowest worker-side segment attach + model rebuild.
    attach_seconds: float
    #: Slowest worker-side JIT/candidate-table warm-up.
    warmup_seconds: float
    #: Bytes of the shared segment backing the model (0 = pickle path).
    segment_bytes: int
    #: Pickled shell size (everything not hoisted into the segment).
    payload_bytes: int
    #: Per-worker ``(pid, attach_seconds, warmup_seconds)`` rows.
    workers: list[tuple[int, float, float]] = field(default_factory=list)


def _worker_main(conn) -> None:
    """Predictor worker loop: install models, answer predict batches."""
    model = None
    attachment = None
    epoch = -1
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        kind = msg[0]
        if kind == "stop":
            break
        try:
            if kind == "install":
                _, new_epoch, channel, blob, handle = msg
                start = time.perf_counter()
                if channel == "shm":
                    shm = attach_segment(handle)
                    new_model = import_broadcast(blob, handle, shm)
                else:
                    import pickle

                    shm = None
                    new_model = pickle.loads(blob)
                attach_s = time.perf_counter() - start
                warm_s = new_model.warmup()
                previous = attachment
                model, attachment, epoch = new_model, shm, new_epoch
                if previous is not None:
                    try:
                        previous.close()
                    except Exception:
                        pass
                conn.send(("installed", epoch, os.getpid(), attach_s, warm_s))
            elif kind == "predict":
                _, batch_epoch, points = msg
                if model is None:
                    raise ServePoolError("no model installed")
                labels = model.predict(points)
                conn.send(("labels", epoch, labels))
            else:
                raise ServePoolError(f"unknown job kind {kind!r}")
        except Exception as exc:  # answer, don't die: one bad batch
            try:  # must not take the worker (or its queue) with it
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
            except (OSError, BrokenPipeError):
                break
    try:
        conn.close()
    except Exception:
        pass


@dataclass
class _Job:
    message: tuple
    future: Future


class _WorkerProxy:
    """Driver-side thread owning one worker process and its pipe."""

    def __init__(self, pool: "PredictorPool", index: int) -> None:
        self._pool = pool
        self.index = index
        self.jobs: queue.Queue[_Job | None] = queue.Queue()
        self.pid: int | None = None
        self.respawns = 0
        self._spawn()
        self._thread = threading.Thread(
            target=self._loop, name=f"serve-worker-{index}", daemon=True
        )
        self._thread.start()

    def _spawn(self) -> None:
        ctx = self._pool._ctx
        self._conn, child = ctx.Pipe(duplex=True)
        self._process = ctx.Process(
            target=_worker_main, args=(child,), daemon=True
        )
        self._process.start()
        child.close()
        self.pid = self._process.pid

    def _roundtrip(self, message: tuple):
        self._conn.send(message)
        return self._conn.recv()

    def _respawn(self) -> None:
        """Replace a dead worker and re-equip it with the current model."""
        self.respawns += 1
        try:
            self._conn.close()
        except Exception:
            pass
        if self._process.is_alive():
            self._process.terminate()
        self._process.join(timeout=5.0)
        self._spawn()
        install = self._pool._current_install
        if install is not None:
            reply = self._roundtrip(install)
            if reply[0] != "installed":
                raise ServePoolError(
                    f"respawned worker refused the model: {reply}"
                )

    def _loop(self) -> None:
        while True:
            job = self.jobs.get()
            if job is None:
                try:
                    self._conn.send(("stop",))
                except Exception:
                    pass
                self._process.join(timeout=5.0)
                if self._process.is_alive():
                    self._process.terminate()
                    self._process.join(timeout=5.0)
                return
            try:
                reply = self._roundtrip(job.message)
            except (EOFError, OSError, BrokenPipeError):
                # The worker died under this job: fail the job, heal the
                # worker so the next one lands on a live process.
                try:
                    self._respawn()
                    failure: Exception = ServePoolError(
                        f"predictor worker {self.index} lost mid-job "
                        "(respawned)"
                    )
                except Exception as exc:
                    failure = ServePoolError(
                        f"predictor worker {self.index} lost and respawn "
                        f"failed: {exc}"
                    )
                job.future.set_exception(failure)
                continue
            if reply[0] == "error":
                job.future.set_exception(ServePoolError(reply[1]))
            elif reply[0] == "installed":
                job.future.set_result(reply[1:])
            else:  # ("labels", epoch, labels)
                job.future.set_result((reply[1], reply[2]))


class PredictorPool:
    """N predictor processes sharing one shm-resident model.

    Parameters
    ----------
    num_workers:
        Predictor process count (>= 1).
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` on POSIX
        (fast, and the workers only ever run this module's loop).
    """

    def __init__(
        self, num_workers: int = 1, *, start_method: str | None = None
    ) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if start_method is None:
            start_method = "fork" if os.name == "posix" else "spawn"
        self._ctx = get_context(start_method)
        self.num_workers = int(num_workers)
        self._workers: list[_WorkerProxy] = []
        self._rr = itertools.count()
        self._epoch = 0
        self._segment = None
        self._current_install: tuple | None = None
        self._closed = False
        self._lock = threading.Lock()
        self._workers = [
            _WorkerProxy(self, i) for i in range(self.num_workers)
        ]

    # ------------------------------------------------------------------
    # Model lifecycle
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Epoch tag of the resident model (0 = nothing installed)."""
        return self._epoch

    @property
    def respawns(self) -> int:
        """Total worker respawns absorbed so far."""
        return sum(w.respawns for w in self._workers)

    def install(self, model) -> InstallStats:
        """Hoist ``model`` into shared memory and swap it in everywhere.

        Blocks until every worker acked the new epoch; the previous
        epoch's segment is unlinked exactly then (per-worker FIFO
        guarantees no in-flight batch still references it).
        """
        if self._closed:
            raise ServePoolError("pool is closed")
        start = time.perf_counter()
        blob, flats = export_broadcast(model)
        with self._lock:
            epoch = self._epoch + 1
            if flats:
                handle, shm = create_segment(flats)
                channel, segment_bytes = "shm", shm.size
            else:
                handle, shm = None, None
                channel, segment_bytes = "pickle", 0
            message = ("install", epoch, channel, blob, handle)
            futures = [self._submit(w, message) for w in self._workers]
            rows = []
            try:
                for future in futures:
                    _, pid, attach_s, warm_s = future.result(timeout=120.0)
                    rows.append((pid, attach_s, warm_s))
            except Exception:
                if shm is not None:
                    destroy_segment(shm)
                raise
            previous = self._segment
            self._segment = shm
            self._current_install = message
            self._epoch = epoch
        if previous is not None:
            destroy_segment(previous)
        return InstallStats(
            epoch=epoch,
            seconds=time.perf_counter() - start,
            attach_seconds=max((r[1] for r in rows), default=0.0),
            warmup_seconds=max((r[2] for r in rows), default=0.0),
            segment_bytes=segment_bytes,
            payload_bytes=len(blob),
            workers=rows,
        )

    # ------------------------------------------------------------------
    # Predict dispatch
    # ------------------------------------------------------------------

    def _submit(self, worker: _WorkerProxy, message: tuple) -> Future:
        future: Future = Future()
        worker.jobs.put(_Job(message, future))
        return future

    def submit_predict(self, points: np.ndarray) -> Future:
        """Queue one fused batch; resolves to ``(epoch, labels)``."""
        if self._closed:
            raise ServePoolError("pool is closed")
        if self._current_install is None:
            raise ServePoolError("no model installed")
        worker = self._workers[next(self._rr) % len(self._workers)]
        return self._submit(worker, ("predict", self._epoch, points))

    def predict(self, points: np.ndarray) -> tuple[int, np.ndarray]:
        """Blocking convenience wrapper around :meth:`submit_predict`."""
        return self.submit_predict(points).result()

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Stop every worker and unlink the resident segment."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.jobs.put(None)
        for worker in self._workers:
            worker._thread.join(timeout=10.0)
        if self._segment is not None:
            destroy_segment(self._segment)
            self._segment = None

    def __enter__(self) -> "PredictorPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
