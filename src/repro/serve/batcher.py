"""Asyncio micro-batching: many small requests, one columnar dispatch.

The inference-serving lever the ROADMAP's item 4b names: per-request
overhead (frame decode, future wiring, a worker pipe round trip) is
fixed, so answering each request alone caps throughput at
``1 / overhead`` no matter how fast the kernel is.  The
:class:`MicroBatcher` instead gathers the requests that arrive inside a
bounded window (or until a size cap) and dispatches them as **one**
fused ``(sum(m_i), d)`` batch; the per-request cost of everything
downstream of the gather is divided by the batch size.  Scatter-back is
positional: request ``i`` contributed rows ``[o_i, o_i + m_i)`` of the
fused batch and gets exactly those label rows back.

Flush policy (standard inference-serving shape):

* the **first** request into an empty accumulator arms a timer for
  ``window_s`` — a lone request never waits longer than the window;
* reaching ``max_batch`` fused points flushes immediately and disarms
  the timer — a burst never builds an unboundedly large batch;
* ``window_s == 0`` or ``max_batch == 1`` degenerate to
  request-at-a-time dispatch (the baseline the serving bench measures
  against).

Backpressure is the caller's: the batcher exposes ``pending_requests``
(submitted, not yet answered) and the server refuses new work above its
admission bound instead of queueing unbounded latency.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

import numpy as np

__all__ = ["MicroBatcher"]

#: ``dispatch`` signature: fused ``(m, d)`` points -> (epoch, labels).
DispatchFn = Callable[[np.ndarray], Awaitable[tuple[int, np.ndarray]]]


class MicroBatcher:
    """Gather concurrent predict requests into fused dispatches.

    Parameters
    ----------
    dispatch:
        Async callable answering one fused batch with
        ``(epoch, labels)``; typically a wrapper around
        :meth:`repro.serve.pool.PredictorPool.submit_predict`.
    window_s:
        Gather window armed by the first request of a batch (seconds).
        ``0`` flushes on every submit.
    max_batch:
        Fused-point cap; reaching it flushes without waiting for the
        window.  A single request larger than the cap still dispatches
        (alone) — the batcher never splits one request.
    on_batch:
        Optional hook ``(n_requests, n_points)`` per dispatch, for the
        batch-size distribution metrics.
    """

    def __init__(
        self,
        dispatch: DispatchFn,
        *,
        window_s: float = 0.001,
        max_batch: int = 256,
        on_batch: Callable[[int, int], None] | None = None,
    ) -> None:
        if window_s < 0:
            raise ValueError("window_s must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self._dispatch = dispatch
        self.window_s = float(window_s)
        self.max_batch = int(max_batch)
        self._on_batch = on_batch
        self._items: list[tuple[np.ndarray, asyncio.Future]] = []
        self._pending_points = 0
        self._pending_requests = 0
        self._timer: asyncio.TimerHandle | None = None
        self.batches_dispatched = 0

    @property
    def pending_requests(self) -> int:
        """Requests submitted and not yet answered (admission signal)."""
        return self._pending_requests

    @property
    def accumulating_points(self) -> int:
        """Points gathered and not yet dispatched."""
        return self._pending_points

    async def submit(self, points: np.ndarray) -> tuple[int, np.ndarray]:
        """Queue one request; resolves to ``(epoch, labels)`` for it."""
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("points must be a non-empty (m, d) block")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._items.append((points, future))
        self._pending_points += points.shape[0]
        self._pending_requests += 1
        try:
            if self._pending_points >= self.max_batch or self.window_s == 0:
                self._flush()
            elif self._timer is None:
                self._timer = loop.call_later(self.window_s, self._flush)
            return await future
        finally:
            self._pending_requests -= 1

    def _flush(self) -> None:
        """Move the accumulator into one dispatched batch task."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._items:
            return
        items, self._items = self._items, []
        self._pending_points = 0
        self.batches_dispatched += 1
        if self._on_batch is not None:
            # A metrics hook must never wedge a batch: _flush runs as a
            # timer callback, where an escaping exception would leave
            # every gathered future unresolved.
            try:
                self._on_batch(
                    len(items), sum(points.shape[0] for points, _ in items)
                )
            except Exception:
                pass
        asyncio.get_running_loop().create_task(self._run_batch(items))

    async def _run_batch(
        self, items: list[tuple[np.ndarray, asyncio.Future]]
    ) -> None:
        blocks = [points for points, _ in items]
        fused = blocks[0] if len(blocks) == 1 else np.concatenate(blocks)
        try:
            epoch, labels = await self._dispatch(fused)
        except Exception as exc:
            for _, future in items:
                if not future.done():
                    future.set_exception(exc)
            return
        offset = 0
        for points, future in items:
            m = points.shape[0]
            if not future.done():
                future.set_result((epoch, labels[offset : offset + m]))
            offset += m

    async def drain(self) -> None:
        """Flush the accumulator and wait for every in-flight request."""
        self._flush()
        while self._pending_requests:
            await asyncio.sleep(0.001)
