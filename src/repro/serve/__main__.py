"""``python -m repro.serve`` — run a predict server as a daemon.

Loads an RPST model file (``rp-dbscan fit --save-model`` /
:func:`repro.core.serialization.save_cluster_state`), hoists it into
shared memory, and serves predict/ingest/stats traffic until
``MSG_SHUTDOWN`` or SIGINT/SIGTERM.  Prints one machine-readable ready
line to stdout once the socket is bound::

    RPDBSCAN-SERVE READY host=127.0.0.1 port=40123 epoch=1 workers=2

so wrappers (the load bench, CI) can wait for it and parse the resolved
port when started with ``--port 0``.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import signal
import sys

from repro.core.serialization import load_cluster_state
from repro.kernels import KernelUnavailableError
from repro.obs.report import render_serving_report
from repro.serve.server import PredictServer, ServeConfig

__all__ = ["main", "build_parser", "add_serve_arguments", "run_from_args"]


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the serving options (shared with ``rp-dbscan serve``)."""
    parser.add_argument(
        "--model", required=True, help="RPST model file (cluster --save-model)"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 binds an OS-assigned port"
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="predictor worker processes attaching the shm model",
    )
    parser.add_argument(
        "--batch-window", type=float, default=0.001, metavar="SECONDS",
        help="micro-batch gather window (0 = request-at-a-time)",
    )
    parser.add_argument(
        "--max-batch", type=int, default=256,
        help="fused-point cap per dispatch (1 = no batching)",
    )
    parser.add_argument(
        "--max-queue", type=int, default=1024,
        help="admission bound: reject beyond this many in-flight requests",
    )
    parser.add_argument(
        "--kernel", default="auto", choices=("auto", "numpy", "numba"),
        help="distance backend for the resident model",
    )
    parser.add_argument(
        "--report", action="store_true",
        help="print the serving ledger on shutdown",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve cluster-membership predictions from a saved "
        "RPST model over TCP with micro-batching.",
    )
    add_serve_arguments(parser)
    return parser


async def _run(args: argparse.Namespace) -> PredictServer:
    state = load_cluster_state(args.model)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        batch_window_s=args.batch_window,
        max_batch=args.max_batch,
        max_pending=args.max_queue,
        kernel=args.kernel,
    )
    server = PredictServer(state, config)
    await server.start()
    print(
        f"RPDBSCAN-SERVE READY host={server.host} port={server.port} "
        f"epoch={server.epoch} workers={config.workers}",
        flush=True,
    )
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(
                sig, lambda: loop.create_task(server.stop())
            )
    await server.serve_until_stopped()
    return server


def run_from_args(args: argparse.Namespace) -> int:
    """Run a server to completion from parsed serving options."""
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    try:
        server = asyncio.run(_run(args))
    except (ValueError, OSError, KernelUnavailableError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.report:
        print(render_serving_report(server.registry.snapshot()))
    return 0


def main(argv: list[str] | None = None) -> int:
    return run_from_args(build_parser().parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
