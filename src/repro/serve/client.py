"""Blocking client for the predict server.

A deliberately small synchronous client over one TCP connection:
``predict`` / ``ingest`` / ``stats`` / ``shutdown`` each send one frame
and block for the reply, mirroring how a non-async application (or a
closed-loop load-generator thread in the bench) consumes the serving
plane.  Frames are the codec of :mod:`repro.engine.remote.protocol`;
payloads the codecs of :mod:`repro.serve.wire`.

A serving ``MSG_ERROR`` raises :class:`RequestRejected` and leaves the
connection usable — rejection (admission control, shape mismatch) is a
per-request outcome, so a load generator catches it and retries without
reconnecting.
"""

from __future__ import annotations

import socket
from typing import Any

import numpy as np

from repro.engine.remote.protocol import (
    HEADER_SIZE,
    MSG_INGEST,
    MSG_INGEST_ACK,
    MSG_LABELS,
    MSG_PREDICT,
    MSG_SHUTDOWN,
    MSG_STATS,
    MSG_STATS_ACK,
    MSG_ERROR,
    FrameError,
    decode_header,
    encode_frame,
)
from repro.serve import wire

__all__ = ["ServeClient", "RequestRejected", "ServeProtocolError"]


class RequestRejected(RuntimeError):
    """The server refused this request (overload / malformed input).

    Per-request, not per-connection: the same client can retry.
    """


class ServeProtocolError(RuntimeError):
    """The server answered with a frame the client did not expect."""


class ServeClient:
    """One blocking connection to a :class:`~repro.serve.server.PredictServer`.

    Parameters
    ----------
    host, port:
        The server's bound address (``server.host`` / ``server.port``).
    timeout_s:
        Socket timeout for each blocking reply, ``None`` = unbounded.
    """

    def __init__(
        self, host: str, port: int, *, timeout_s: float | None = 60.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        #: Epoch tag of the model that answered the last ``predict`` —
        #: how a client observes an ingest swap mid-stream.
        self.last_epoch: int | None = None

    # ------------------------------------------------------------------
    # Frame plumbing (sync mirror of protocol.read_frame/write_frame)
    # ------------------------------------------------------------------

    def _recv_exactly(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(min(remaining, 1 << 20))
            if not chunk:
                raise ConnectionError("server closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _read_frame(self) -> tuple[int, bytes]:
        msg_type, length = decode_header(self._recv_exactly(HEADER_SIZE))
        payload = self._recv_exactly(length) if length else b""
        return msg_type, payload

    def _round_trip(self, msg_type: int, payload: bytes) -> tuple[int, bytes]:
        self._sock.sendall(encode_frame(msg_type, payload))
        reply_type, reply = self._read_frame()
        if reply_type == MSG_ERROR:
            raise RequestRejected(wire.decode_error(reply))
        return reply_type, reply

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Labels for ``points`` from the resident model.

        Sets :attr:`last_epoch` to the answering model's epoch tag.
        """
        reply_type, reply = self._round_trip(
            MSG_PREDICT, wire.encode_points(points)
        )
        if reply_type != MSG_LABELS:
            raise ServeProtocolError(
                f"expected MSG_LABELS, got message type {reply_type}"
            )
        epoch, labels = wire.decode_labels(reply)
        self.last_epoch = epoch
        return labels

    def ingest(self, points: np.ndarray) -> dict[str, Any]:
        """Append points to the resident model and swap it atomically.

        Returns the server's ingest report (new epoch, refit counters).
        """
        reply_type, reply = self._round_trip(
            MSG_INGEST, wire.encode_points(points)
        )
        if reply_type != MSG_INGEST_ACK:
            raise ServeProtocolError(
                f"expected MSG_INGEST_ACK, got message type {reply_type}"
            )
        return wire.decode_obj(reply)

    def stats(self) -> dict[str, Any]:
        """The server's live metrics snapshot plus config/epoch."""
        reply_type, reply = self._round_trip(MSG_STATS, b"")
        if reply_type != MSG_STATS_ACK:
            raise ServeProtocolError(
                f"expected MSG_STATS_ACK, got message type {reply_type}"
            )
        return wire.decode_obj(reply)

    def shutdown(self) -> None:
        """Ask the server to stop (acknowledged before it goes down)."""
        try:
            reply_type, _ = self._round_trip(MSG_SHUTDOWN, b"")
        except (ConnectionError, FrameError):
            return  # already gone — the goal state
        if reply_type != MSG_SHUTDOWN:
            raise ServeProtocolError(
                f"expected MSG_SHUTDOWN echo, got message type {reply_type}"
            )

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
