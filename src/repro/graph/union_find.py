"""Disjoint-set (union-find) with path compression and union by rank.

Works over arbitrary hashable items (cell ids are tuples of ints) and is
used both for the spanning-forest edge reduction in Phase III and for the
cluster merging of the region-split baselines.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import TypeVar

T = TypeVar("T", bound=Hashable)

__all__ = ["UnionFind"]


class UnionFind:
    """Union-find over hashable items.

    Items are added lazily: :meth:`find` and :meth:`union` create
    singleton sets for unseen items.

    Examples
    --------
    >>> uf = UnionFind()
    >>> uf.union((0, 0), (0, 1))
    True
    >>> uf.connected((0, 0), (0, 1))
    True
    >>> uf.union((0, 0), (0, 1))  # already joined
    False
    """

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._rank: dict[Hashable, int] = {}
        self._count = 0
        for item in items:
            self.add(item)

    def __len__(self) -> int:
        """Number of items tracked."""
        return len(self._parent)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    @property
    def set_count(self) -> int:
        """Number of disjoint sets."""
        return self._count

    def add(self, item: Hashable) -> None:
        """Register ``item`` as a singleton set if unseen."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0
            self._count += 1

    def find(self, item: Hashable) -> Hashable:
        """Representative of the set containing ``item`` (added if new)."""
        parent = self._parent
        if item not in parent:
            self.add(item)
            return item
        root = item
        while parent[root] != root:
            root = parent[root]
        # Path compression.
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets containing ``a`` and ``b``.

        Returns ``True`` if the two items were in different sets (i.e. the
        edge ``(a, b)`` is a spanning-forest edge), ``False`` if they were
        already connected (the edge is redundant, Sec 6.1.4).
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        self._count -= 1
        return True

    def copy(self) -> "UnionFind":
        """Independent copy with the same connectivity."""
        clone = UnionFind()
        clone._parent = dict(self._parent)
        clone._rank = dict(self._rank)
        clone._count = self._count
        return clone

    def merge_from(self, other: "UnionFind") -> None:
        """Union in all of ``other``'s connectivity (``other`` unchanged)."""
        for item in other._parent:
            self.union(item, other.find(item))

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def groups(self) -> dict[Hashable, list[Hashable]]:
        """Mapping from set representative to the list of its members."""
        out: dict[Hashable, list[Hashable]] = {}
        for item in self._parent:
            out.setdefault(self.find(item), []).append(item)
        return out

    def component_labels(self) -> dict[Hashable, int]:
        """Dense integer label per item, stable across equal structures.

        Labels are assigned in sorted order of the string form of the
        representatives so that two structurally equal union-finds always
        produce the same labeling (useful for deterministic cluster ids).
        """
        reps = sorted({self.find(item) for item in self._parent}, key=repr)
        rep_to_label = {rep: i for i, rep in enumerate(reps)}
        return {item: rep_to_label[self.find(item)] for item in self._parent}
