"""Disjoint-set (union-find) with path compression and union by rank.

Works over arbitrary hashable items (cell ids are tuples of ints) and is
used both for the spanning-forest edge reduction in Phase III and for the
cluster merging of the region-split baselines.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable
from typing import TypeVar

import numpy as np

T = TypeVar("T", bound=Hashable)

__all__ = ["UnionFind", "ArrayUnionFind"]


class UnionFind:
    """Union-find over hashable items.

    Items are added lazily: :meth:`find` and :meth:`union` create
    singleton sets for unseen items.

    Examples
    --------
    >>> uf = UnionFind()
    >>> uf.union((0, 0), (0, 1))
    True
    >>> uf.connected((0, 0), (0, 1))
    True
    >>> uf.union((0, 0), (0, 1))  # already joined
    False
    """

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._rank: dict[Hashable, int] = {}
        self._count = 0
        for item in items:
            self.add(item)

    def __len__(self) -> int:
        """Number of items tracked."""
        return len(self._parent)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent

    @property
    def set_count(self) -> int:
        """Number of disjoint sets."""
        return self._count

    def add(self, item: Hashable) -> None:
        """Register ``item`` as a singleton set if unseen."""
        if item not in self._parent:
            self._parent[item] = item
            self._rank[item] = 0
            self._count += 1

    def find(self, item: Hashable) -> Hashable:
        """Representative of the set containing ``item`` (added if new)."""
        parent = self._parent
        if item not in parent:
            self.add(item)
            return item
        root = item
        while parent[root] != root:
            root = parent[root]
        # Path compression.
        while parent[item] != root:
            parent[item], item = root, parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets containing ``a`` and ``b``.

        Returns ``True`` if the two items were in different sets (i.e. the
        edge ``(a, b)`` is a spanning-forest edge), ``False`` if they were
        already connected (the edge is redundant, Sec 6.1.4).
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        self._count -= 1
        return True

    def copy(self) -> "UnionFind":
        """Independent copy with the same connectivity."""
        clone = UnionFind()
        clone._parent = dict(self._parent)
        clone._rank = dict(self._rank)
        clone._count = self._count
        return clone

    def merge_from(self, other: "UnionFind") -> None:
        """Union in all of ``other``'s connectivity (``other`` unchanged)."""
        for item in other._parent:
            self.union(item, other.find(item))

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def groups(self) -> dict[Hashable, list[Hashable]]:
        """Mapping from set representative to the list of its members."""
        out: dict[Hashable, list[Hashable]] = {}
        for item in self._parent:
            out.setdefault(self.find(item), []).append(item)
        return out

    def component_labels(self) -> dict[Hashable, int]:
        """Dense integer label per item, canonical for the partition.

        Components are numbered by the string form of their *smallest
        member*, not of their union-find representative, so the labeling
        is a pure function of the partition into components: two
        union-finds describing the same connectivity yield identical
        labels even when their internal trees — and hence their
        representatives — differ (e.g. after removing different redundant
        full edges in the Sec 6.1.4 spanning-forest reduction).
        """
        canonical: dict[Hashable, Hashable] = {}
        for item in self._parent:
            root = self.find(item)
            best = canonical.get(root)
            if best is None or repr(item) < repr(best):
                canonical[root] = item
        order = sorted(canonical, key=lambda root: repr(canonical[root]))
        rep_to_label = {root: i for i, root in enumerate(order)}
        return {item: rep_to_label[self.find(item)] for item in self._parent}


class ArrayUnionFind:
    """Union-find over the dense integer universe ``0 .. n_slots - 1``.

    The columnar counterpart of :class:`UnionFind` used by
    ``FlatCellGraph``: the vertex universe is fixed up front (the
    dictionary's dense flat-row cell indices), the parent table is a flat
    Python list walked with path halving, and the whole structure
    round-trips to an ``int32`` array for npz-style task payloads.
    Unlike :class:`UnionFind` there is no lazy item registration and no
    rank bookkeeping — path halving alone keeps trees shallow for the
    union/find mixes of the spanning-forest reduction.
    """

    __slots__ = ("_parent",)

    def __init__(self, n_slots: int = 0) -> None:
        self._parent: list[int] = list(range(int(n_slots)))

    @property
    def n_slots(self) -> int:
        """Size of the vertex universe (absent vertices included)."""
        return len(self._parent)

    def find(self, item: int) -> int:
        """Root of ``item``'s tree, halving the path on the way up."""
        parent = self._parent
        while parent[item] != item:
            parent[item] = parent[parent[item]]
            item = parent[item]
        return item

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``.

        Returns ``True`` when the edge joined two distinct sets (a
        spanning-forest edge), ``False`` when it was redundant.
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self._parent[rb] = ra
        return True

    def connected(self, a: int, b: int) -> bool:
        """Whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def copy(self) -> "ArrayUnionFind":
        """Independent copy with the same connectivity."""
        clone = ArrayUnionFind.__new__(ArrayUnionFind)
        clone._parent = list(self._parent)
        return clone

    def merge_from(self, other: "ArrayUnionFind") -> None:
        """Union in all of ``other``'s connectivity (same universe)."""
        if other.n_slots != self.n_slots:
            raise ValueError(
                f"universe mismatch: {self.n_slots} vs {other.n_slots}"
            )
        parent = other._parent
        for item in range(len(parent)):
            if parent[item] != item:
                self.union(item, other.find(item))

    def to_array(self) -> np.ndarray:
        """Parent table as an ``int32`` array (for serialization)."""
        return np.asarray(self._parent, dtype=np.int32)

    @classmethod
    def from_array(cls, parent: np.ndarray) -> "ArrayUnionFind":
        """Rebuild from a parent table produced by :meth:`to_array`."""
        clone = cls.__new__(cls)
        clone._parent = [int(p) for p in parent.tolist()]
        return clone

    def roots(self) -> np.ndarray:
        """Fully-compressed root per slot as an ``int32`` array."""
        parent = np.asarray(self._parent, dtype=np.int32)
        while True:
            grand = parent[parent]
            if np.array_equal(grand, parent):
                return parent
            parent = grand
