"""Graph substrate: disjoint sets and spanning forests.

Phase III of RP-DBSCAN reduces cell-graph merging to spanning-forest
computation on the undirected *full* edges (Sec 6.1.4) and the final
clustering to connected components.  The region-split baselines reuse the
same union-find to merge local clusters through shared halo points.
"""

from repro.graph.spanning_forest import connected_components, spanning_forest
from repro.graph.union_find import UnionFind

__all__ = ["UnionFind", "spanning_forest", "connected_components"]
