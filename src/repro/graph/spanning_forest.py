"""Spanning forests and connected components over edge lists.

Section 6.1.4 of the paper removes *redundant full edges* — edges that
close a cycle between core cells — because a single path between cells
suffices to express cluster connectivity.  A spanning forest over the
undirected full edges keeps exactly the non-redundant ones and is
computable in linear time with union-find.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

import numpy as np

from repro.graph.union_find import ArrayUnionFind, UnionFind

__all__ = [
    "spanning_forest",
    "connected_components",
    "connected_components_arrays",
]

Edge = tuple[Hashable, Hashable]


def spanning_forest(edges: Iterable[Edge]) -> tuple[list[Edge], UnionFind]:
    """Keep one spanning-forest edge set from undirected ``edges``.

    Parameters
    ----------
    edges:
        Iterable of ``(u, v)`` pairs; direction is ignored (full edges in
        the cell graph are undirected once their type is known).

    Returns
    -------
    tuple
        ``(kept_edges, union_find)`` where ``kept_edges`` are the edges
        that joined two previously disconnected components (in input
        order) and ``union_find`` holds the resulting connectivity.
    """
    uf = UnionFind()
    kept: list[Edge] = []
    for u, v in edges:
        if uf.union(u, v):
            kept.append((u, v))
    return kept, uf


def connected_components(
    nodes: Iterable[Hashable], edges: Iterable[Edge]
) -> dict[Hashable, int]:
    """Dense component label for every node.

    ``nodes`` may include isolated vertices that appear in no edge; they
    each get their own component.  Labels are deterministic for equal
    inputs (see :meth:`repro.graph.union_find.UnionFind.component_labels`).
    """
    uf = UnionFind(nodes)
    for u, v in edges:
        uf.union(u, v)
    return uf.component_labels()


def connected_components_arrays(
    n_slots: int, src: np.ndarray, dst: np.ndarray
) -> np.ndarray:
    """Canonical component label per slot of a dense vertex universe.

    Columnar counterpart of :func:`connected_components` for the flat
    cell graph: vertices are ``0 .. n_slots - 1`` and the edge list is a
    pair of integer arrays.  Components are numbered in ascending order
    of their smallest member, which matches
    :meth:`~repro.graph.union_find.UnionFind.component_labels` on integer
    vertices — the labeling depends only on connectivity, not on which
    spanning-forest edges produced it.
    """
    uf = ArrayUnionFind(n_slots)
    for u, v in zip(src.tolist(), dst.tolist()):
        uf.union(u, v)
    roots = uf.roots()
    if roots.size == 0:
        return np.empty(0, dtype=np.int64)
    _, first_index, inverse = np.unique(
        roots, return_index=True, return_inverse=True
    )
    # np.unique orders components by root id; renumber by smallest
    # member (= first occurrence index, since slots ascend).
    order = np.argsort(first_index, kind="stable")
    remap = np.empty(order.size, dtype=np.int64)
    remap[order] = np.arange(order.size, dtype=np.int64)
    return remap[inverse]
