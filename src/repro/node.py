"""``python -m repro.node`` — run one node agent of the distributed
substrate.

Quick start (one agent per machine, then point the driver at them)::

    # on each worker machine
    python -m repro.node --listen 0.0.0.0:7071 --workers 8

    # on the driver
    rp-dbscan cluster points.npy --executor remote \
        --nodes hostA:7071,hostB:7071 ...

The agent prints ``rp-dbscan node listening on HOST:PORT ...`` once the
socket is bound (with the resolved port when ``--listen host:0`` asked
for an ephemeral one — the loopback test harness keys on this line) and
serves until SIGTERM/SIGINT or a driver SHUTDOWN frame.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import os
import signal
import sys

from repro.engine.remote.agent import NodeAgent
from repro.engine.remote.cluster import parse_node_addr


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.node",
        description="RP-DBSCAN node agent: local process pool + TCP frontend",
    )
    parser.add_argument(
        "--listen", required=True, metavar="HOST:PORT",
        help="bind address; PORT 0 picks an ephemeral port",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="local pool size (default: CPU count)",
    )
    parser.add_argument(
        "--broadcast", choices=("auto", "pickle", "shm"), default="auto",
        help="node-local broadcast channel for the worker fan-out",
    )
    parser.add_argument(
        "--start-method", choices=("fork", "spawn"), default=None,
        help="multiprocessing start method of the local pool",
    )
    parser.add_argument(
        "--heartbeat-interval", type=float, default=1.0,
        help="seconds between heartbeat frames to the driver",
    )
    return parser


async def _serve(agent: NodeAgent) -> None:
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(sig, agent.request_stop)

    def announce(ready_agent: NodeAgent) -> None:
        print(
            f"rp-dbscan node listening on "
            f"{ready_agent.host}:{ready_agent.bound_port} "
            f"workers={ready_agent.workers} pid={os.getpid()}",
            flush=True,
        )

    await agent.serve(ready=announce)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    host, port = parse_node_addr(args.listen)
    agent = NodeAgent(
        host,
        port,
        workers=args.workers,
        broadcast_channel=args.broadcast,
        start_method=args.start_method,
        heartbeat_interval_s=args.heartbeat_interval,
    )
    asyncio.run(_serve(agent))
    return 0


if __name__ == "__main__":
    sys.exit(main())
