"""Fault-tolerance policy and chaos-style fault injection.

Spark gives the paper's implementation task retries, timeouts, and
straggler re-execution for free; this module supplies the same safety
net for the repo's process executor.  Two pieces:

* :class:`FaultPolicy` — the knobs the driver-side recovery loop in
  :meth:`repro.engine.executors.Engine.map_tasks` obeys: a per-task
  retry budget with exponential backoff, per-task and per-phase
  timeouts, automatic pool re-spawn after a worker crash (re-shipping
  broadcasts under a fresh epoch), and straggler detection with
  speculative re-execution.
* :class:`FaultInjector` — a seeded chaos source that wraps task
  execution in *any* executor mode.  Per task attempt it deterministically
  decides whether to delay, crash the worker (process mode; inline runs
  raise instead), or raise an :class:`InjectedFault`.  Determinism per
  ``(phase, task_id, attempt)`` means a crashed first attempt does not
  doom the retry: the retry draws its own, independent decision — and a
  re-run of the same chaos experiment replays the exact same faults.

Every recovery event is surfaced in the engine's counters under
dedicated fault buckets (``engine.retries``, ``engine.timeouts``,
``engine.respawns``, ``engine.speculations``) which — like the
``engine.setup`` bucket — never appear in phase breakdowns, so chaos
experiments do not pollute Fig 12/13 reproductions.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field

__all__ = [
    "FaultPolicy",
    "FaultInjector",
    "FaultDecision",
    "NodeFaultDecision",
    "EngineClosedError",
    "StaleBroadcastError",
    "InjectedFault",
    "TaskFailedError",
    "PhaseTimeoutError",
    "FAULT_RETRIES",
    "FAULT_TIMEOUTS",
    "FAULT_RESPAWNS",
    "FAULT_SPECULATIONS",
]

#: Counter-bucket names for fault events (see
#: :meth:`repro.engine.counters.Counters.add_fault_event`).
FAULT_RETRIES = "retries"
FAULT_TIMEOUTS = "timeouts"
FAULT_RESPAWNS = "respawns"
FAULT_SPECULATIONS = "speculations"

#: Exit code used by injected worker crashes, so a post-mortem can tell
#: chaos kills from genuine segfaults.
CRASH_EXIT_CODE = 117


class EngineClosedError(RuntimeError):
    """Raised when ``map_tasks`` is called on a closed engine."""


class StaleBroadcastError(RuntimeError):
    """A worker's cached broadcast epoch does not match the task's.

    Reaching the driver, this means a worker was replaced behind the
    pool's back (its cache is cold) — the recovery loop answers with a
    full pool re-spawn plus a broadcast re-ship under a fresh epoch.
    """


class InjectedFault(RuntimeError):
    """A fault raised (or simulated) by a :class:`FaultInjector`."""


class TaskFailedError(RuntimeError):
    """A task exhausted its retry budget; chains the last failure."""


class PhaseTimeoutError(TimeoutError):
    """A whole phase exceeded :attr:`FaultPolicy.phase_timeout_s`."""


@dataclass(frozen=True)
class FaultDecision:
    """What the injector decided for one ``(phase, task_id, attempt)``."""

    delay: bool = False
    crash: bool = False
    exception: bool = False

    @property
    def any(self) -> bool:
        return self.delay or self.crash or self.exception


@dataclass(frozen=True)
class NodeFaultDecision:
    """What the injector decided for one ``(phase, node_id)``.

    Node faults are a coarser chaos axis than task faults: they strike a
    whole machine (its agent process, its connection, or its pacing)
    rather than one task attempt.  The remote node agent evaluates its
    decision once per phase, on task receipt, so a crash lands genuinely
    mid-phase — after the node has accepted work — not before the phase
    starts.
    """

    crash: bool = False
    delay: bool = False
    drop: bool = False

    @property
    def any(self) -> bool:
        return self.crash or self.delay or self.drop


@dataclass(frozen=True)
class FaultInjector:
    """Seeded chaos source: crash / delay / exception per task attempt.

    Parameters
    ----------
    crash_prob:
        Probability that an attempt kills its worker process with
        ``os._exit`` (process mode).  Inline execution (serial mode,
        single-task phases) cannot kill the driver, so a crash decision
        degrades to an :class:`InjectedFault` there.
    delay_prob / delay_s:
        Probability that an attempt sleeps ``delay_s`` seconds before
        running — the straggler generator.
    exception_prob:
        Probability that an attempt raises :class:`InjectedFault`.
    node_crash_prob:
        Probability that a remote node agent kills itself
        (``os._exit``) upon receiving its second task of a phase —
        mid-phase node death, the scenario the remote executor's
        recovery loop must absorb.  Ignored by local executors.
    node_delay_prob / node_delay_s:
        Probability that a node sleeps ``node_delay_s`` before
        dispatching its first task of a phase — a slow-machine model.
    node_drop_prob:
        Probability that a node drops its driver connection (once per
        phase, on the second task): the driver sees a dead node, the
        agent survives and rejoins on reconnect.
    seed:
        Root seed.  Decisions are a pure function of
        ``(seed, phase, task_id, attempt)`` — and, for node faults, of
        ``(seed, phase, node_id)`` — independent of execution order,
        worker scheduling, and ``PYTHONHASHSEED`` — so chaos runs are
        reproducible and retries are never deterministically doomed.
    """

    crash_prob: float = 0.0
    delay_prob: float = 0.0
    exception_prob: float = 0.0
    delay_s: float = 0.1
    node_crash_prob: float = 0.0
    node_delay_prob: float = 0.0
    node_drop_prob: float = 0.0
    node_delay_s: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        for name in (
            "crash_prob", "delay_prob", "exception_prob",
            "node_crash_prob", "node_delay_prob", "node_drop_prob",
        ):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")
        if self.node_delay_s < 0:
            raise ValueError("node_delay_s must be >= 0")

    def decide(self, phase: str, task_id: int, attempt: int) -> FaultDecision:
        """The (deterministic) fault decision for one task attempt."""
        # Seeding random.Random with a string hashes it with SHA-512,
        # which is stable across processes and hash randomization.
        rng = random.Random(f"{self.seed}|{phase}|{task_id}|{attempt}")
        return FaultDecision(
            delay=rng.random() < self.delay_prob,
            crash=rng.random() < self.crash_prob,
            exception=rng.random() < self.exception_prob,
        )

    def apply(
        self, phase: str, task_id: int, attempt: int, *, allow_crash: bool
    ) -> None:
        """Execute this attempt's decision (sleep, exit, or raise)."""
        decision = self.decide(phase, task_id, attempt)
        if decision.delay:
            time.sleep(self.delay_s)
        if decision.crash:
            if allow_crash:
                os._exit(CRASH_EXIT_CODE)
            raise InjectedFault(
                f"injected crash (inline degrade): {phase} task {task_id} "
                f"attempt {attempt}"
            )
        if decision.exception:
            raise InjectedFault(
                f"injected exception: {phase} task {task_id} attempt {attempt}"
            )

    def decide_node(self, phase: str, node_id: int) -> NodeFaultDecision:
        """The (deterministic) node-level fault decision for one phase.

        Same SHA-stable string-seeding scheme as :meth:`decide`, under a
        distinct ``node`` namespace so adding node chaos never perturbs
        the task-level decision stream of an existing seed.
        """
        rng = random.Random(f"{self.seed}|node|{phase}|{node_id}")
        return NodeFaultDecision(
            crash=rng.random() < self.node_crash_prob,
            delay=rng.random() < self.node_delay_prob,
            drop=rng.random() < self.node_drop_prob,
        )


@dataclass(frozen=True)
class FaultPolicy:
    """Recovery behavior of a fault-tolerant :class:`~repro.engine.Engine`.

    Passing a policy to the engine (or to
    :class:`~repro.core.rp_dbscan.RPDBSCAN`) opts ``map_tasks`` into the
    driver-side recovery loop; without one, the engine keeps its
    zero-overhead fast path and a single worker failure fails the phase.

    Parameters
    ----------
    max_retries:
        Re-submissions allowed per task after its first attempt fails or
        times out.  Exhausting the budget raises :class:`TaskFailedError`.
        Re-submissions forced by a pool re-spawn do not consume budget —
        they are the pool's fault, not the task's.
    backoff_base_s / backoff_factor / backoff_max_s:
        Exponential-backoff schedule: retry ``k`` (1-based) waits
        ``min(backoff_base_s * backoff_factor**(k-1), backoff_max_s)``.
    task_timeout_s:
        Wall-clock budget per task attempt (``None`` disables).  A
        timed-out attempt is abandoned (its worker may still be busy)
        and the task is retried on another worker.  Enforced only in
        process mode — inline execution cannot be preempted.
    phase_timeout_s:
        Wall-clock budget for a whole ``map_tasks`` call (``None``
        disables); exceeding it raises :class:`PhaseTimeoutError`.
        Pool re-spawn time (accounted as engine setup) does not count
        against the phase budget.
    speculative:
        Enable straggler detection: once at least half the phase's tasks
        (and ``speculation_min_done``) have finished, a task whose
        attempt has been running longer than ``straggler_factor`` times
        the median completed-task duration (and at least
        ``straggler_min_wait_s``) gets one speculative duplicate; first
        completion wins, the loser is ignored — Spark's
        ``spark.speculation``.
    max_respawns:
        Pool re-spawns allowed per ``map_tasks`` call before giving up.
    injector:
        Optional :class:`FaultInjector` wrapped around every task
        attempt, in any executor mode, for chaos testing.
    poll_interval_s:
        Driver-side polling granularity of the recovery loop.
    """

    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    task_timeout_s: float | None = None
    phase_timeout_s: float | None = None
    speculative: bool = True
    straggler_factor: float = 4.0
    straggler_min_wait_s: float = 0.25
    speculation_min_done: int = 2
    max_respawns: int = 3
    injector: FaultInjector | None = None
    poll_interval_s: float = 0.005

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff times must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        for name in ("task_timeout_s", "phase_timeout_s"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive or None")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")

    def backoff(self, retry_number: int) -> float:
        """Seconds to wait before retry ``retry_number`` (1-based)."""
        if retry_number < 1:
            return 0.0
        delay = self.backoff_base_s * self.backoff_factor ** (retry_number - 1)
        return min(delay, self.backoff_max_s)
