"""Zero-copy broadcast of columnar dictionaries via shared memory.

The flat cell dictionary is six contiguous numpy arrays; pickling it
copies every byte into the pipe of every worker.  This module instead
packs those arrays once into one ``multiprocessing.shared_memory``
segment and pickles only a small :class:`ShmSegmentHandle` descriptor —
workers attach the segment and rebuild read-only array views over it,
so the dictionary crosses the process boundary exactly once regardless
of the worker count.

The mechanism is transparent to the broadcast *value*: a custom pickler
(:func:`export_broadcast`) walks the object graph and swaps every
:class:`~repro.core.dictionary.FlatCellDictionary` it meets — no matter
how deeply nested inside ``QueryContext``/``LabelingContext``/tuples —
for a persistent-id reference into the segment; the worker-side
unpickler (:func:`import_broadcast`) resolves those references to the
attached views.  A broadcast containing no flat dictionary exports to a
plain pickle stream (loadable with ``pickle.loads``), which is how the
engine's ``auto`` channel decides between ``shm`` and ``pickle``.

Segment lifecycle is owned by the driver: it creates and ultimately
unlinks every segment (:func:`destroy_segment`); workers only ever map
and unmap (:func:`attach_segment`).  Segment names carry the
:data:`SHM_NAME_PREFIX` so tests can scan ``/dev/shm`` for leaks.

Besides the monolithic flat-dictionary segment, the module packs
*sharded* dictionaries (:mod:`repro.core.sharding`) into a
multi-segment layout: one root segment (always attached) plus one
segment per leaf shard, attached and evicted on demand by the worker's
:class:`SegmentShardStore` under the broadcast budget — the partial
broadcast data plane.
"""

from __future__ import annotations

import io
import os
import pickle
import secrets
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any, Sequence

import numpy as np

from repro.core.cells import CellGeometry
from repro.core.dictionary import FlatCellDictionary
from repro.core.sharding import PartialFlatDictionary, ShardedFlatDictionary

__all__ = [
    "ARRAY_FIELDS",
    "ROOT_ARRAY_FIELDS",
    "SHARD_ARRAY_FIELDS",
    "SHM_NAME_PREFIX",
    "ShmSegmentHandle",
    "ShmArraysHandle",
    "ShardedDictionaryHandle",
    "ShardedAttachment",
    "SegmentShardStore",
    "build_partial_dictionary",
    "export_broadcast",
    "export_broadcast_parts",
    "create_segment",
    "create_sharded_segments",
    "attach_segment",
    "attach_arrays",
    "import_broadcast",
    "import_broadcast_parts",
    "destroy_segment",
]

#: The columnar arrays shipped per flat dictionary, in segment order.
ARRAY_FIELDS = (
    "cell_ids",
    "cell_counts",
    "offsets",
    "sub_coords",
    "sub_counts",
    "sub_centers",
)

#: Root arrays of a sharded dictionary, in root-segment order — matches
#: the positional signature of
#: :class:`~repro.core.sharding.PartialFlatDictionary`.
ROOT_ARRAY_FIELDS = (
    "cell_ids",
    "cell_counts",
    "offsets",
    "shard_owner",
    "local_starts",
    "shard_box_lo",
    "shard_box_hi",
)

#: Leaf arrays of one shard, in shard-segment order.
SHARD_ARRAY_FIELDS = ("sub_centers", "sub_counts")

#: Prefix of every segment name this module creates (leak scans key on it).
SHM_NAME_PREFIX = "rpdbscan_"

#: Byte alignment of each array inside the segment.
_ALIGN = 64

_PID_TAG = "rpdbscan-flat"
_PID_TAG_SHARDED = "rpdbscan-sharded"


@dataclass(frozen=True)
class ShmSegmentHandle:
    """Driver→worker descriptor of one shared-memory broadcast segment.

    Attributes
    ----------
    name:
        The OS-level segment name (``/dev/shm/<name>`` on Linux).
    size:
        Segment size in bytes.
    flats:
        Per flat dictionary: its geometry plus, for each of
        :data:`ARRAY_FIELDS`, the ``(offset, dtype, shape)`` of the
        array inside the segment.
    """

    name: str
    size: int
    flats: tuple[tuple[CellGeometry, tuple[tuple[int, str, tuple[int, ...]], ...]], ...]


@dataclass(frozen=True)
class ShmArraysHandle:
    """Descriptor of one segment holding a fixed sequence of arrays.

    Attributes
    ----------
    name:
        The OS-level segment name.
    size:
        Segment size in bytes.
    fields:
        ``(offset, dtype, shape)`` per array, in pack order.
    """

    name: str
    size: int
    fields: tuple[tuple[int, str, tuple[int, ...]], ...]

    @property
    def payload_bytes(self) -> int:
        """Unaligned sum of the packed arrays' sizes."""
        total = 0
        for _, dtype, shape in self.fields:
            total += int(np.dtype(dtype).itemsize * int(np.prod(shape, dtype=np.int64)))
        return total


@dataclass(frozen=True)
class ShardedDictionaryHandle:
    """Driver→worker descriptor of one sharded dictionary broadcast.

    The root segment is attached eagerly on install; shard segments are
    attached lazily by the worker's :class:`SegmentShardStore` under
    ``budget_bytes``.
    """

    geometry: CellGeometry
    budget_bytes: int | None
    root: ShmArraysHandle
    shards: tuple[ShmArraysHandle, ...]

    @property
    def shard_payload_bytes(self) -> int:
        """Total leaf bytes across all shard segments."""
        return sum(shard.payload_bytes for shard in self.shards)


class _ExportPickler(pickle.Pickler):
    """Pickler hoisting flat and sharded dictionaries out of the stream."""

    def __init__(self, file: io.BytesIO) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self.flats: list[FlatCellDictionary] = []
        self.sharded: list[ShardedFlatDictionary] = []
        self._seen: dict[int, tuple[str, int]] = {}

    def persistent_id(self, obj: Any):  # noqa: D102 (pickle hook)
        known = self._seen.get(id(obj))
        if known is not None:
            return known
        if isinstance(obj, FlatCellDictionary):
            pid = (_PID_TAG, len(self.flats))
            self.flats.append(obj)
        elif isinstance(obj, ShardedFlatDictionary):
            pid = (_PID_TAG_SHARDED, len(self.sharded))
            self.sharded.append(obj)
        else:
            return None
        self._seen[id(obj)] = pid
        return pid


class _ImportUnpickler(pickle.Unpickler):
    """Unpickler resolving hoisted-dictionary references to attachments."""

    def __init__(
        self,
        file: io.BytesIO,
        flats: list[FlatCellDictionary],
        partials: list[PartialFlatDictionary] | None = None,
    ) -> None:
        super().__init__(file)
        self._flats = flats
        self._partials = partials or []

    def persistent_load(self, pid: Any) -> Any:  # noqa: D102 (pickle hook)
        tag, index = pid
        if tag == _PID_TAG:
            return self._flats[index]
        if tag == _PID_TAG_SHARDED and index < len(self._partials):
            return self._partials[index]
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def export_broadcast_parts(
    value: Any,
) -> tuple[bytes, list[FlatCellDictionary], list[ShardedFlatDictionary]]:
    """Pickle ``value`` with every dictionary pulled out by reference.

    Returns ``(blob, flats, sharded)``.  With both lists empty, ``blob``
    is an ordinary pickle stream (no persistent ids), loadable by
    ``pickle.loads`` — the caller can ship it over the plain channel.
    """
    buffer = io.BytesIO()
    pickler = _ExportPickler(buffer)
    pickler.dump(value)
    return buffer.getvalue(), pickler.flats, pickler.sharded


def export_broadcast(value: Any) -> tuple[bytes, list[FlatCellDictionary]]:
    """:func:`export_broadcast_parts` for values without sharded payloads."""
    blob, flats, sharded = export_broadcast_parts(value)
    if sharded:
        raise ValueError(
            "broadcast contains a sharded dictionary; use export_broadcast_parts"
        )
    return blob, flats


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def create_segment(
    flats: list[FlatCellDictionary],
) -> tuple[ShmSegmentHandle, shared_memory.SharedMemory]:
    """Pack the arrays of ``flats`` into one new shared-memory segment.

    The caller (the engine driver) owns the returned segment and must
    eventually :func:`destroy_segment` it; the handle is what gets
    pickled to workers.
    """
    layouts = []
    offset = 0
    for flat in flats:
        fields = []
        for name in ARRAY_FIELDS:
            array = getattr(flat, name)
            offset = _aligned(offset)
            fields.append((offset, array.dtype.str, array.shape))
            offset += array.nbytes
        layouts.append((flat.geometry, tuple(fields)))
    name = f"{SHM_NAME_PREFIX}{os.getpid():x}_{secrets.token_hex(8)}"
    shm = shared_memory.SharedMemory(name=name, create=True, size=max(offset, 1))
    for flat, (_, fields) in zip(flats, layouts, strict=True):
        for field_name, (field_offset, dtype, shape) in zip(
            ARRAY_FIELDS, fields, strict=True
        ):
            array = getattr(flat, field_name)
            view = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=field_offset
            )
            view[...] = array
    handle = ShmSegmentHandle(name=shm.name, size=shm.size, flats=tuple(layouts))
    return handle, shm


#: Serializes installs/removals of the resource-tracker patch below.
_TRACKER_PATCH_LOCK = threading.Lock()
_tracker_patch_depth = 0
_tracker_original = None


@contextmanager
def _suppressed_tracker_registration():
    """Temporarily suppress shared-memory resource-tracker registration.

    Reentrant and thread-safe: the patch is installed by the first
    entering thread and removed only when the last one leaves, so
    concurrent attaches (exactly what the shard LRU cache does) can
    never restore the original out of order — the bug this guards
    against would either leak the suppression permanently or drop a
    legitimate registration racing the window.
    """
    global _tracker_patch_depth, _tracker_original
    from multiprocessing import resource_tracker

    with _TRACKER_PATCH_LOCK:
        if _tracker_patch_depth == 0:
            original = resource_tracker.register
            _tracker_original = original

            def _skip_shared_memory(name: str, rtype: str) -> None:
                if rtype != "shared_memory":
                    original(name, rtype)

            resource_tracker.register = _skip_shared_memory
        _tracker_patch_depth += 1
    try:
        yield
    finally:
        with _TRACKER_PATCH_LOCK:
            _tracker_patch_depth -= 1
            if _tracker_patch_depth == 0:
                resource_tracker.register = _tracker_original
                _tracker_original = None


def _attach_raw(name: str) -> shared_memory.SharedMemory:
    """Attach-only map of an existing segment; never unlinks.

    Python 3.13 grew ``SharedMemory(track=False)`` for exactly this
    attach-only case; on older interpreters the resource tracker would
    otherwise adopt the segment and unlink it when the *worker* exits,
    racing the driver and spamming leak warnings (bpo-39959) — so the
    fallback suppresses (rather than undoes) the registration: with
    forked workers the tracker process is shared with the driver, and an
    unregister message from a worker would evict the *driver's* claim,
    making its later unlink-time unregister a tracker-side KeyError.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    with _suppressed_tracker_registration():
        return shared_memory.SharedMemory(name=name)


def attach_segment(handle: ShmSegmentHandle) -> shared_memory.SharedMemory:
    """Worker-side attach of a flat-dictionary segment."""
    return _attach_raw(handle.name)


def pack_arrays(
    arrays: Sequence[np.ndarray],
) -> tuple[ShmArraysHandle, shared_memory.SharedMemory]:
    """Pack an array sequence into one new shared-memory segment.

    The caller owns the returned segment (:func:`destroy_segment`); the
    handle is what crosses the process boundary.
    """
    fields = []
    offset = 0
    for array in arrays:
        offset = _aligned(offset)
        fields.append((offset, array.dtype.str, array.shape))
        offset += array.nbytes
    name = f"{SHM_NAME_PREFIX}{os.getpid():x}_{secrets.token_hex(8)}"
    shm = shared_memory.SharedMemory(name=name, create=True, size=max(offset, 1))
    for array, (field_offset, dtype, shape) in zip(arrays, fields, strict=True):
        view = np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=field_offset
        )
        view[...] = array
    handle = ShmArraysHandle(name=shm.name, size=shm.size, fields=tuple(fields))
    return handle, shm


def attach_arrays(
    handle: ShmArraysHandle,
) -> tuple[list[np.ndarray], shared_memory.SharedMemory]:
    """Worker-side attach returning read-only views of the packed arrays."""
    shm = _attach_raw(handle.name)
    views = []
    for offset, dtype, shape in handle.fields:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset)
        view.flags.writeable = False
        views.append(view)
    return views, shm


def import_broadcast(
    blob: bytes, handle: ShmSegmentHandle, shm: shared_memory.SharedMemory
) -> Any:
    """Rebuild the broadcast value around zero-copy views of ``shm``.

    The reconstructed flat dictionaries alias the segment's memory with
    ``writeable=False`` views — the broadcast contract is read-only, and
    a stray write would otherwise silently corrupt every sibling worker.
    """
    flats = []
    for geometry, fields in handle.flats:
        arrays = []
        for offset, dtype, shape in fields:
            view = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset
            )
            view.flags.writeable = False
            arrays.append(view)
        flats.append(FlatCellDictionary(geometry, *arrays, validate=False))
    return _ImportUnpickler(io.BytesIO(blob), flats).load()


def create_sharded_segments(
    sharded: ShardedFlatDictionary,
) -> tuple[ShardedDictionaryHandle, list[shared_memory.SharedMemory]]:
    """Pack a sharded dictionary into a root segment + one per shard.

    All-or-nothing: if any segment creation fails partway, every
    already-created segment is destroyed before the error propagates —
    the driver can never leak half a broadcast.
    """
    created: list[shared_memory.SharedMemory] = []
    try:
        root_arrays = sharded.export_root_arrays()
        root_handle, root_shm = pack_arrays(
            [root_arrays[name] for name in ROOT_ARRAY_FIELDS]
        )
        created.append(root_shm)
        shard_handles = []
        for centers, counts in sharded.export_shard_blocks():
            shard_handle, shard_shm = pack_arrays([centers, counts])
            created.append(shard_shm)
            shard_handles.append(shard_handle)
    except BaseException:
        for shm in created:
            destroy_segment(shm)
        raise
    handle = ShardedDictionaryHandle(
        geometry=sharded.geometry,
        budget_bytes=sharded.budget_bytes,
        root=root_handle,
        shards=tuple(shard_handles),
    )
    return handle, created


class SegmentShardStore:
    """Worker-side :class:`~repro.core.sharding.ShardStore` over per-shard
    segments: attach on :meth:`load`, unmap on :meth:`release`.

    The owning :class:`PartialFlatDictionary` drives the LRU policy;
    this store only maps and unmaps — it never unlinks.
    """

    def __init__(self, handles: Sequence[ShmArraysHandle]) -> None:
        self._handles = tuple(handles)
        self._shms: dict[int, shared_memory.SharedMemory] = {}

    @property
    def num_shards(self) -> int:
        return len(self._handles)

    def nbytes(self, index: int) -> int:
        return self._handles[index].payload_bytes

    def load(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        views, shm = attach_arrays(self._handles[index])
        self._shms[index] = shm
        centers, counts = views
        return centers, counts

    def release(self, index: int) -> None:
        shm = self._shms.pop(index, None)
        if shm is not None:
            try:
                shm.close()
            except Exception:
                pass


@dataclass
class ShardedAttachment:
    """A worker's live attachment to one sharded-dictionary broadcast."""

    partial: PartialFlatDictionary
    root_shm: shared_memory.SharedMemory
    store: SegmentShardStore

    def close(self) -> None:
        """Release shard attachments, then unmap the root segment."""
        self.partial.close()
        try:
            self.root_shm.close()
        except Exception:
            pass


def build_partial_dictionary(handle: ShardedDictionaryHandle) -> ShardedAttachment:
    """Worker-side reconstruction of one sharded dictionary broadcast."""
    views, root_shm = attach_arrays(handle.root)
    store = SegmentShardStore(handle.shards)
    partial = PartialFlatDictionary(
        handle.geometry, *views, store, budget_bytes=handle.budget_bytes
    )
    return ShardedAttachment(partial=partial, root_shm=root_shm, store=store)


def import_broadcast_parts(
    blob: bytes,
    flat_handle: ShmSegmentHandle | None,
    flat_shm: shared_memory.SharedMemory | None,
    sharded_handles: Sequence[ShardedDictionaryHandle],
) -> tuple[Any, list[ShardedAttachment]]:
    """Rebuild a broadcast that may carry flat and/or sharded payloads.

    Returns the value plus the sharded attachments the caller must close
    when the broadcast epoch ends (the flat segment stays the caller's
    responsibility, as with :func:`import_broadcast`).
    """
    flats = []
    if flat_handle is not None and flat_shm is not None:
        for geometry, fields in flat_handle.flats:
            arrays = []
            for offset, dtype, shape in fields:
                view = np.ndarray(
                    shape, dtype=np.dtype(dtype), buffer=flat_shm.buf, offset=offset
                )
                view.flags.writeable = False
                arrays.append(view)
            flats.append(FlatCellDictionary(geometry, *arrays, validate=False))
    attachments = [build_partial_dictionary(handle) for handle in sharded_handles]
    partials = [attachment.partial for attachment in attachments]
    value = _ImportUnpickler(io.BytesIO(blob), flats, partials).load()
    return value, attachments


def destroy_segment(shm: shared_memory.SharedMemory) -> None:
    """Driver-side unmap + unlink; safe to call on a half-dead segment."""
    try:
        shm.close()
    except Exception:
        pass
    try:
        shm.unlink()
    except Exception:
        pass
