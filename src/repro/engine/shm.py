"""Zero-copy broadcast of columnar dictionaries via shared memory.

The flat cell dictionary is six contiguous numpy arrays; pickling it
copies every byte into the pipe of every worker.  This module instead
packs those arrays once into one ``multiprocessing.shared_memory``
segment and pickles only a small :class:`ShmSegmentHandle` descriptor —
workers attach the segment and rebuild read-only array views over it,
so the dictionary crosses the process boundary exactly once regardless
of the worker count.

The mechanism is transparent to the broadcast *value*: a custom pickler
(:func:`export_broadcast`) walks the object graph and swaps every
:class:`~repro.core.dictionary.FlatCellDictionary` it meets — no matter
how deeply nested inside ``QueryContext``/``LabelingContext``/tuples —
for a persistent-id reference into the segment; the worker-side
unpickler (:func:`import_broadcast`) resolves those references to the
attached views.  A broadcast containing no flat dictionary exports to a
plain pickle stream (loadable with ``pickle.loads``), which is how the
engine's ``auto`` channel decides between ``shm`` and ``pickle``.

Segment lifecycle is owned by the driver: it creates and ultimately
unlinks every segment (:func:`destroy_segment`); workers only ever map
and unmap (:func:`attach_segment`).  Segment names carry the
:data:`SHM_NAME_PREFIX` so tests can scan ``/dev/shm`` for leaks.
"""

from __future__ import annotations

import io
import os
import pickle
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Any

import numpy as np

from repro.core.cells import CellGeometry
from repro.core.dictionary import FlatCellDictionary

__all__ = [
    "ARRAY_FIELDS",
    "SHM_NAME_PREFIX",
    "ShmSegmentHandle",
    "export_broadcast",
    "create_segment",
    "attach_segment",
    "import_broadcast",
    "destroy_segment",
]

#: The columnar arrays shipped per flat dictionary, in segment order.
ARRAY_FIELDS = (
    "cell_ids",
    "cell_counts",
    "offsets",
    "sub_coords",
    "sub_counts",
    "sub_centers",
)

#: Prefix of every segment name this module creates (leak scans key on it).
SHM_NAME_PREFIX = "rpdbscan_"

#: Byte alignment of each array inside the segment.
_ALIGN = 64

_PID_TAG = "rpdbscan-flat"


@dataclass(frozen=True)
class ShmSegmentHandle:
    """Driver→worker descriptor of one shared-memory broadcast segment.

    Attributes
    ----------
    name:
        The OS-level segment name (``/dev/shm/<name>`` on Linux).
    size:
        Segment size in bytes.
    flats:
        Per flat dictionary: its geometry plus, for each of
        :data:`ARRAY_FIELDS`, the ``(offset, dtype, shape)`` of the
        array inside the segment.
    """

    name: str
    size: int
    flats: tuple[tuple[CellGeometry, tuple[tuple[int, str, tuple[int, ...]], ...]], ...]


class _ExportPickler(pickle.Pickler):
    """Pickler that hoists every flat dictionary out of the stream."""

    def __init__(self, file: io.BytesIO) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self.flats: list[FlatCellDictionary] = []
        self._seen: dict[int, int] = {}

    def persistent_id(self, obj: Any):  # noqa: D102 (pickle hook)
        if isinstance(obj, FlatCellDictionary):
            index = self._seen.get(id(obj))
            if index is None:
                index = len(self.flats)
                self._seen[id(obj)] = index
                self.flats.append(obj)
            return (_PID_TAG, index)
        return None


class _ImportUnpickler(pickle.Unpickler):
    """Unpickler resolving flat-dictionary references to attached views."""

    def __init__(self, file: io.BytesIO, flats: list[FlatCellDictionary]) -> None:
        super().__init__(file)
        self._flats = flats

    def persistent_load(self, pid: Any) -> Any:  # noqa: D102 (pickle hook)
        tag, index = pid
        if tag != _PID_TAG:
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
        return self._flats[index]


def export_broadcast(value: Any) -> tuple[bytes, list[FlatCellDictionary]]:
    """Pickle ``value`` with every flat dictionary pulled out by reference.

    Returns ``(blob, flats)``.  With ``flats`` empty, ``blob`` is an
    ordinary pickle stream (no persistent ids), loadable by
    ``pickle.loads`` — the caller can ship it over the plain channel.
    """
    buffer = io.BytesIO()
    pickler = _ExportPickler(buffer)
    pickler.dump(value)
    return buffer.getvalue(), pickler.flats


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def create_segment(
    flats: list[FlatCellDictionary],
) -> tuple[ShmSegmentHandle, shared_memory.SharedMemory]:
    """Pack the arrays of ``flats`` into one new shared-memory segment.

    The caller (the engine driver) owns the returned segment and must
    eventually :func:`destroy_segment` it; the handle is what gets
    pickled to workers.
    """
    layouts = []
    offset = 0
    for flat in flats:
        fields = []
        for name in ARRAY_FIELDS:
            array = getattr(flat, name)
            offset = _aligned(offset)
            fields.append((offset, array.dtype.str, array.shape))
            offset += array.nbytes
        layouts.append((flat.geometry, tuple(fields)))
    name = f"{SHM_NAME_PREFIX}{os.getpid():x}_{secrets.token_hex(8)}"
    shm = shared_memory.SharedMemory(name=name, create=True, size=max(offset, 1))
    for flat, (_, fields) in zip(flats, layouts, strict=True):
        for field_name, (field_offset, dtype, shape) in zip(
            ARRAY_FIELDS, fields, strict=True
        ):
            array = getattr(flat, field_name)
            view = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=field_offset
            )
            view[...] = array
    handle = ShmSegmentHandle(name=shm.name, size=shm.size, flats=tuple(layouts))
    return handle, shm


def attach_segment(handle: ShmSegmentHandle) -> shared_memory.SharedMemory:
    """Worker-side attach; never unlinks, only maps.

    Python 3.13 grew ``SharedMemory(track=False)`` for exactly this
    attach-only case; on older interpreters the resource tracker would
    otherwise adopt the segment and unlink it when the *worker* exits,
    racing the driver and spamming leak warnings (bpo-39959) — so the
    fallback manually unregisters the attachment.
    """
    try:
        return shared_memory.SharedMemory(name=handle.name, track=False)
    except TypeError:
        pass
    # Suppress (rather than undo) the tracker registration: with forked
    # workers the tracker process is shared with the driver, and an
    # unregister message from a worker would evict the *driver's* claim,
    # making its later unlink-time unregister a tracker-side KeyError.
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _skip_shared_memory(name: str, rtype: str) -> None:
        if rtype != "shared_memory":
            original(name, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return shared_memory.SharedMemory(name=handle.name)
    finally:
        resource_tracker.register = original


def import_broadcast(
    blob: bytes, handle: ShmSegmentHandle, shm: shared_memory.SharedMemory
) -> Any:
    """Rebuild the broadcast value around zero-copy views of ``shm``.

    The reconstructed flat dictionaries alias the segment's memory with
    ``writeable=False`` views — the broadcast contract is read-only, and
    a stray write would otherwise silently corrupt every sibling worker.
    """
    flats = []
    for geometry, fields in handle.flats:
        arrays = []
        for offset, dtype, shape in fields:
            view = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=shm.buf, offset=offset
            )
            view.flags.writeable = False
            arrays.append(view)
        flats.append(FlatCellDictionary(geometry, *arrays, validate=False))
    return _ImportUnpickler(io.BytesIO(blob), flats).load()


def destroy_segment(shm: shared_memory.SharedMemory) -> None:
    """Driver-side unmap + unlink; safe to call on a half-dead segment."""
    try:
        shm.close()
    except Exception:
        pass
    try:
        shm.unlink()
    except Exception:
        pass
