"""Per-task and per-phase counters — the Spark-counter equivalent.

The paper's efficiency metrics all come "from the Spark counter"
(Sec 7.1.5): elapsed time per job, per-task times for load imbalance
(Fig 13), numbers of processed points for duplication (Fig 14), and the
phase breakdown (Figs 12 and 21).  :class:`Counters` collects exactly
those measurements from the engine.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["TaskStats", "Counters"]


@dataclass(frozen=True)
class TaskStats:
    """Measurements for one executed task.

    Attributes
    ----------
    task_id:
        Index of the task within its phase.
    wall_time_s:
        Wall-clock seconds the task body took.
    items:
        Number of data items (points, cells, edges...) the task
        processed; used for the duplication metric.
    """

    task_id: int
    wall_time_s: float
    items: int = 0


@dataclass
class Counters:
    """Accumulates task stats and phase timings for one algorithm run."""

    phase_tasks: dict[str, list[TaskStats]] = field(default_factory=dict)
    phase_seconds: dict[str, float] = field(default_factory=dict)

    def record_task(self, phase: str, stats: TaskStats) -> None:
        """Append one task's stats under ``phase``."""
        self.phase_tasks.setdefault(phase, []).append(stats)

    def add_phase_time(self, phase: str, seconds: float) -> None:
        """Accumulate ``seconds`` of elapsed time under ``phase``."""
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds

    @contextmanager
    def timed_phase(self, phase: str):
        """Context manager timing a whole phase's wall-clock duration."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_phase_time(phase, time.perf_counter() - start)

    def total_seconds(self) -> float:
        """Sum of all phase durations."""
        return sum(self.phase_seconds.values())

    def task_times(self, phase: str) -> list[float]:
        """Per-task wall times recorded under ``phase``."""
        return [t.wall_time_s for t in self.phase_tasks.get(phase, [])]

    def load_imbalance(self, phase: str) -> float:
        """Slowest-task / fastest-task ratio for ``phase`` (Fig 13).

        Returns 1.0 when the phase ran fewer than two tasks.  A tiny
        epsilon guards against zero-duration fast tasks on coarse clocks.
        """
        times = self.task_times(phase)
        if len(times) < 2:
            return 1.0
        fastest = max(min(times), 1e-9)
        return max(times) / fastest

    def items_processed(self, phase: str) -> int:
        """Total items processed across tasks of ``phase`` (Fig 14)."""
        return sum(t.items for t in self.phase_tasks.get(phase, []))

    def breakdown(self) -> dict[str, float]:
        """Phase → fraction of total elapsed time (Figs 12 and 21)."""
        total = self.total_seconds()
        if total <= 0:
            return {phase: 0.0 for phase in self.phase_seconds}
        return {phase: sec / total for phase, sec in self.phase_seconds.items()}
