"""Per-task and per-phase counters — the Spark-counter equivalent.

The paper's efficiency metrics all come "from the Spark counter"
(Sec 7.1.5): elapsed time per job, per-task times for load imbalance
(Fig 13), numbers of processed points for duplication (Fig 14), and the
phase breakdown (Figs 12 and 21).  :class:`Counters` collects exactly
those measurements from the engine.

Two accounting rules keep the figures honest:

* **Setup vs. compute.**  Engine overhead — worker-pool startup,
  broadcast shipping, and per-worker warm-up — is recorded under a
  dedicated setup bucket (:attr:`Counters.setup_seconds`), *not* under
  any algorithm phase.  :meth:`Counters.breakdown` and
  :meth:`Counters.total_seconds` cover phases only, so Fig 12/21
  fractions measure clustering work; :meth:`Counters.grand_total_seconds`
  adds the setup bucket back for end-to-end wall time.
* **Per-fit snapshots.**  A long-lived engine accumulates counters over
  its whole lifetime.  :meth:`Counters.mark` and :meth:`Counters.since`
  carve out the delta belonging to a single run so repeated ``fit()``
  calls report independent timings.
* **Fault events.**  Recovery events of the fault-tolerant executor —
  retries, task timeouts, pool re-spawns, speculative duplicates — are
  *counts*, kept in :attr:`Counters.fault_events`.  Like the setup
  bucket they never enter :meth:`Counters.breakdown` or
  :meth:`Counters.total_seconds`: a chaos run reports the same phase
  fractions as a calm one, plus an event ledger on the side.

Since the observability subsystem landed, :class:`Counters` is a
**compatibility shim** over a
:class:`~repro.obs.metrics.MetricsRegistry`: every write to the legacy
dict buckets is mirrored into :attr:`Counters.registry` under stable
metric names (``phase_seconds.<p>``, ``setup_seconds.<c>``,
``fault_events.<k>``, ``items.<p>`` counters and a
``task_seconds.<p>`` histogram per phase).  Existing consumers keep
reading the dicts and see identical values; new tooling reads the
registry.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry

__all__ = ["TaskStats", "Counters", "CountersMark", "DRIVER_WORKER"]

#: Worker label used for tasks executed inline on the driver (serial
#: mode, or degenerate single-task phases in process mode).
DRIVER_WORKER = "driver"


@dataclass(frozen=True)
class TaskStats:
    """Measurements for one executed task.

    Attributes
    ----------
    task_id:
        Index of the task within its phase.
    wall_time_s:
        Wall-clock seconds the task body took.
    items:
        Number of data items (points, cells, edges...) the task
        processed; used for the duplication metric.
    worker:
        Identity of the executor that ran the task — a worker PID in
        process mode, :data:`DRIVER_WORKER` when run inline.  Lets load
        imbalance be compared across engine modes (Fig 13).
    """

    task_id: int
    wall_time_s: float
    items: int = 0
    worker: int | str | None = None


@dataclass(frozen=True)
class CountersMark:
    """An opaque snapshot of a :class:`Counters`' progress (see
    :meth:`Counters.mark` / :meth:`Counters.since`)."""

    task_counts: dict[str, int]
    phase_seconds: dict[str, float]
    setup_seconds: dict[str, float]
    fault_events: dict[str, int] = field(default_factory=dict)
    broadcast_bytes: dict[str, int] = field(default_factory=dict)
    merge_rounds: int = 0


@dataclass
class Counters:
    """Accumulates task stats and phase timings for one algorithm run."""

    phase_tasks: dict[str, list[TaskStats]] = field(default_factory=dict)
    phase_seconds: dict[str, float] = field(default_factory=dict)
    #: Engine overhead by category (``"pool_startup"``,
    #: ``"broadcast_ship"``, ``"warmup"``) — the ``engine.setup`` bucket,
    #: excluded from :meth:`breakdown` and :meth:`total_seconds`.
    setup_seconds: dict[str, float] = field(default_factory=dict)
    #: Fault-recovery event counts by kind (``"retries"``,
    #: ``"timeouts"``, ``"respawns"``, ``"speculations"``) — the
    #: ``engine.retries``/``engine.timeouts``/``engine.respawns``
    #: buckets.  Counts, not seconds; excluded from every timing view.
    fault_events: dict[str, int] = field(default_factory=dict)
    #: Broadcast payload bytes by channel (``"pickle"``, ``"shm"``, plus
    #: ``"shm_segment"`` for the shared-memory segment the ``shm``
    #: channel maps instead of copying).  Serialized-bytes accounting of
    #: the engine's broadcast fan-outs; no timing semantics.
    broadcast_bytes: dict[str, int] = field(default_factory=dict)
    #: Phase III-1 merge-round ledger: one dict per tournament round
    #: (``resolved``, ``removed``, ``bytes_shipped``, ``wall_s``),
    #: recorded by :func:`~repro.core.merging.progressive_merge` in both
    #: driver and engine modes (``bytes_shipped`` is 0 on the driver).
    #: Like the fault ledger these rows never enter :meth:`breakdown` —
    #: round wall time already lands in the Phase III-1 bucket.
    merge_rounds: list[dict] = field(default_factory=list)
    #: The metrics registry this shim mirrors into (see the module
    #: docstring for the bucket → metric name mapping).
    registry: MetricsRegistry = field(default_factory=MetricsRegistry, repr=False)

    def record_task(self, phase: str, stats: TaskStats) -> None:
        """Append one task's stats under ``phase``."""
        self.phase_tasks.setdefault(phase, []).append(stats)
        self.registry.counter(f"items.{phase}").inc(stats.items)
        self.registry.histogram(f"task_seconds.{phase}").observe(stats.wall_time_s)

    def add_phase_time(self, phase: str, seconds: float) -> None:
        """Accumulate ``seconds`` of elapsed time under ``phase``."""
        self.phase_seconds[phase] = self.phase_seconds.get(phase, 0.0) + seconds
        self.registry.counter(f"phase_seconds.{phase}").inc(max(seconds, 0.0))

    def add_setup_time(self, category: str, seconds: float) -> None:
        """Accumulate engine-setup ``seconds`` under ``category``."""
        self.setup_seconds[category] = (
            self.setup_seconds.get(category, 0.0) + seconds
        )
        self.registry.counter(f"setup_seconds.{category}").inc(max(seconds, 0.0))

    def add_fault_event(self, kind: str, count: int = 1) -> None:
        """Count ``count`` fault-recovery events of ``kind``."""
        self.fault_events[kind] = self.fault_events.get(kind, 0) + count
        self.registry.counter(f"fault_events.{kind}").inc(count)

    def add_broadcast_bytes(self, channel: str, nbytes: int) -> None:
        """Account ``nbytes`` of broadcast payload under ``channel``."""
        self.broadcast_bytes[channel] = self.broadcast_bytes.get(channel, 0) + nbytes
        self.registry.counter(f"broadcast_bytes.{channel}").inc(nbytes)

    def broadcast_total_bytes(self) -> int:
        """Total broadcast bytes across every channel."""
        return sum(self.broadcast_bytes.values())

    def add_merge_round(
        self, *, resolved: int, removed: int, bytes_shipped: int, wall_s: float
    ) -> None:
        """Record one Phase III-1 tournament round in the merge ledger."""
        self.merge_rounds.append(
            {
                "resolved": resolved,
                "removed": removed,
                "bytes_shipped": bytes_shipped,
                "wall_s": wall_s,
            }
        )
        self.registry.counter("merge.rounds").inc(1)
        self.registry.counter("merge.edges_resolved").inc(resolved)
        self.registry.counter("merge.edges_removed").inc(removed)
        self.registry.counter("merge.bytes_shipped").inc(bytes_shipped)

    def fault_event_count(self, kind: str) -> int:
        """Number of fault-recovery events recorded under ``kind``."""
        return self.fault_events.get(kind, 0)

    def fault_total(self) -> int:
        """Total fault-recovery events of every kind."""
        return sum(self.fault_events.values())

    @contextmanager
    def timed_phase(self, phase: str):
        """Context manager timing a whole phase's wall-clock duration."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_phase_time(phase, time.perf_counter() - start)

    @contextmanager
    def timed_setup(self, category: str):
        """Context manager timing one engine-setup step."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_setup_time(category, time.perf_counter() - start)

    def total_seconds(self) -> float:
        """Sum of all phase durations (setup bucket excluded)."""
        return sum(self.phase_seconds.values())

    def setup_total(self) -> float:
        """Total engine-setup seconds (the ``engine.setup`` bucket)."""
        return sum(self.setup_seconds.values())

    def grand_total_seconds(self) -> float:
        """Phases plus setup: end-to-end engine wall time."""
        return self.total_seconds() + self.setup_total()

    def task_times(self, phase: str) -> list[float]:
        """Per-task wall times recorded under ``phase``."""
        return [t.wall_time_s for t in self.phase_tasks.get(phase, [])]

    def load_imbalance(self, phase: str) -> float:
        """Slowest-task / fastest-task ratio for ``phase`` (Fig 13).

        Returns 1.0 when the phase ran fewer than two tasks.  A tiny
        epsilon guards against zero-duration fast tasks on coarse clocks.
        """
        times = self.task_times(phase)
        if len(times) < 2:
            return 1.0
        fastest = max(min(times), 1e-9)
        return max(times) / fastest

    def worker_times(self, phase: str) -> dict[int | str, float]:
        """Total busy seconds per worker for ``phase``.

        Tasks recorded without a worker identity are attributed to
        :data:`DRIVER_WORKER`.
        """
        totals: dict[int | str, float] = {}
        for stats in self.phase_tasks.get(phase, []):
            worker = stats.worker if stats.worker is not None else DRIVER_WORKER
            totals[worker] = totals.get(worker, 0.0) + stats.wall_time_s
        return totals

    def worker_imbalance(self, phase: str) -> float:
        """Busiest-worker / idlest-worker ratio for ``phase``.

        The per-*worker* companion to :meth:`load_imbalance`: with a
        persistent pool the same metric is meaningful in both serial
        mode (one driver "worker", ratio 1.0) and process mode.
        """
        totals = list(self.worker_times(phase).values())
        if len(totals) < 2:
            return 1.0
        idlest = max(min(totals), 1e-9)
        return max(totals) / idlest

    def items_processed(self, phase: str) -> int:
        """Total items processed across tasks of ``phase`` (Fig 14)."""
        return sum(t.items for t in self.phase_tasks.get(phase, []))

    def breakdown(self) -> dict[str, float]:
        """Phase → fraction of total elapsed time (Figs 12 and 21).

        Fractions are over phase time only; the ``engine.setup`` bucket
        is deliberately excluded (see the module docstring).
        """
        total = self.total_seconds()
        if total <= 0:
            return {phase: 0.0 for phase in self.phase_seconds}
        return {phase: sec / total for phase, sec in self.phase_seconds.items()}

    # ------------------------------------------------------------------
    # Per-run snapshots
    # ------------------------------------------------------------------

    def mark(self) -> CountersMark:
        """Snapshot current progress; pass to :meth:`since` later."""
        return CountersMark(
            task_counts={p: len(ts) for p, ts in self.phase_tasks.items()},
            phase_seconds=dict(self.phase_seconds),
            setup_seconds=dict(self.setup_seconds),
            fault_events=dict(self.fault_events),
            broadcast_bytes=dict(self.broadcast_bytes),
            merge_rounds=len(self.merge_rounds),
        )

    def since(self, mark: CountersMark) -> Counters:
        """A new :class:`Counters` holding only what happened after
        ``mark`` was taken.

        This is how one ``fit()`` on a shared, long-lived engine reports
        its own timings: accumulation continues in ``self``, while the
        returned delta belongs to the single run.
        """
        # Built through the mutator methods so the delta's registry
        # mirror stays consistent with its legacy dict views.
        delta = Counters()
        for phase, tasks in self.phase_tasks.items():
            for stats in tasks[mark.task_counts.get(phase, 0):]:
                delta.record_task(phase, stats)
        for phase, seconds in self.phase_seconds.items():
            diff = seconds - mark.phase_seconds.get(phase, 0.0)
            if diff > 0.0:
                delta.add_phase_time(phase, diff)
        for category, seconds in self.setup_seconds.items():
            diff = seconds - mark.setup_seconds.get(category, 0.0)
            if diff > 0.0:
                delta.add_setup_time(category, diff)
        for kind, count in self.fault_events.items():
            diff = count - mark.fault_events.get(kind, 0)
            if diff > 0:
                delta.add_fault_event(kind, diff)
        for channel, nbytes in self.broadcast_bytes.items():
            diff = nbytes - mark.broadcast_bytes.get(channel, 0)
            if diff > 0:
                delta.add_broadcast_bytes(channel, diff)
        for row in self.merge_rounds[mark.merge_rounds:]:
            delta.add_merge_round(**row)
        return delta
