"""Cluster simulation: replay measured task durations on virtual workers.

The paper's scalability experiments (Fig 15: 5-40 cores; Fig 20: data
size) need a cluster.  We substitute a deterministic scheduler: given the
wall-clock duration of every task of a phase (measured by the engine),
compute the *makespan* a ``w``-worker cluster would achieve.  Because all
parallel DBSCAN phases in this repo are embarrassingly parallel between
partitions — exactly as on Spark — the makespan model captures the same
effect the paper measures: more workers help until the slowest single
task dominates, which is precisely why load balance matters.

Two scheduling policies are provided:

* ``"arrival"`` — greedy list scheduling in task order onto the earliest
  available worker.  This matches Spark's default task dispatch.
* ``"lpt"`` — Longest Processing Time first; the classic 4/3-approximation
  used as an optimistic bound.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

__all__ = ["makespan", "speedup_curve", "PhaseSchedule"]


def makespan(durations: Sequence[float], num_workers: int, policy: str = "arrival") -> float:
    """Elapsed time of running ``durations`` on ``num_workers`` workers.

    Parameters
    ----------
    durations:
        Per-task wall-clock durations (seconds).
    num_workers:
        Number of parallel workers (``>= 1``).
    policy:
        ``"arrival"`` (in given order) or ``"lpt"`` (longest first).

    Returns
    -------
    float
        The simulated makespan in seconds.
    """
    if num_workers < 1:
        raise ValueError("num_workers must be >= 1")
    if any(d < 0 for d in durations):
        raise ValueError("task durations must be non-negative")
    tasks = list(durations)
    if not tasks:
        return 0.0
    if policy == "lpt":
        tasks.sort(reverse=True)
    elif policy != "arrival":
        raise ValueError(f"unknown scheduling policy {policy!r}")
    # Min-heap of worker finish times.
    heap = [0.0] * min(num_workers, len(tasks))
    heapq.heapify(heap)
    for duration in tasks:
        earliest = heapq.heappop(heap)
        heapq.heappush(heap, earliest + duration)
    return max(heap)


def speedup_curve(
    durations: "Sequence[float] | PhaseSchedule",
    worker_counts: Sequence[int],
    *,
    baseline_workers: int | None = None,
    serial_overhead_s: float = 0.0,
    policy: str = "arrival",
) -> dict[int, float]:
    """Speed-up over the smallest worker count, as in Fig 15.

    The paper defines speed-up as "the ratio of the elapsed time with only
    five cores to that with > 5 cores".  ``serial_overhead_s`` models the
    non-parallel portion of the run (driver-side work such as the final
    merge and broadcast), which bounds the achievable speed-up exactly as
    Amdahl's law does on the real cluster.

    ``durations`` may also be a :class:`PhaseSchedule` — typically one
    built from a recorded span trace via
    :meth:`PhaseSchedule.from_trace` — in which case the schedule's own
    per-phase model is replayed (``serial_overhead_s`` must then be 0;
    the schedule already carries the driver-side work).

    Returns a dict mapping each worker count to its speed-up.
    """
    if not worker_counts:
        return {}
    if isinstance(durations, PhaseSchedule):
        if serial_overhead_s:
            raise ValueError(
                "serial_overhead_s is not applicable to a PhaseSchedule; "
                "add it with add_constant() instead"
            )
        return durations.speedups(
            worker_counts, baseline_workers=baseline_workers, policy=policy
        )
    base = baseline_workers if baseline_workers is not None else min(worker_counts)
    base_time = makespan(durations, base, policy) + serial_overhead_s
    out: dict[int, float] = {}
    for w in worker_counts:
        elapsed = makespan(durations, w, policy) + serial_overhead_s
        out[w] = base_time / elapsed if elapsed > 0 else float("inf")
    return out


class PhaseSchedule:
    """A whole algorithm run as a sequence of schedulable phases.

    Each phase is one of:

    * ``parallel`` — a list of measured task durations, scheduled onto
      the workers (greedy makespan);
    * ``divisible`` — driver work that splits perfectly (``t / w``),
      e.g. a shuffle;
    * ``constant`` — work whose duration is independent of the worker
      count: genuinely serial driver code, a broadcast that every
      executor loads concurrently, or a tournament's critical path.

    ``elapsed(w)`` sums the phases for ``w`` workers; ``speedups``
    reproduces the paper's Fig-15-style curves from one measured run.
    """

    def __init__(self) -> None:
        self._phases: list[tuple[str, object]] = []

    @classmethod
    def from_trace(
        cls, spans: Sequence["object"], *, include_setup: bool = False
    ) -> "PhaseSchedule":
        """Build a schedule from a recorded span trace.

        Each ``phase`` span becomes a ``parallel`` phase replaying the
        measured per-task compute times of its winning attempts (queue
        time and lost attempts excluded — a bigger virtual cluster
        would not have waited for them); each ``driver`` span becomes a
        ``constant`` phase.  Engine ``setup`` spans (pool startup,
        broadcast shipping, warm-up) are excluded by default, matching
        the engine's own phase-breakdown accounting; pass
        ``include_setup=True`` to model them as constant work.

        ``spans`` is any sequence of :class:`repro.obs.spans.Span`, e.g.
        a live ``Tracer().spans`` or a ``--trace`` file re-read through
        :func:`repro.obs.exporters.read_spans_jsonl`.  This is the
        measured-run → virtual-cluster bridge for Figs 15/20.
        """
        from repro.obs.report import phase_task_durations

        by_phase = phase_task_durations(list(spans))
        schedule = cls()
        for span in spans:
            if span.kind == "driver":
                schedule.add_constant(span.duration_s)
            elif span.kind == "phase":
                # pop() so a reused phase name cannot double-count tasks
                times = by_phase.pop(span.phase or span.name, None)
                if times:
                    schedule.add_parallel(times)
                else:
                    schedule.add_constant(span.duration_s)
            elif include_setup and span.kind == "setup":
                schedule.add_constant(span.duration_s)
        return schedule

    def add_parallel(self, task_seconds: Sequence[float]) -> "PhaseSchedule":
        """Append a phase of independent tasks."""
        self._phases.append(("parallel", list(task_seconds)))
        return self

    def add_divisible(self, seconds: float) -> "PhaseSchedule":
        """Append perfectly divisible work (``seconds / w``)."""
        self._phases.append(("divisible", float(seconds)))
        return self

    def add_constant(self, seconds: float) -> "PhaseSchedule":
        """Append work independent of the worker count."""
        self._phases.append(("constant", float(seconds)))
        return self

    def elapsed(self, num_workers: int, policy: str = "arrival") -> float:
        """Simulated total elapsed time on ``num_workers`` workers."""
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        total = 0.0
        for kind, payload in self._phases:
            if kind == "parallel":
                total += makespan(payload, num_workers, policy)
            elif kind == "divisible":
                total += payload / num_workers
            else:
                total += payload
        return total

    def speedups(
        self,
        worker_counts: Sequence[int],
        *,
        baseline_workers: int | None = None,
        policy: str = "arrival",
    ) -> dict[int, float]:
        """Speed-up of each worker count over the smallest (paper Fig 15)."""
        if not worker_counts:
            return {}
        base = baseline_workers if baseline_workers is not None else min(worker_counts)
        base_time = self.elapsed(base, policy)
        return {
            w: (base_time / t if (t := self.elapsed(w, policy)) > 0 else float("inf"))
            for w in worker_counts
        }
