"""Task executors: serial (deterministic) and a persistent process pool.

The engine exposes one operation, :meth:`Engine.map_tasks`: apply a
function to every task of a phase, with an optional broadcast value
shared by all tasks, and record a :class:`~repro.engine.counters.TaskStats`
per task.  This mirrors the Spark usage in the paper — ``mapPartitions``
over pseudo random partitions with the broadcast two-level cell
dictionary.

Process-mode semantics (matching Spark's executor model):

* **One pool per engine lifetime.**  The worker pool is created lazily
  on the first parallel ``map_tasks`` call and then reused by every
  subsequent phase and every subsequent ``fit()`` that shares the
  engine.  Use the engine as a context manager (``with Engine("process")
  as e: ...``) or call :meth:`Engine.close` to release the workers;
  ``close()`` is idempotent and permanent — mapping on a closed engine
  fails with :class:`~repro.engine.faults.EngineClosedError` instead of
  silently resurrecting workers.
* **Epoch-tagged broadcast caching.**  Each distinct broadcast value is
  shipped to each worker exactly once, via a barrier fan-out that lands
  one install task on every worker.  An epoch counter tags the installed
  value; re-mapping with the *same* broadcast object ships nothing,
  while a new broadcast bumps the epoch and invalidates the per-worker
  module-level cache.  Every task carries its expected epoch, so a stale
  cache raises instead of silently computing with old data.
* **Warm-up hook.**  ``map_tasks(..., warmup=fn)`` runs ``fn(broadcast)``
  once per worker during broadcast installation (once on the driver in
  serial mode).  Phase II uses this to build the region-query engine
  (kd-tree, center caches) *before* the first task, so first-task
  timings measure clustering, not index construction.
* **Setup vs. compute accounting.**  Pool startup, broadcast shipping,
  and warm-up are recorded in the counters' ``engine.setup`` bucket
  (:attr:`~repro.engine.counters.Counters.setup_seconds`), outside every
  phase timer, so Fig 12/13 reproductions are not polluted by one-time
  engine overhead.
* **Fault tolerance (opt-in).**  Constructing the engine with a
  :class:`~repro.engine.faults.FaultPolicy` swaps the parallel path for
  a driver-side recovery loop: per-task retries with exponential
  backoff, per-task and per-phase timeouts, a worker-death watchdog
  that re-spawns the pool (re-shipping broadcasts under a fresh epoch),
  and straggler detection with speculative re-execution — the Spark
  safety net the paper's substrate provides for free.  Recovery events
  land in the counters' fault buckets (``engine.retries``,
  ``engine.timeouts``, ``engine.respawns``, ``engine.speculations``)
  and, like setup time, never enter phase breakdowns.
* **Observability (opt-in).**  Constructing the engine with a
  :class:`~repro.obs.spans.Tracer` records every phase as a span tree —
  phase → task → attempt, with worker ids, broadcast epochs, and
  retry/timeout/respawn/speculation event spans — exportable as JSONL
  or Chrome ``trace_event`` JSON (see :mod:`repro.obs`).  ``profile=
  True`` additionally runs each task body under ``cProfile`` and merges
  the per-worker captures into one stats view.  Both default off; the
  untraced fast path costs one no-op call per recording site.
"""

from __future__ import annotations

import contextlib
import heapq
import os
import pickle
import statistics
import time
from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.engine.counters import DRIVER_WORKER, Counters, TaskStats
from repro.obs.profiling import dump_merged_profile, profile_call
from repro.obs.spans import (
    EVENT_RESPAWN,
    EVENT_RETRY,
    EVENT_SPECULATION,
    EVENT_TIMEOUT,
    NULL_TRACER,
    Span,
    Tracer,
)
from repro.engine.faults import (
    FAULT_RESPAWNS,
    FAULT_RETRIES,
    FAULT_SPECULATIONS,
    FAULT_TIMEOUTS,
    EngineClosedError,
    FaultInjector,
    FaultPolicy,
    PhaseTimeoutError,
    StaleBroadcastError,
    TaskFailedError,
)
from repro.engine.remote.cluster import NodeDeathError, RemoteTaskLostError

__all__ = ["Engine"]

#: Sentinel meaning "no broadcast has been shipped/warmed yet" — distinct
#: from ``None``, which is a legal (if pointless) broadcast value.
_NOTHING = object()

#: Deadlock backstop for the broadcast-install rendezvous: if a worker
#: died, the barrier breaks loudly after this many seconds instead of
#: hanging the fan-out forever.
_BARRIER_TIMEOUT_S = 120.0

# ----------------------------------------------------------------------
# Worker-side module state.  Lives in each pool worker process; the
# driver's copy is only used when tasks run inline.
# ----------------------------------------------------------------------
_WORKER_BROADCAST: Any = None
_WORKER_EPOCH: int = -1
_WORKER_BARRIER: Any = None
_WORKER_INSTALLS: int = 0
#: Shared-memory attachments backing the current broadcast (shm channel
#: only): the flat segment and/or sharded attachments, each exposing
#: ``close()``; kept so a later install can unmap the previous epoch.
_WORKER_SHM: list[Any] = []


def _init_worker(barrier: Any) -> None:
    """Pool initializer: reset the broadcast cache, keep the barrier."""
    global _WORKER_BROADCAST, _WORKER_EPOCH, _WORKER_BARRIER, _WORKER_INSTALLS
    global _WORKER_SHM
    _WORKER_BARRIER = barrier
    _WORKER_BROADCAST = None
    _WORKER_EPOCH = -1
    _WORKER_INSTALLS = 0
    _WORKER_SHM = []
    _reset_inherited_signal_state()


def _reset_inherited_signal_state() -> None:
    """Drop event-loop signal plumbing a fork-context worker inherits.

    When the parent runs an asyncio loop with ``add_signal_handler``
    (the node agent does), forked workers inherit both the loop's
    signal wakeup fd — the *shared* socketpair the loop sleeps on — and
    the no-op Python-level SIGTERM/SIGINT handlers.  A SIGTERM aimed at
    such a worker (``pool.terminate()`` during a respawn) then (a) gets
    swallowed by the no-op handler so the worker never dies, and (b) is
    written by the worker's C trampoline into the shared wakeup pipe,
    which the *parent's* loop reads as its own SIGTERM and shuts the
    agent down mid-fit.  Clearing the wakeup fd and restoring default
    dispositions here confines each worker's signals to the worker.
    """
    import signal

    with contextlib.suppress(ValueError, OSError):
        signal.set_wakeup_fd(-1)
    for sig in (signal.SIGTERM, signal.SIGINT):
        with contextlib.suppress(ValueError, OSError):
            if signal.getsignal(sig) not in (
                signal.SIG_DFL,
                signal.SIG_IGN,
                signal.default_int_handler,
            ):
                signal.signal(sig, signal.SIG_DFL)


def _install_broadcast(
    payload: tuple[int, str, bytes, Any, Callable[[Any], Any] | None],
) -> tuple[int, int, float]:
    """Install one broadcast epoch in this worker, then rendezvous.

    ``payload`` is ``(epoch, channel, blob, handle, warmup)``: the value
    arrives pre-pickled by the driver (``blob``), either self-contained
    (``channel == "pickle"``) or with its dictionaries hoisted into
    shared memory (``channel == "shm"``), ``handle`` being the pair
    ``(flat_segment_handle | None, sharded_dictionary_handles)``.  The
    flat segment (if any) and every sharded root segment are attached
    eagerly; leaf shard segments attach lazily through the partial
    dictionary's LRU store, bounded by the broadcast budget.

    The trailing ``barrier.wait()`` keeps this worker busy until *every*
    worker has taken exactly one install task, which is what guarantees
    the fan-out reaches the whole pool instead of piling onto one idle
    worker.
    """
    epoch, channel, blob, handle, warmup = payload
    global _WORKER_BROADCAST, _WORKER_EPOCH, _WORKER_INSTALLS, _WORKER_SHM
    if channel == "shm":
        from repro.engine import shm as _shm

        flat_handle, sharded_handles = handle
        attachments: list[Any] = []
        flat_shm = None
        if flat_handle is not None:
            flat_shm = _shm.attach_segment(flat_handle)
            attachments.append(flat_shm)
        value, sharded_attachments = _shm.import_broadcast_parts(
            blob, flat_handle, flat_shm, sharded_handles
        )
        attachments.extend(sharded_attachments)
    else:
        attachments = []
        value = pickle.loads(blob)
    previous = _WORKER_SHM
    _WORKER_BROADCAST = value
    _WORKER_SHM = attachments
    _WORKER_EPOCH = epoch
    _WORKER_INSTALLS += 1
    for stale in previous:
        # The prior epoch's views just became garbage; unmap them.  A
        # lingering reference would make close() raise — leave the unmap
        # to process exit in that case rather than fail the install.
        try:
            stale.close()
        except Exception:
            pass
    warm_seconds = 0.0
    if warmup is not None:
        start = time.perf_counter()
        warmup(value)
        warm_seconds = time.perf_counter() - start
    _WORKER_BARRIER.wait(timeout=_BARRIER_TIMEOUT_S)
    return os.getpid(), _WORKER_INSTALLS, warm_seconds


def _collect_residency(_token: int) -> tuple[int, dict]:
    """Report this worker's shard-residency ledger, then rendezvous.

    The barrier gives the fan-out the same every-worker-exactly-once
    guarantee as :func:`_install_broadcast`.
    """
    from repro.core.sharding import live_residency_stats

    stats = live_residency_stats()
    _WORKER_BARRIER.wait(timeout=_BARRIER_TIMEOUT_S)
    return os.getpid(), stats


def _run_task(
    payload: tuple[
        Callable[..., Any], int, Any, int | None, str, int,
        FaultInjector | None, bool,
    ],
) -> tuple[int, Any, float, int, float, bytes | None]:
    """Worker-side task body.

    Returns ``(task_id, result, elapsed, pid, start_ts, profile_blob)``.
    ``start_ts`` is the worker's ``perf_counter`` at compute start — on
    Linux (where the pool forks) that clock is ``CLOCK_MONOTONIC``,
    system-wide, so the driver's tracer can place the execution window
    on its own time axis.
    """
    fn, task_id, task, epoch, phase, attempt, injector, profile = payload
    if injector is not None:
        # Chaos happens before the task timer starts: an injected delay
        # models infrastructure slowness, not task compute.
        injector.apply(phase, task_id, attempt, allow_crash=True)
    start = time.perf_counter()
    if epoch is None:
        args = (task,)
    else:
        if _WORKER_EPOCH != epoch:
            raise StaleBroadcastError(
                f"stale broadcast in worker {os.getpid()}: cached epoch "
                f"{_WORKER_EPOCH}, task expects {epoch}"
            )
        args = (task, _WORKER_BROADCAST)
    blob = None
    if profile:
        result, blob = profile_call(fn, *args)
    else:
        result = fn(*args)
    return task_id, result, time.perf_counter() - start, os.getpid(), start, blob


def _default_workers() -> int:
    return max(1, os.cpu_count() or 1)


def _default_start_method() -> str:
    # fork is fastest where safe; Windows (and notably macOS since 3.8's
    # default flip) wants spawn.  Everything here is spawn-safe anyway.
    return "fork" if os.name == "posix" else "spawn"


@dataclass
class _Flight:
    """Driver-side record of one in-flight task attempt."""

    task_id: int
    attempt: int
    submitted_at: float
    async_result: Any
    timed_out: bool = False
    #: Remote substrate only: the :class:`RemoteNode` running the attempt.
    node: Any = None


class _ProcessSubstrate:
    """The recovery loop's view of the local process pool.

    The loop itself is substrate-agnostic: it launches attempts, reaps
    completions, retries, times out, speculates.  What varies between a
    local pool and a node cluster is *where* attempts run, *what* a
    capacity slot is, *how* infrastructure death manifests, and *which*
    flights one death invalidates — exactly the surface these two
    substrate classes carry.

    For the pool: capacity is ``num_workers``, damage is
    ``_pool_damaged()`` (a worker died or was silently replaced), one
    damage event invalidates **every** flight (``loss_scope="pool"``),
    and recovery is a full pool re-spawn with a broadcast re-ship under
    a fresh epoch.
    """

    kind = "process"
    #: One damage event invalidates every in-flight attempt.
    loss_scope = "pool"

    def __init__(
        self,
        engine: "Engine",
        broadcast: Any,
        wants_broadcast: bool,
        warmup: Callable[[Any], Any] | None,
    ) -> None:
        self.engine = engine
        self.broadcast = broadcast
        self.wants_broadcast = wants_broadcast
        self.warmup = warmup

    @property
    def epoch(self) -> int | None:
        return self.engine._shipped_epoch if self.wants_broadcast else None

    def has_slot(self, n_inflight: int) -> bool:
        return n_inflight < self.engine.num_workers

    def submit(
        self,
        fn: Callable[..., Any],
        task_id: int,
        task: Any,
        attempt: int,
        phase: str,
        injector: FaultInjector | None,
        profile: bool,
    ) -> _Flight | None:
        payload = (fn, task_id, task, self.epoch, phase, attempt, injector, profile)
        return _Flight(
            task_id,
            attempt,
            time.perf_counter(),
            self.engine._pool.apply_async(_run_task, (payload,)),
        )

    def damage_events(self) -> list[tuple[Any, str]]:
        """Newly detected infrastructure deaths: ``(node, reason)``
        pairs (``node`` is ``None`` for the local pool)."""
        if self.engine._pool_damaged():
            return [(None, "a worker process died")]
        return []

    def maintain(self) -> float:
        """Periodic upkeep; returns setup seconds to exclude from the
        phase timer (the pool needs none)."""
        return 0.0

    def lost_flights(self, flights: list[_Flight], node: Any) -> list[_Flight]:
        return list(flights)

    def recover(self, reason: str) -> None:
        engine = self.engine
        with engine.counters.timed_setup("respawn_teardown"):
            # Keep the segments: the broadcast value is unchanged, so
            # the replacement workers re-attach what already exists.
            engine._teardown_pool(keep_segments=True)
        engine._ensure_pool()
        if self.wants_broadcast:
            engine._ship_broadcast(self.broadcast, self.warmup)

    def release(self, flight: _Flight) -> None:
        pass

    def worker_label(self, flight: _Flight, pid: int) -> int | str:
        return pid

    def flight_annotations(self, flight: _Flight) -> dict[str, Any]:
        return {}

    def attempt_window(
        self, flight: _Flight, start_ts: float | None, elapsed: float
    ) -> tuple[float, float]:
        # Worker perf_counter is CLOCK_MONOTONIC on Linux — same axis
        # as the driver's, so the reported window is used directly.
        return start_ts, start_ts + elapsed

    def exhausted_message(self, budget: int, phase: str, reason: str) -> str:
        return (
            f"pool re-spawn budget ({budget}) exhausted "
            f"during phase {phase!r}: {reason}"
        )


class _RemoteSubstrate:
    """The recovery loop's view of a node cluster.

    Capacity is per-node (a node contributes ``workers`` slots while it
    holds the current broadcast epoch), damage is node death (missed
    heartbeats or a dropped connection), one death invalidates only
    **that node's** flights (``loss_scope="node"`` — the survivors keep
    computing), and recovery is re-shipping the current epoch to nodes
    that rejoin.  fn and tasks cross the wire pickled per attempt; the
    fn blob is cached since every attempt of a phase shares it.
    """

    kind = "remote"
    loss_scope = "node"

    def __init__(
        self,
        engine: "Engine",
        broadcast: Any,
        wants_broadcast: bool,
        warmup: Callable[[Any], Any] | None,
    ) -> None:
        self.engine = engine
        self.cluster = engine._cluster
        self.broadcast = broadcast
        self.wants_broadcast = wants_broadcast
        self.warmup = warmup
        self._fn: Any = _NOTHING
        self._fn_blob: bytes | None = None
        #: node_id -> attempts currently on that node (driver view).
        self.inflight: dict[int, int] = {}
        self._all_dead_since: float | None = None

    @property
    def epoch(self) -> int | None:
        return self.engine._shipped_epoch if self.wants_broadcast else None

    def _eligible_nodes(self) -> list[Any]:
        epoch = self.epoch
        return [
            node
            for node in self.cluster.alive_nodes()
            if epoch is None or node.shipped_epoch == epoch
        ]

    def _pick_node(self) -> Any:
        """Least-loaded eligible node with a free slot, or ``None``."""
        best = None
        best_load = None
        for node in self._eligible_nodes():
            load = self.inflight.get(node.node_id, 0)
            if load >= node.workers:
                continue
            if best is None or load / node.workers < best_load:
                best = node
                best_load = load / node.workers
        return best

    def has_slot(self, n_inflight: int) -> bool:
        return self._pick_node() is not None

    def submit(
        self,
        fn: Callable[..., Any],
        task_id: int,
        task: Any,
        attempt: int,
        phase: str,
        injector: FaultInjector | None,
        profile: bool,
    ) -> _Flight | None:
        node = self._pick_node()
        if node is None:
            return None
        if fn is not self._fn:
            self._fn = fn
            self._fn_blob = pickle.dumps(fn, protocol=pickle.HIGHEST_PROTOCOL)
        result = self.cluster.submit(
            node,
            task_id=task_id,
            attempt=attempt,
            epoch=self.epoch,
            phase=phase,
            fn_blob=self._fn_blob,
            task_blob=pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL),
            injector=injector,
            profile=profile,
        )
        self.inflight[node.node_id] = self.inflight.get(node.node_id, 0) + 1
        return _Flight(
            task_id, attempt, time.perf_counter(), result, node=node
        )

    def damage_events(self) -> list[tuple[Any, str]]:
        return [
            (node, f"node {node.label} ({node.addr}) died: {reason}")
            for node, reason in self.cluster.take_death_events()
        ]

    def maintain(self) -> float:
        """Re-equip rejoined nodes (ship the current epoch) and watch
        for total cluster loss; returns the setup seconds spent."""
        rejoined = self.cluster.take_rejoined()
        setup_s = 0.0
        if rejoined:
            start = time.perf_counter()
            for node in rejoined:
                self.inflight[node.node_id] = 0
                self.engine.tracer.event(
                    "node_rejoin", annotations={"node": node.label}
                )
            if self.wants_broadcast:
                try:
                    self.engine._ship_broadcast_remote(
                        self.broadcast, self.warmup, nodes=rejoined
                    )
                except NodeDeathError:
                    # The rejoined node died again mid-re-equip; its
                    # fresh death event does the accounting.
                    pass
            setup_s = time.perf_counter() - start
        if self.cluster.alive_nodes():
            self._all_dead_since = None
        else:
            now = time.perf_counter()
            if self._all_dead_since is None:
                self._all_dead_since = now
            grace = (
                self.cluster.connect_timeout_s
                if self.cluster.reconnect
                else 0.0
            )
            if now - self._all_dead_since > grace:
                raise TaskFailedError(
                    "every node of the remote cluster died and none rejoined"
                )
        return setup_s

    def lost_flights(self, flights: list[_Flight], node: Any) -> list[_Flight]:
        return [f for f in flights if f.node is node]

    def recover(self, reason: str) -> None:
        # Nothing to rebuild driver-side: the dead node's flights were
        # failed by the cluster, the survivors keep their epoch, and a
        # rejoin is re-equipped by maintain().
        return None

    def release(self, flight: _Flight) -> None:
        node_id = flight.node.node_id
        count = self.inflight.get(node_id, 0)
        if count > 0:
            self.inflight[node_id] = count - 1

    def worker_label(self, flight: _Flight, pid: int) -> int | str:
        return f"{flight.node.label}:{pid}"

    def flight_annotations(self, flight: _Flight) -> dict[str, Any]:
        return {"node": flight.node.label}

    def attempt_window(
        self, flight: _Flight, start_ts: float | None, elapsed: float
    ) -> tuple[float, float]:
        # Node clocks are not comparable to the driver's; place the
        # attempt by its driver-side completion, sized by the
        # node-reported compute time.
        now = time.perf_counter()
        return now - elapsed, now

    def exhausted_message(self, budget: int, phase: str, reason: str) -> str:
        return (
            f"node-loss budget (max_respawns={budget}) exhausted "
            f"during phase {phase!r}: {reason}"
        )


class Engine:
    """Runs phases of tasks and collects counters.

    Parameters
    ----------
    mode:
        ``"serial"`` (default) or ``"process"``.
    num_workers:
        Worker count for the ``process`` mode; defaults to the CPU count.
    counters:
        Optional pre-existing :class:`Counters` to accumulate into.
    start_method:
        Multiprocessing start method for the pool (``"fork"`` or
        ``"spawn"``); defaults per platform.  The engine is spawn-safe:
        all worker entry points are module-level functions and the
        rendezvous barrier is shipped through the pool initializer.
    fault_policy:
        Optional :class:`~repro.engine.faults.FaultPolicy`.  When set,
        parallel ``map_tasks`` calls run under a recovery loop (retries,
        timeouts, pool re-spawn, speculation) and inline calls retry
        failed tasks with backoff; the policy's
        :class:`~repro.engine.faults.FaultInjector`, if any, wraps every
        task attempt in every mode.  Without a policy the engine keeps
        the zero-overhead fast path, where a single task failure fails
        the phase.
    tracer:
        Optional :class:`~repro.obs.spans.Tracer`.  When set, every
        ``map_tasks`` call records a ``phase`` span with nested
        ``task``/``attempt`` spans (worker id, broadcast epoch,
        retry/timeout/respawn/speculation event annotations), and engine
        setup steps record ``setup`` spans.  Defaults to the shared
        no-op :data:`~repro.obs.spans.NULL_TRACER`.
    profile:
        When ``True``, every task body runs under ``cProfile``; the
        per-task profiles accumulate in :attr:`profile_blobs` and merge
        via :meth:`merged_profile` / :meth:`dump_profile`.
    broadcast_channel:
        How broadcast values cross the process boundary: ``"pickle"``
        ships one self-contained pickle blob per worker; ``"shm"`` hoists
        every :class:`~repro.core.dictionary.FlatCellDictionary` inside
        the value into a single ``multiprocessing.shared_memory`` segment
        that workers map zero-copy, pickling only a small descriptor;
        ``"auto"`` (default) uses ``shm`` whenever the value contains a
        flat dictionary and ``pickle`` otherwise.  A forced ``"shm"``
        likewise degrades to a plain blob when there is nothing columnar
        to hoist.  Bytes shipped per channel are accounted in
        :attr:`Counters.broadcast_bytes`; segments are unlinked on
        :meth:`close`, pool re-spawn, and interpreter exit.

    Notes
    -----
    In ``process`` mode the engine owns a persistent worker pool.  It is
    created lazily by the first parallel :meth:`map_tasks` call and
    reused until :meth:`close` (also invoked by ``with``-exit).
    ``close()`` is idempotent and final: later :meth:`map_tasks` calls
    raise :class:`~repro.engine.faults.EngineClosedError` rather than
    resurrecting a pool behind the caller's back.

    Diagnostics useful for tests and benches: :attr:`pools_created`
    counts pool startups over the engine's lifetime and
    :attr:`broadcast_ships` counts broadcast fan-outs (one per *distinct*
    broadcast value, not one per ``map_tasks`` call).
    """

    def __init__(
        self,
        mode: str = "serial",
        num_workers: int | None = None,
        counters: Counters | None = None,
        *,
        start_method: str | None = None,
        fault_policy: FaultPolicy | None = None,
        tracer: Tracer | None = None,
        profile: bool = False,
        broadcast_channel: str = "auto",
        executor: str | None = None,
        nodes: Sequence[str] | None = None,
        heartbeat_timeout_s: float = 10.0,
    ) -> None:
        if executor is not None:
            mode = executor
        if mode not in ("serial", "process", "remote"):
            raise ValueError(f"unknown engine mode {mode!r}")
        if broadcast_channel not in ("auto", "pickle", "shm"):
            raise ValueError(
                f"unknown broadcast channel {broadcast_channel!r}; "
                "choose 'auto', 'pickle', or 'shm'"
            )
        if mode == "remote":
            if not nodes:
                raise ValueError(
                    "remote mode needs nodes=['host:port', ...] "
                    "(running `python -m repro.node` agents)"
                )
            if num_workers is not None:
                raise ValueError(
                    "num_workers is per-node in remote mode; configure it "
                    "on each agent's --workers instead"
                )
        self.mode = mode
        self.nodes = list(nodes) if nodes else None
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.broadcast_channel = broadcast_channel
        if num_workers is not None and num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if mode == "remote":
            # Resolved at connect time: the sum of the agents' slots.
            self.num_workers = 0
        else:
            self.num_workers = (
                num_workers if num_workers is not None else _default_workers()
            )
        self.counters = counters if counters is not None else Counters()
        self.start_method = start_method if start_method is not None else _default_start_method()
        self.fault_policy = fault_policy
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.profile = bool(profile)
        #: Marshaled per-task cProfile stats (``profile=True`` only).
        self.profile_blobs: list[bytes] = []
        # Persistent-pool state.
        self._pool: Any = None
        self._barrier: Any = None
        self._worker_pids: set[int] | None = None
        self._shipped_broadcast: Any = _NOTHING
        self._shipped_epoch = 0
        self._closed = False
        # Remote-cluster state (mode == "remote").
        self._cluster: Any = None
        self._remote_value_blob: bytes | None = None
        self._remote_warmup_blob: bytes | None = None
        # Serial-mode warm-up dedup (same identity semantics as shipping).
        self._warmed_broadcast: Any = _NOTHING
        #: Live shared-memory segments this driver created (shm channel);
        #: every one is unlinked on teardown/close — crash paths included.
        self._segments: list[Any] = []
        # Encoded-broadcast cache: a pool re-spawn re-ships the *same*
        # value, so the encode (and the segments it created) can be
        # reused instead of re-packed — the replacement workers simply
        # re-attach the segments that already exist.
        self._encoded_broadcast: Any = _NOTHING
        self._encoded: tuple[str, bytes, Any] | None = None
        # Lifetime diagnostics.
        self.pools_created = 0
        self.broadcast_ships = 0

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Shut down the engine; idempotent, safe to call at any time.

        Teardown ordering matters when tasks are still in flight (a
        mid-phase close from another thread):

        1. ``_closed`` flips first, so any concurrent recovery loop
           that tries to re-spawn raises
           :class:`~repro.engine.faults.EngineClosedError` instead of
           resurrecting infrastructure behind the close.
        2. Flights are cancelled: the remote cluster fails its pending
           futures and hangs up — node agents are *not* told to exit
           (they are services owned by whoever started them, and stay
           available for the next driver); the local pool is
           ``terminate``\\ d (not gracefully joined, so closing cannot
           hang on workers stuck in a crashed phase).
        3. Only then are the driver's shared-memory segments unlinked —
           after no worker can still be mapping them, so a mid-phase
           close leaks nothing into ``/dev/shm``.

        After ``close()`` the engine refuses new work
        (:class:`~repro.engine.faults.EngineClosedError`) — callers that
        want more parallel maps should build a fresh :class:`Engine`.
        """
        self._closed = True
        cluster, self._cluster = self._cluster, None
        if cluster is not None:
            cluster.close(shutdown_agents=False)
        self._teardown_pool()

    def _teardown_pool(self, *, keep_segments: bool = False) -> None:
        """Release the pool (if any) and reset broadcast-cache state.

        ``keep_segments=True`` preserves the driver's live segments and
        encoded-broadcast cache across a re-spawn: the replacement pool
        re-attaches the existing segments instead of paying for a fresh
        pack of the (unchanged) broadcast value.
        """
        pool, self._pool = self._pool, None
        self._barrier = None
        self._worker_pids = None
        self._shipped_broadcast = _NOTHING
        if pool is not None:
            try:
                pool.terminate()
                pool.join()
            except Exception:
                pass
        if not keep_segments:
            self._destroy_segments()

    def _destroy_segments(self) -> None:
        """Unlink every live shared-memory segment this driver created."""
        self._encoded_broadcast = _NOTHING
        self._encoded = None
        segments, self._segments = self._segments, []
        if segments:
            from repro.engine.shm import destroy_segment

            for segment in segments:
                destroy_segment(segment)

    def __del__(self) -> None:
        pool = getattr(self, "_pool", None)
        if pool is not None:
            try:
                pool.terminate()
            except Exception:
                pass
        cluster = getattr(self, "_cluster", None)
        if cluster is not None:
            try:
                cluster.close()
            except Exception:
                pass
        try:
            self._destroy_segments()
        except Exception:
            pass

    def _ensure_pool(self) -> Any:
        if self._closed:
            # A concurrent close() mid-phase must not be answered by
            # resurrecting the pool (and re-creating segments the close
            # just unlinked) — fail the in-progress map instead.
            raise EngineClosedError("engine closed while work was in flight")
        if self._pool is None:
            import multiprocessing as mp

            with self.counters.timed_setup("pool_startup"), self.tracer.span(
                "pool_startup", "setup"
            ):
                ctx = mp.get_context(self.start_method)
                self._barrier = ctx.Barrier(self.num_workers)
                self._pool = ctx.Pool(
                    self.num_workers,
                    initializer=_init_worker,
                    initargs=(self._barrier,),
                )
            self.pools_created += 1
            self._shipped_broadcast = _NOTHING
            self._worker_pids = self._snapshot_worker_pids()
        return self._pool

    def _snapshot_worker_pids(self) -> set[int] | None:
        procs = getattr(self._pool, "_pool", None)
        if procs is None:
            return None
        return {p.pid for p in procs}

    def _pool_damaged(self) -> bool:
        """Did a worker die (or get replaced) since pool creation?

        ``multiprocessing.Pool`` silently replaces crashed workers, but
        the replacements miss our broadcast cache and the crashed task's
        result is lost forever — both repaired by a full re-spawn.  The
        check reads the pool's worker list; if that private attribute
        ever disappears, the :class:`StaleBroadcastError` raised by a
        replacement worker still triggers the same re-spawn path.
        """
        if self._pool is None or self._worker_pids is None:
            return False
        procs = getattr(self._pool, "_pool", None)
        if procs is None:
            return False
        if any(p.exitcode is not None for p in procs):
            return True
        return {p.pid for p in procs} != self._worker_pids

    @property
    def broadcast_epoch(self) -> int:
        """Epoch of the broadcast currently installed in the pool."""
        return self._shipped_epoch

    def _ensure_cluster(self) -> Any:
        if self._closed:
            raise EngineClosedError("engine closed while work was in flight")
        if self._cluster is None:
            from repro.engine.remote.cluster import RemoteCluster

            injector = (
                self.fault_policy.injector
                if self.fault_policy is not None
                else None
            )
            with self.counters.timed_setup("cluster_connect"), self.tracer.span(
                "cluster_connect", "setup"
            ):
                cluster = RemoteCluster(
                    self.nodes,
                    injector=injector,
                    heartbeat_timeout_s=self.heartbeat_timeout_s,
                )
                cluster.start()
            self._cluster = cluster
            self.num_workers = cluster.total_slots()
            self.pools_created += 1
        return self._cluster

    def node_ledger(self) -> list[dict] | None:
        """Per-node counters (remote mode); ``None`` otherwise."""
        if self._cluster is None:
            return None
        return self._cluster.ledger()

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------

    def map_tasks(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Any],
        *,
        broadcast: Any = None,
        phase: str = "map",
        trace_phase: str | None = None,
        item_counter: Callable[[Any], int] | None = None,
        warmup: Callable[[Any], Any] | None = None,
    ) -> list[Any]:
        """Apply ``fn`` to every task, in task order.

        Parameters
        ----------
        fn:
            Called as ``fn(task, broadcast)`` when ``broadcast`` is not
            ``None``, else ``fn(task)``.  Must be picklable in
            ``process`` mode.
        tasks:
            The per-partition inputs.
        broadcast:
            Read-only value shared by every task (e.g. the two-level cell
            dictionary).  Shipped to each worker at most once per
            distinct value (identity-compared): passing the same object
            to consecutive calls reuses the per-worker cache.
        phase:
            Counter bucket for the task stats.
        trace_phase:
            Optional display name for this call's spans (phase span
            name, task/attempt phase coordinates, fault-injector phase
            key).  Defaults to ``phase``.  Lets repeated calls within
            one logical phase — e.g. tournament rounds of Phase III-1 —
            show up as distinct spans while their time still aggregates
            into the single ``phase`` counter bucket.
        item_counter:
            Optional function mapping a *task* to the number of items it
            carries, recorded in :class:`TaskStats` for the duplication
            metric.
        warmup:
            Optional ``warmup(broadcast)`` hook run once per worker while
            the broadcast is installed (once on the driver when tasks run
            inline), before any task of this broadcast executes.  Its
            cost lands in the ``engine.setup`` bucket, not in ``phase``.

        Returns
        -------
        list
            Results in task order.

        Raises
        ------
        EngineClosedError
            If :meth:`close` was called; a closed engine fails new work
            cleanly instead of resurrecting its pool.
        """
        if self._closed:
            raise EngineClosedError(
                "map_tasks on a closed Engine; construct a new Engine instead"
            )
        wants_broadcast = broadcast is not None
        label = trace_phase if trace_phase is not None else phase
        results: list[Any] = [None] * len(tasks)
        if self.mode == "remote" and len(tasks) > 1:
            # Setup (cluster connect + per-node broadcast shipping)
            # happens OUTSIDE the phase timer, same as the pool path.
            self._ensure_cluster()
            if wants_broadcast:
                self._ship_broadcast_remote(broadcast, warmup)
            if self.fault_policy is not None:
                return self._map_with_recovery(
                    fn,
                    tasks,
                    substrate=_RemoteSubstrate(
                        self, broadcast, wants_broadcast, warmup
                    ),
                    phase=label,
                    counter_phase=phase,
                    item_counter=item_counter,
                )
            return self._map_remote_fast(
                fn,
                tasks,
                wants_broadcast=wants_broadcast,
                phase=label,
                counter_phase=phase,
                item_counter=item_counter,
            )
        if self.mode == "process" and len(tasks) > 1:
            # Setup (pool startup + broadcast shipping + warm-up) happens
            # OUTSIDE the phase timer: it is engine overhead, not work.
            pool = self._ensure_pool()
            epoch: int | None = None
            if wants_broadcast:
                self._ship_broadcast(broadcast, warmup)
                epoch = self._shipped_epoch
            if self.fault_policy is not None:
                return self._map_with_recovery(
                    fn,
                    tasks,
                    substrate=_ProcessSubstrate(
                        self, broadcast, wants_broadcast, warmup
                    ),
                    phase=label,
                    counter_phase=phase,
                    item_counter=item_counter,
                )
            payloads = [
                (fn, task_id, task, epoch, label, 0, None, self.profile)
                for task_id, task in enumerate(tasks)
            ]
            with self.counters.timed_phase(phase), self.tracer.span(
                label, "phase", phase=label
            ):
                for task_id, result, elapsed, pid, start_ts, blob in (
                    pool.imap_unordered(_run_task, payloads)
                ):
                    results[task_id] = result
                    self._record(phase, task_id, tasks[task_id], elapsed, item_counter, pid)
                    if blob is not None:
                        self.profile_blobs.append(blob)
                    self._trace_oneshot(
                        label, task_id, start_ts, start_ts + elapsed, pid, epoch
                    )
        else:
            if wants_broadcast and warmup is not None:
                self._warm_inline(broadcast, warmup)
            with self.counters.timed_phase(phase), self.tracer.span(
                label, "phase", phase=label
            ):
                for task_id, task in enumerate(tasks):
                    if self.fault_policy is not None:
                        results[task_id] = self._run_inline_with_retries(
                            fn, task_id, task, broadcast, wants_broadcast,
                            label, phase, item_counter,
                        )
                        continue
                    start = time.perf_counter()
                    if self.profile:
                        args = (task, broadcast) if wants_broadcast else (task,)
                        result, blob = profile_call(fn, *args)
                        self.profile_blobs.append(blob)
                    else:
                        result = fn(task, broadcast) if wants_broadcast else fn(task)
                    elapsed = time.perf_counter() - start
                    results[task_id] = result
                    self._record(
                        phase, task_id, task, elapsed, item_counter, DRIVER_WORKER
                    )
                    self._trace_oneshot(
                        label, task_id, start, start + elapsed, DRIVER_WORKER, None
                    )
        return results

    def _trace_oneshot(
        self,
        phase: str,
        task_id: int,
        start_s: float,
        end_s: float,
        worker: int | str,
        epoch: int | None,
        node: str | None = None,
    ) -> None:
        """Record the task + single-attempt spans of a fast-path task.

        The current tracer parent is the phase span (all call sites sit
        inside ``tracer.span(phase, ...)``), so the nesting comes out as
        phase → task → attempt with one attempt per task.  ``node``
        annotates remote attempts with the node that ran them.
        """
        tracer = self.tracer
        if not tracer.enabled:
            return
        annotations: dict[str, Any] = {
            "compute_s": end_s - start_s, "winner": True,
        }
        if node is not None:
            annotations["node"] = node
        task_span = tracer.record_span(
            f"task {task_id}", "task", start_s=start_s, end_s=end_s,
            phase=phase, task_id=task_id, worker=worker,
        )
        tracer.record_span(
            f"task {task_id}#0", "attempt", start_s=start_s, end_s=end_s,
            parent_id=task_span.span_id, phase=phase, task_id=task_id,
            attempt=0, worker=worker, epoch=epoch,
            annotations=annotations,
        )

    # ------------------------------------------------------------------
    # Fault-tolerant execution
    # ------------------------------------------------------------------

    def _run_inline_with_retries(
        self,
        fn: Callable[..., Any],
        task_id: int,
        task: Any,
        broadcast: Any,
        wants_broadcast: bool,
        phase: str,
        counter_phase: str,
        item_counter: Callable[[Any], int] | None,
    ) -> Any:
        """Inline (driver-side) execution under the retry policy.

        Timeouts and speculation need preemption, which inline execution
        cannot do, so only the retry/backoff part of the policy applies;
        injected crashes degrade to exceptions (the driver must live).
        ``phase`` is the display/injector label (``trace_phase`` of
        :meth:`map_tasks`); ``counter_phase`` is the counter bucket.
        """
        policy = self.fault_policy
        injector = policy.injector
        tracer = self.tracer
        task_span: Span | None = None
        if tracer.enabled:
            task_span = tracer.start_span(
                f"task {task_id}", "task", push=False,
                phase=phase, task_id=task_id, worker=DRIVER_WORKER,
            )
        failures = 0
        while True:
            start = time.perf_counter()
            try:
                if injector is not None:
                    injector.apply(phase, task_id, failures, allow_crash=False)
                    start = time.perf_counter()
                result = fn(task, broadcast) if wants_broadcast else fn(task)
            except Exception as exc:
                if task_span is not None:
                    tracer.record_span(
                        f"task {task_id}#{failures}", "attempt",
                        start_s=start, end_s=time.perf_counter(),
                        parent_id=task_span.span_id, phase=phase,
                        task_id=task_id, attempt=failures,
                        worker=DRIVER_WORKER, status="error",
                        annotations={"error": repr(exc)},
                    )
                failures += 1
                if failures > policy.max_retries:
                    if task_span is not None:
                        tracer.end_span(task_span, status="error")
                    raise TaskFailedError(
                        f"task {task_id} of phase {phase!r} failed "
                        f"{failures} attempts (retry budget {policy.max_retries})"
                    ) from exc
                self.counters.add_fault_event(FAULT_RETRIES)
                tracer.event(
                    EVENT_RETRY, phase=phase, task_id=task_id,
                    parent_id=None if task_span is None else task_span.parent_id,
                )
                time.sleep(policy.backoff(failures))
                continue
            elapsed = time.perf_counter() - start
            self._record(
                counter_phase, task_id, task, elapsed, item_counter, DRIVER_WORKER
            )
            if task_span is not None:
                tracer.record_span(
                    f"task {task_id}#{failures}", "attempt",
                    start_s=start, end_s=start + elapsed,
                    parent_id=task_span.span_id, phase=phase,
                    task_id=task_id, attempt=failures, worker=DRIVER_WORKER,
                    annotations={"compute_s": elapsed, "winner": True},
                )
                tracer.end_span(task_span)
            return result

    def _map_with_recovery(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Any],
        *,
        substrate: Any,
        phase: str,
        counter_phase: str,
        item_counter: Callable[[Any], int] | None,
    ) -> list[Any]:
        """The driver-side recovery loop (``len(tasks) > 1``).

        Admission control keeps at most one attempt per free slot of the
        ``substrate`` (pool worker or remote node slot), so an attempt's
        age measures *execution* time, not queue time — without it,
        attempts queued behind a slow worker would burn their retry
        budget before ever running.  The loop then polls: reaps
        completions, retries failures with backoff, abandons attempts
        that exceed the task timeout (the abandoned attempt keeps racing
        its retry — first completion wins — but holds its slot, since
        that slot really is busy), absorbs infrastructure loss (a pool
        re-spawn invalidates every flight; a node death only that
        node's), and launches speculative duplicates for stragglers on
        free slots.  Phase time excludes recovery overhead, which is
        accounted as engine setup.  ``phase`` is the display/injector
        label (``trace_phase`` of :meth:`map_tasks`); ``counter_phase``
        is the counter bucket.
        """
        policy = self.fault_policy
        injector = policy.injector
        tracer = self.tracer
        #: Open ``task`` spans by task id (first launch → accepted
        #: completion); attempts parent under these.
        task_spans: dict[int, Span] = {}
        phase_span = tracer.start_span(phase, "phase", phase=phase)
        n = len(tasks)
        results: list[Any] = [None] * n
        done = [False] * n
        launches = [0] * n        # attempt index, keeps injector draws unique
        failures = [0] * n        # failures charged against the retry budget
        speculated = [False] * n
        flights: list[_Flight] = []
        #: Launch queue: ``(task_id, kind)`` with kind one of
        #: ``"initial"``/``"retry"``/``"respawn"``/``"speculation"`` —
        #: fault events are counted when an entry actually launches.
        ready: deque[tuple[int, str]] = deque(
            (task_id, "initial") for task_id in range(n)
        )
        retry_heap: list[tuple[float, int, int]] = []  # (due, seq, task_id)
        retry_seq = 0
        durations: list[float] = []
        completed = 0
        respawns = 0
        epoch = substrate.epoch
        start = time.perf_counter()
        recovery_setup = 0.0      # mid-phase recovery wall, accounted as setup

        def launch_ready() -> bool:
            """Fill free slots from the launch queue."""
            launched = False
            while ready and substrate.has_slot(len(flights)):
                task_id, kind = ready.popleft()
                if done[task_id]:
                    continue
                attempt = launches[task_id]
                try:
                    flight = substrate.submit(
                        fn, task_id, tasks[task_id], attempt, phase,
                        injector, self.profile,
                    )
                except NodeDeathError:
                    flight = None
                if flight is None:
                    # The slot vanished under us (a node died between
                    # the capacity check and the dispatch): requeue and
                    # let the damage machinery catch up.
                    ready.appendleft((task_id, kind))
                    break
                launches[task_id] += 1
                if kind == "retry":
                    self.counters.add_fault_event(FAULT_RETRIES)
                    tracer.event(EVENT_RETRY, phase=phase, task_id=task_id)
                elif kind == "speculation":
                    self.counters.add_fault_event(FAULT_SPECULATIONS)
                    tracer.event(EVENT_SPECULATION, phase=phase, task_id=task_id)
                if tracer.enabled and task_id not in task_spans:
                    task_spans[task_id] = tracer.start_span(
                        f"task {task_id}", "task", push=False,
                        parent_id=phase_span.span_id,
                        phase=phase, task_id=task_id,
                    )
                flights.append(flight)
                launched = True
            return launched

        def racing_attempts(task_id: int) -> int:
            """Attempts that could still complete this task: in flight
            (timed-out ones keep racing their retry) or queued."""
            return sum(1 for f in flights if f.task_id == task_id) + sum(
                1 for tid, _ in ready if tid == task_id
            )

        def fail_attempt(task_id: int, exc: BaseException) -> None:
            nonlocal retry_seq
            if done[task_id]:
                return
            failures[task_id] += 1
            if failures[task_id] > policy.max_retries:
                if racing_attempts(task_id) > 0:
                    return  # a racing attempt may still save the task
                raise TaskFailedError(
                    f"task {task_id} of phase {phase!r} failed "
                    f"{failures[task_id]} attempts "
                    f"(retry budget {policy.max_retries})"
                ) from exc
            retry_seq += 1
            heapq.heappush(
                retry_heap,
                (
                    time.perf_counter() + policy.backoff(failures[task_id]),
                    retry_seq,
                    task_id,
                ),
            )

        def record_flight_span(
            flight: _Flight, status: str, **annotations: Any
        ) -> None:
            """Close out one in-flight attempt as a trace span."""
            if not tracer.enabled:
                return
            if flight.timed_out:
                annotations.setdefault("timed_out", True)
            annotations.update(substrate.flight_annotations(flight))
            parent = task_spans.get(flight.task_id)
            tracer.record_span(
                f"task {flight.task_id}#{flight.attempt}", "attempt",
                start_s=flight.submitted_at, end_s=time.perf_counter(),
                parent_id=parent.span_id if parent is not None else phase_span.span_id,
                phase=phase, task_id=flight.task_id, attempt=flight.attempt,
                epoch=epoch, status=status, annotations=annotations,
            )

        def charge_respawn(reason: str) -> None:
            """One unit of the infrastructure-loss budget + its events."""
            nonlocal respawns
            respawns += 1
            if respawns > policy.max_respawns:
                raise TaskFailedError(
                    substrate.exhausted_message(
                        policy.max_respawns, phase, reason
                    )
                )
            self.counters.add_fault_event(FAULT_RESPAWNS)

        def absorb_loss(reason: str, node: Any) -> None:
            """Recover from one infrastructure death (pool or node).

            ``loss_scope="pool"``: every flight died with the pool —
            re-spawn it, re-ship the broadcast under a fresh epoch, and
            requeue all undone work.  ``loss_scope="node"``: only the
            dead node's flights are lost; survivors keep computing and
            their epoch stays valid, so just requeue the lost tasks.
            """
            nonlocal recovery_setup, epoch
            charge_respawn(reason)
            lost = substrate.lost_flights(flights, node)
            for flight in lost:
                record_flight_span(flight, "lost", reason=reason)
            t0 = time.perf_counter()
            substrate.recover(reason)
            epoch = substrate.epoch
            recovery_setup += time.perf_counter() - t0
            annotations = {"reason": reason}
            if node is not None:
                annotations["node"] = node.label
            tracer.event(EVENT_RESPAWN, phase=phase, annotations=annotations)
            if substrate.loss_scope == "pool":
                flights.clear()
                retry_heap.clear()
                ready.clear()
                ready.extend(
                    (task_id, "respawn")
                    for task_id in range(n)
                    if not done[task_id]
                )
            else:
                requeued: set[int] = set()
                for flight in lost:
                    flights.remove(flight)
                    substrate.release(flight)
                    if not done[flight.task_id]:
                        if flight.task_id not in requeued:
                            requeued.add(flight.task_id)
                            ready.append((flight.task_id, "respawn"))

        finished = False
        try:
            while completed < n:
                now = time.perf_counter()
                if (
                    policy.phase_timeout_s is not None
                    and now - start - recovery_setup > policy.phase_timeout_s
                ):
                    self.counters.add_fault_event(FAULT_TIMEOUTS)
                    tracer.event(
                        EVENT_TIMEOUT,
                        phase=phase,
                        annotations={"reason": "phase budget exhausted"},
                    )
                    raise PhaseTimeoutError(
                        f"phase {phase!r} exceeded its "
                        f"{policy.phase_timeout_s}s budget "
                        f"({completed}/{n} tasks done)"
                    )
                recovery_setup += substrate.maintain()
                damage = substrate.damage_events()
                if damage:
                    for dead_node, reason in damage:
                        absorb_loss(reason, dead_node)
                    launch_ready()
                    continue
                #: Agent pool re-spawns already seen this scan, so one
                #: burst of lost attempts charges the budget once.
                lost_agent_pools: set[int] = set()
                progressed = launch_ready()
                for flight in list(flights):
                    if flight.async_result.ready():
                        flights.remove(flight)
                        progressed = True
                        try:
                            task_id, result, elapsed, pid, start_ts, blob = (
                                flight.async_result.get()
                            )
                        except StaleBroadcastError as exc:
                            if substrate.loss_scope != "pool":
                                # Remote agents requeue their own
                                # staleness; a raw one is a task failure.
                                substrate.release(flight)
                                record_flight_span(
                                    flight, "error", error=repr(exc)
                                )
                                fail_attempt(flight.task_id, exc)
                                continue
                            # A silently-replaced worker ran with a cold
                            # cache; re-spawn invalidates every flight,
                            # so restart the scan from the fresh state.
                            absorb_loss(
                                "replacement worker had a cold broadcast cache",
                                None,
                            )
                            break
                        except RemoteTaskLostError as exc:
                            # The node's local pool died and re-spawned:
                            # the attempt is lost, not failed — requeue
                            # without charging the retry budget.  The
                            # respawn itself charges the loss budget,
                            # once per node per scan.
                            substrate.release(flight)
                            record_flight_span(flight, "lost", reason=str(exc))
                            node_id = flight.node.node_id
                            if node_id not in lost_agent_pools:
                                lost_agent_pools.add(node_id)
                                charge_respawn(str(exc))
                                tracer.event(
                                    EVENT_RESPAWN, phase=phase,
                                    annotations={
                                        "reason": str(exc),
                                        "node": flight.node.label,
                                    },
                                )
                            if not done[flight.task_id]:
                                ready.append((flight.task_id, "respawn"))
                        except NodeDeathError as exc:
                            # The node died under the flight; the death
                            # event (absorbed above or next scan) does
                            # the accounting — just requeue this task.
                            substrate.release(flight)
                            record_flight_span(flight, "lost", reason=str(exc))
                            if not done[flight.task_id]:
                                ready.append((flight.task_id, "respawn"))
                        except Exception as exc:
                            substrate.release(flight)
                            record_flight_span(flight, "error", error=repr(exc))
                            fail_attempt(flight.task_id, exc)
                        else:
                            substrate.release(flight)
                            if blob is not None:
                                self.profile_blobs.append(blob)
                            won = not done[task_id]
                            worker = substrate.worker_label(flight, pid)
                            if tracer.enabled:
                                span_start, span_end = substrate.attempt_window(
                                    flight, start_ts, elapsed
                                )
                                parent = task_spans.get(task_id)
                                tracer.record_span(
                                    f"task {task_id}#{flight.attempt}",
                                    "attempt",
                                    start_s=span_start, end_s=span_end,
                                    parent_id=(
                                        parent.span_id if parent is not None
                                        else phase_span.span_id
                                    ),
                                    phase=phase, task_id=task_id,
                                    attempt=flight.attempt, worker=worker,
                                    epoch=epoch,
                                    annotations={
                                        "compute_s": elapsed,
                                        "winner": won,
                                        **substrate.flight_annotations(flight),
                                        **(
                                            {"timed_out": True}
                                            if flight.timed_out else {}
                                        ),
                                    },
                                )
                                if won and parent is not None:
                                    # The winning attempt's worker names
                                    # the whole task span.
                                    parent.worker = worker
                                    tracer.end_span(parent)
                            if won:
                                done[task_id] = True
                                completed += 1
                                results[task_id] = result
                                durations.append(elapsed)
                                self._record(
                                    counter_phase, task_id, tasks[task_id],
                                    elapsed, item_counter, worker,
                                )
                    elif (
                        policy.task_timeout_s is not None
                        and not flight.timed_out
                        and now - flight.submitted_at > policy.task_timeout_s
                    ):
                        # Abandon, but keep listening: if the slow
                        # original finishes before its retry, it wins.
                        flight.timed_out = True
                        progressed = True
                        if done[flight.task_id]:
                            continue
                        self.counters.add_fault_event(FAULT_TIMEOUTS)
                        tracer.event(
                            EVENT_TIMEOUT,
                            phase=phase,
                            task_id=flight.task_id,
                            attempt=flight.attempt,
                        )
                        fail_attempt(
                            flight.task_id,
                            TimeoutError(
                                f"task {flight.task_id} attempt "
                                f"{flight.attempt} exceeded "
                                f"{policy.task_timeout_s}s"
                            ),
                        )
                while retry_heap and retry_heap[0][0] <= now:
                    _, _, task_id = heapq.heappop(retry_heap)
                    if not done[task_id]:
                        ready.append((task_id, "retry"))
                        progressed = True
                if (
                    policy.speculative
                    and durations
                    and not ready
                    and substrate.has_slot(len(flights))
                    and completed >= max(policy.speculation_min_done, (n + 1) // 2)
                ):
                    median = statistics.median(durations)
                    threshold = max(
                        policy.straggler_factor * median,
                        policy.straggler_min_wait_s,
                    )
                    for flight in list(flights):
                        task_id = flight.task_id
                        if done[task_id] or speculated[task_id] or flight.timed_out:
                            continue
                        if now - flight.submitted_at > threshold:
                            speculated[task_id] = True
                            ready.append((task_id, "speculation"))
                            progressed = True
                if progressed:
                    launch_ready()
                else:
                    time.sleep(policy.poll_interval_s)
            finished = True
        finally:
            if tracer.enabled:
                # Keep the trace well-formed no matter how the phase
                # ended: attempts still racing (a timed-out original or
                # a speculation loser) close as abandoned, and any task
                # span without an accepted completion closes with the
                # phase's fate.
                for flight in flights:
                    record_flight_span(flight, "abandoned")
                for task_id, span in task_spans.items():
                    if not span.closed:
                        tracer.end_span(
                            span, status="ok" if done[task_id] else "error"
                        )
                tracer.end_span(
                    phase_span,
                    status="ok" if finished else "error",
                    recovery_setup_s=recovery_setup,
                )
            else:
                tracer.end_span(phase_span)
            self.counters.add_phase_time(
                counter_phase, time.perf_counter() - start - recovery_setup
            )
        return results

    def _map_remote_fast(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Any],
        *,
        wants_broadcast: bool,
        phase: str,
        counter_phase: str,
        item_counter: Callable[[Any], int] | None,
    ) -> list[Any]:
        """Remote execution without a fault policy.

        Admission-controlled dispatch across eligible nodes, reaped in
        completion order.  The first failure propagates — node death
        included; resilience is the recovery loop's job, opted into via
        ``fault_policy`` (same contract as the local fast path, where a
        worker death surfaces instead of being absorbed).
        """
        substrate = _RemoteSubstrate(self, None, wants_broadcast, None)
        epoch = substrate.epoch
        n = len(tasks)
        results: list[Any] = [None] * n
        pending: deque[int] = deque(range(n))
        flights: list[_Flight] = []
        completed = 0
        with self.counters.timed_phase(counter_phase), self.tracer.span(
            phase, "phase", phase=phase
        ):
            while completed < n:
                while pending and substrate.has_slot(len(flights)):
                    task_id = pending[0]
                    try:
                        flight = substrate.submit(
                            fn, task_id, tasks[task_id], 0, phase, None,
                            self.profile,
                        )
                    except NodeDeathError:
                        # Race with a death: fall through to the
                        # eligible-nodes check below.
                        flight = None
                    if flight is None:
                        break
                    pending.popleft()
                    flights.append(flight)
                progressed = False
                for flight in list(flights):
                    if not flight.async_result.ready():
                        continue
                    flights.remove(flight)
                    substrate.release(flight)
                    progressed = True
                    task_id, result, elapsed, pid, _start_ts, blob = (
                        flight.async_result.get()
                    )
                    results[task_id] = result
                    completed += 1
                    worker = substrate.worker_label(flight, pid)
                    self._record(
                        counter_phase, task_id, tasks[task_id], elapsed,
                        item_counter, worker,
                    )
                    if blob is not None:
                        self.profile_blobs.append(blob)
                    span_start, span_end = substrate.attempt_window(
                        flight, None, elapsed
                    )
                    self._trace_oneshot(
                        phase, task_id, span_start, span_end, worker, epoch,
                        node=flight.node.label,
                    )
                if not progressed:
                    if pending and not flights and not substrate._eligible_nodes():
                        raise NodeDeathError(
                            f"phase {phase!r}: no eligible node left to run "
                            f"{len(pending)} remaining task(s); configure "
                            "fault_policy for node-death recovery"
                        )
                    time.sleep(0.005)
        return results

    # ------------------------------------------------------------------
    # Broadcast shipping
    # ------------------------------------------------------------------

    def _encode_broadcast(
        self, broadcast: Any
    ) -> tuple[str, bytes, Any, list[Any]]:
        """Serialize ``broadcast`` for fan-out on the configured channel.

        Returns ``(channel, blob, handle, segments)``.  ``auto`` (and a
        forced ``shm``) resolves to the shared-memory channel only when
        the value actually contains flat or sharded dictionaries to
        hoist; anything else ships as a plain pickle blob — there is
        nothing zero-copy about arbitrary Python objects.

        On the shm channel ``handle`` is the pair ``(flat_handle | None,
        sharded_dictionary_handles)`` and ``segments`` lists every
        shared-memory segment created: the flat segment plus, for each
        sharded dictionary, one root segment and one segment per leaf
        shard.  Creation is all-or-nothing — a failure partway destroys
        whatever was already created before re-raising, so no segment
        can leak without ever having been handed to a worker.
        """
        if self.broadcast_channel == "pickle":
            blob = pickle.dumps(broadcast, protocol=pickle.HIGHEST_PROTOCOL)
            return "pickle", blob, None, []
        from repro.engine import shm as _shm

        blob, flats, sharded = _shm.export_broadcast_parts(broadcast)
        if not flats and not sharded:
            # No columnar payload: the export blob has no persistent ids,
            # so it is an ordinary pickle stream.
            return "pickle", blob, None, []
        segments: list[Any] = []
        flat_handle = None
        try:
            if flats:
                flat_handle, flat_segment = _shm.create_segment(flats)
                segments.append(flat_segment)
            sharded_handles = []
            for dictionary in sharded:
                handle, shard_segments = _shm.create_sharded_segments(dictionary)
                segments.extend(shard_segments)
                sharded_handles.append(handle)
        except BaseException:
            for segment in segments:
                _shm.destroy_segment(segment)
            raise
        return "shm", blob, (flat_handle, tuple(sharded_handles)), segments

    def _ship_broadcast(
        self, broadcast: Any, warmup: Callable[[Any], Any] | None
    ) -> None:
        """Install ``broadcast`` in every pool worker, once per value."""
        if broadcast is self._shipped_broadcast:
            return
        self._shipped_epoch += 1
        reused = (
            broadcast is self._encoded_broadcast and self._encoded is not None
        )
        if reused:
            # Re-spawn path: same value, segments still linked — the
            # replacement workers just re-attach them.
            channel, blob, handle = self._encoded
            segments: list[Any] = []
        else:
            channel, blob, handle, segments = self._encode_broadcast(broadcast)
        live = segments if not reused else self._segments
        ship_span = self.tracer.start_span(
            "broadcast_ship", "setup", push=False, epoch=self._shipped_epoch,
            annotations={
                "channel": channel,
                "payload_bytes": len(blob),
                "segment_bytes": sum(s.size for s in live),
                "num_segments": len(live),
                "segments_reused": reused,
            },
        )
        start = time.perf_counter()
        payloads = [
            (self._shipped_epoch, channel, blob, handle, warmup)
        ] * self.num_workers
        try:
            installs = self._pool.map(_install_broadcast, payloads, chunksize=1)
        except BaseException:
            # Fan-out failed: nobody holds the new segments, reclaim
            # them (reused segments stay — the next re-spawn needs them,
            # and teardown/close unlinks them regardless).
            if segments:
                from repro.engine.shm import destroy_segment

                for segment in segments:
                    destroy_segment(segment)
            raise
        wall = time.perf_counter() - start
        self.tracer.end_span(ship_span, warmed=warmup is not None)
        if not reused:
            # Every worker has attached the new epoch (and unmapped the
            # old one), so the previous segments can be unlinked now.
            self._destroy_segments()
            self._segments.extend(segments)
            if channel == "shm":
                self._encoded_broadcast = broadcast
                self._encoded = (channel, blob, handle)
        self.counters.add_broadcast_bytes(channel, len(blob))
        if not reused and channel == "shm":
            flat_handle, sharded_handles = handle
            if flat_handle is not None:
                self.counters.add_broadcast_bytes("shm_segment", flat_handle.size)
            for sharded_handle in sharded_handles:
                self.counters.add_broadcast_bytes(
                    "shm_root_segment", sharded_handle.root.size
                )
                self.counters.add_broadcast_bytes(
                    "shm_shard_segments",
                    sum(h.size for h in sharded_handle.shards),
                )
        warm_wall = max(w for _, _, w in installs) if warmup is not None else 0.0
        # Warm-ups run concurrently across workers, so the slowest one is
        # the wall-clock share of the fan-out attributable to warm-up.
        self.counters.add_setup_time("broadcast_ship", max(wall - warm_wall, 0.0))
        if warmup is not None:
            self.counters.add_setup_time("warmup", warm_wall)
        self._shipped_broadcast = broadcast
        self.broadcast_ships += 1

    def _ship_broadcast_remote(
        self,
        broadcast: Any,
        warmup: Callable[[Any], Any] | None,
        *,
        nodes: Sequence[Any] | None = None,
    ) -> None:
        """Ship ``broadcast`` to nodes — exactly once per node per epoch.

        The wire carries one pickle blob per *node* (channel ``tcp``);
        each agent re-hoists it through its local broadcast channel, so
        TCP moves one copy per machine and node-local shm fans it out
        per worker.  A new value (identity comparison, same rule as
        :meth:`_ship_broadcast`) bumps the epoch and re-encodes; an
        unchanged value reuses the cached blob and only reaches nodes
        missing the current epoch (rejoins).  ``nodes`` narrows the
        targets to a re-equip set.
        """
        cluster = self._ensure_cluster()
        new_value = broadcast is not self._shipped_broadcast
        if new_value:
            self._shipped_epoch += 1
            with self.counters.timed_setup("broadcast_encode"):
                self._remote_value_blob = pickle.dumps(
                    broadcast, protocol=pickle.HIGHEST_PROTOCOL
                )
                self._remote_warmup_blob = (
                    None if warmup is None
                    else pickle.dumps(warmup, protocol=pickle.HIGHEST_PROTOCOL)
                )
            self._shipped_broadcast = broadcast
            self.broadcast_ships += 1
        epoch = self._shipped_epoch
        targets = list(nodes) if nodes is not None else cluster.alive_nodes()
        if all(node.shipped_epoch == epoch for node in targets):
            return  # every target already holds this epoch
        blob = self._remote_value_blob
        ship_span = self.tracer.start_span(
            "broadcast_ship", "setup", push=False, epoch=epoch,
            annotations={
                "channel": "tcp",
                "payload_bytes": len(blob),
                "segment_bytes": 0,
                "num_segments": 0,
                "segments_reused": not new_value,
            },
        )
        start = time.perf_counter()
        try:
            acks = cluster.ship_broadcast(
                epoch, blob, self._remote_warmup_blob, nodes=targets
            )
        except BaseException:
            self.tracer.end_span(ship_span, status="error")
            raise
        wall = time.perf_counter() - start
        by_id = {node.node_id: node for node in targets}
        warm_wall = 0.0
        now = time.perf_counter()
        for node_id, ack in acks.items():
            node = by_id[node_id]
            install_s = float(ack.get("install_s", 0.0))
            warm_s = float(ack.get("warm_s", 0.0))
            warm_wall = max(warm_wall, warm_s)
            self.counters.add_broadcast_bytes("tcp", len(blob))
            self.tracer.record_span(
                f"node_broadcast {node.label}", "setup",
                start_s=now - install_s, end_s=now,
                parent_id=ship_span.span_id, epoch=epoch,
                annotations={
                    "node": node.label,
                    "payload_bytes": len(blob),
                    "install_s": install_s,
                    "warm_s": warm_s,
                },
            )
        self.tracer.end_span(
            ship_span, warmed=warmup is not None, nodes_shipped=len(acks)
        )
        # Node-side warm-ups run concurrently; the slowest is the
        # wall-clock share of the ship attributable to warm-up.
        self.counters.add_setup_time("broadcast_ship", max(wall - warm_wall, 0.0))
        if warmup is not None:
            self.counters.add_setup_time("warmup", warm_wall)

    def collect_broadcast_stats(self) -> list[tuple[int | str, dict]]:
        """Gather each worker's shard-residency ledger.

        Process mode fans one :func:`_collect_residency` task to every
        worker with the same barrier rendezvous as a broadcast ship and
        returns ``[(pid, stats_dict), ...]``; remote mode asks every
        alive node for its workers' ledgers and returns
        ``[("n<k>:<pid>", stats_dict), ...]``.  Empty when there is no
        live pool/cluster or the pool is damaged (a crashed worker
        cannot report; its replacement has nothing to say).
        """
        if self.mode == "remote":
            if self._cluster is None:
                return []
            try:
                return self._cluster.collect_stats()
            except Exception:
                return []
        if self.mode != "process" or self._pool is None or self._pool_damaged():
            return []
        tokens = list(range(self.num_workers))
        try:
            return self._pool.map(_collect_residency, tokens, chunksize=1)
        except Exception:
            return []

    def _warm_inline(self, broadcast: Any, warmup: Callable[[Any], Any]) -> None:
        """Driver-side warm-up with the same once-per-value semantics."""
        if broadcast is self._warmed_broadcast:
            return
        with self.counters.timed_setup("warmup"), self.tracer.span(
            "warmup", "setup"
        ):
            warmup(broadcast)
        self._warmed_broadcast = broadcast

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------

    def merged_profile(self):
        """Merge the per-task cProfile captures into one
        :class:`pstats.Stats` (``None`` if profiling was off or no task
        ran).  Requires ``Engine(profile=True)``."""
        from repro.obs.profiling import merge_profile_blobs

        return merge_profile_blobs(self.profile_blobs)

    def dump_profile(self, path: str) -> bool:
        """Write the merged profile as a standard pstats dump file.
        Returns False (and writes nothing) when no profile was captured."""
        return dump_merged_profile(self.profile_blobs, path) is not None

    def _record(
        self,
        phase: str,
        task_id: int,
        task: Any,
        elapsed: float,
        item_counter: Callable[[Any], int] | None,
        worker: int | str | None,
    ) -> None:
        items = item_counter(task) if item_counter is not None else 0
        self.counters.record_task(
            phase, TaskStats(task_id, elapsed, items, worker=worker)
        )
