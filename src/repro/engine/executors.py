"""Task executors: serial (deterministic) and a persistent process pool.

The engine exposes one operation, :meth:`Engine.map_tasks`: apply a
function to every task of a phase, with an optional broadcast value
shared by all tasks, and record a :class:`~repro.engine.counters.TaskStats`
per task.  This mirrors the Spark usage in the paper — ``mapPartitions``
over pseudo random partitions with the broadcast two-level cell
dictionary.

Process-mode semantics (matching Spark's executor model):

* **One pool per engine lifetime.**  The worker pool is created lazily
  on the first parallel ``map_tasks`` call and then reused by every
  subsequent phase and every subsequent ``fit()`` that shares the
  engine.  Use the engine as a context manager (``with Engine("process")
  as e: ...``) or call :meth:`Engine.close` to release the workers.
* **Epoch-tagged broadcast caching.**  Each distinct broadcast value is
  shipped to each worker exactly once, via a barrier fan-out that lands
  one install task on every worker.  An epoch counter tags the installed
  value; re-mapping with the *same* broadcast object ships nothing,
  while a new broadcast bumps the epoch and invalidates the per-worker
  module-level cache.  Every task carries its expected epoch, so a stale
  cache raises instead of silently computing with old data.
* **Warm-up hook.**  ``map_tasks(..., warmup=fn)`` runs ``fn(broadcast)``
  once per worker during broadcast installation (once on the driver in
  serial mode).  Phase II uses this to build the region-query engine
  (kd-tree, center caches) *before* the first task, so first-task
  timings measure clustering, not index construction.
* **Setup vs. compute accounting.**  Pool startup, broadcast shipping,
  and warm-up are recorded in the counters' ``engine.setup`` bucket
  (:attr:`~repro.engine.counters.Counters.setup_seconds`), outside every
  phase timer, so Fig 12/13 reproductions are not polluted by one-time
  engine overhead.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Sequence
from typing import Any

from repro.engine.counters import DRIVER_WORKER, Counters, TaskStats

__all__ = ["Engine"]

#: Sentinel meaning "no broadcast has been shipped/warmed yet" — distinct
#: from ``None``, which is a legal (if pointless) broadcast value.
_NOTHING = object()

#: Deadlock backstop for the broadcast-install rendezvous: if a worker
#: died, the barrier breaks loudly after this many seconds instead of
#: hanging the fan-out forever.
_BARRIER_TIMEOUT_S = 120.0

# ----------------------------------------------------------------------
# Worker-side module state.  Lives in each pool worker process; the
# driver's copy is only used when tasks run inline.
# ----------------------------------------------------------------------
_WORKER_BROADCAST: Any = None
_WORKER_EPOCH: int = -1
_WORKER_BARRIER: Any = None
_WORKER_INSTALLS: int = 0


def _init_worker(barrier: Any) -> None:
    """Pool initializer: reset the broadcast cache, keep the barrier."""
    global _WORKER_BROADCAST, _WORKER_EPOCH, _WORKER_BARRIER, _WORKER_INSTALLS
    _WORKER_BARRIER = barrier
    _WORKER_BROADCAST = None
    _WORKER_EPOCH = -1
    _WORKER_INSTALLS = 0


def _install_broadcast(
    payload: tuple[int, Any, Callable[[Any], Any] | None],
) -> tuple[int, int, float]:
    """Install one broadcast epoch in this worker, then rendezvous.

    The trailing ``barrier.wait()`` keeps this worker busy until *every*
    worker has taken exactly one install task, which is what guarantees
    the fan-out reaches the whole pool instead of piling onto one idle
    worker.
    """
    epoch, value, warmup = payload
    global _WORKER_BROADCAST, _WORKER_EPOCH, _WORKER_INSTALLS
    _WORKER_BROADCAST = value
    _WORKER_EPOCH = epoch
    _WORKER_INSTALLS += 1
    warm_seconds = 0.0
    if warmup is not None:
        start = time.perf_counter()
        warmup(value)
        warm_seconds = time.perf_counter() - start
    _WORKER_BARRIER.wait(timeout=_BARRIER_TIMEOUT_S)
    return os.getpid(), _WORKER_INSTALLS, warm_seconds


def _run_task(
    payload: tuple[Callable[..., Any], int, Any, int | None],
) -> tuple[int, Any, float, int]:
    fn, task_id, task, epoch = payload
    start = time.perf_counter()
    if epoch is None:
        result = fn(task)
    else:
        if _WORKER_EPOCH != epoch:
            raise RuntimeError(
                f"stale broadcast in worker {os.getpid()}: cached epoch "
                f"{_WORKER_EPOCH}, task expects {epoch}"
            )
        result = fn(task, _WORKER_BROADCAST)
    return task_id, result, time.perf_counter() - start, os.getpid()


def _default_workers() -> int:
    return max(1, os.cpu_count() or 1)


def _default_start_method() -> str:
    # fork is fastest where safe; Windows (and notably macOS since 3.8's
    # default flip) wants spawn.  Everything here is spawn-safe anyway.
    return "fork" if os.name == "posix" else "spawn"


class Engine:
    """Runs phases of tasks and collects counters.

    Parameters
    ----------
    mode:
        ``"serial"`` (default) or ``"process"``.
    num_workers:
        Worker count for the ``process`` mode; defaults to the CPU count.
    counters:
        Optional pre-existing :class:`Counters` to accumulate into.
    start_method:
        Multiprocessing start method for the pool (``"fork"`` or
        ``"spawn"``); defaults per platform.  The engine is spawn-safe:
        all worker entry points are module-level functions and the
        rendezvous barrier is shipped through the pool initializer.

    Notes
    -----
    In ``process`` mode the engine owns a persistent worker pool.  It is
    created lazily by the first parallel :meth:`map_tasks` call and
    reused until :meth:`close` (also invoked by ``with``-exit).  Calling
    :meth:`map_tasks` after ``close()`` simply recreates the pool.

    Diagnostics useful for tests and benches: :attr:`pools_created`
    counts pool startups over the engine's lifetime and
    :attr:`broadcast_ships` counts broadcast fan-outs (one per *distinct*
    broadcast value, not one per ``map_tasks`` call).
    """

    def __init__(
        self,
        mode: str = "serial",
        num_workers: int | None = None,
        counters: Counters | None = None,
        *,
        start_method: str | None = None,
    ) -> None:
        if mode not in ("serial", "process"):
            raise ValueError(f"unknown engine mode {mode!r}")
        self.mode = mode
        if num_workers is not None and num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers if num_workers is not None else _default_workers()
        self.counters = counters if counters is not None else Counters()
        self.start_method = start_method if start_method is not None else _default_start_method()
        # Persistent-pool state.
        self._pool: Any = None
        self._barrier: Any = None
        self._shipped_broadcast: Any = _NOTHING
        self._shipped_epoch = 0
        # Serial-mode warm-up dedup (same identity semantics as shipping).
        self._warmed_broadcast: Any = _NOTHING
        # Lifetime diagnostics.
        self.pools_created = 0
        self.broadcast_ships = 0

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the worker pool (no-op in serial mode / if unused).

        The engine stays usable: a later :meth:`map_tasks` lazily starts
        a fresh pool (and re-ships broadcasts, since the new workers
        start with cold caches).
        """
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None
            self._barrier = None
            self._shipped_broadcast = _NOTHING

    def __del__(self) -> None:
        pool = getattr(self, "_pool", None)
        if pool is not None:
            try:
                pool.terminate()
            except Exception:
                pass

    def _ensure_pool(self) -> Any:
        if self._pool is None:
            import multiprocessing as mp

            with self.counters.timed_setup("pool_startup"):
                ctx = mp.get_context(self.start_method)
                self._barrier = ctx.Barrier(self.num_workers)
                self._pool = ctx.Pool(
                    self.num_workers,
                    initializer=_init_worker,
                    initargs=(self._barrier,),
                )
            self.pools_created += 1
            self._shipped_broadcast = _NOTHING
        return self._pool

    @property
    def broadcast_epoch(self) -> int:
        """Epoch of the broadcast currently installed in the pool."""
        return self._shipped_epoch

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------

    def map_tasks(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Any],
        *,
        broadcast: Any = None,
        phase: str = "map",
        item_counter: Callable[[Any], int] | None = None,
        warmup: Callable[[Any], Any] | None = None,
    ) -> list[Any]:
        """Apply ``fn`` to every task, in task order.

        Parameters
        ----------
        fn:
            Called as ``fn(task, broadcast)`` when ``broadcast`` is not
            ``None``, else ``fn(task)``.  Must be picklable in
            ``process`` mode.
        tasks:
            The per-partition inputs.
        broadcast:
            Read-only value shared by every task (e.g. the two-level cell
            dictionary).  Shipped to each worker at most once per
            distinct value (identity-compared): passing the same object
            to consecutive calls reuses the per-worker cache.
        phase:
            Counter bucket for the task stats.
        item_counter:
            Optional function mapping a *task* to the number of items it
            carries, recorded in :class:`TaskStats` for the duplication
            metric.
        warmup:
            Optional ``warmup(broadcast)`` hook run once per worker while
            the broadcast is installed (once on the driver when tasks run
            inline), before any task of this broadcast executes.  Its
            cost lands in the ``engine.setup`` bucket, not in ``phase``.

        Returns
        -------
        list
            Results in task order.
        """
        wants_broadcast = broadcast is not None
        results: list[Any] = [None] * len(tasks)
        if self.mode == "process" and len(tasks) > 1:
            # Setup (pool startup + broadcast shipping + warm-up) happens
            # OUTSIDE the phase timer: it is engine overhead, not work.
            pool = self._ensure_pool()
            epoch: int | None = None
            if wants_broadcast:
                self._ship_broadcast(broadcast, warmup)
                epoch = self._shipped_epoch
            payloads = [
                (fn, task_id, task, epoch) for task_id, task in enumerate(tasks)
            ]
            with self.counters.timed_phase(phase):
                for task_id, result, elapsed, pid in pool.imap_unordered(
                    _run_task, payloads
                ):
                    results[task_id] = result
                    self._record(phase, task_id, tasks[task_id], elapsed, item_counter, pid)
        else:
            if wants_broadcast and warmup is not None:
                self._warm_inline(broadcast, warmup)
            with self.counters.timed_phase(phase):
                for task_id, task in enumerate(tasks):
                    start = time.perf_counter()
                    result = fn(task, broadcast) if wants_broadcast else fn(task)
                    elapsed = time.perf_counter() - start
                    results[task_id] = result
                    self._record(
                        phase, task_id, task, elapsed, item_counter, DRIVER_WORKER
                    )
        return results

    def _ship_broadcast(
        self, broadcast: Any, warmup: Callable[[Any], Any] | None
    ) -> None:
        """Install ``broadcast`` in every pool worker, once per value."""
        if broadcast is self._shipped_broadcast:
            return
        self._shipped_epoch += 1
        start = time.perf_counter()
        payloads = [(self._shipped_epoch, broadcast, warmup)] * self.num_workers
        installs = self._pool.map(_install_broadcast, payloads, chunksize=1)
        wall = time.perf_counter() - start
        warm_wall = max(w for _, _, w in installs) if warmup is not None else 0.0
        # Warm-ups run concurrently across workers, so the slowest one is
        # the wall-clock share of the fan-out attributable to warm-up.
        self.counters.add_setup_time("broadcast_ship", max(wall - warm_wall, 0.0))
        if warmup is not None:
            self.counters.add_setup_time("warmup", warm_wall)
        self._shipped_broadcast = broadcast
        self.broadcast_ships += 1

    def _warm_inline(self, broadcast: Any, warmup: Callable[[Any], Any]) -> None:
        """Driver-side warm-up with the same once-per-value semantics."""
        if broadcast is self._warmed_broadcast:
            return
        with self.counters.timed_setup("warmup"):
            warmup(broadcast)
        self._warmed_broadcast = broadcast

    def _record(
        self,
        phase: str,
        task_id: int,
        task: Any,
        elapsed: float,
        item_counter: Callable[[Any], int] | None,
        worker: int | str | None,
    ) -> None:
        items = item_counter(task) if item_counter is not None else 0
        self.counters.record_task(
            phase, TaskStats(task_id, elapsed, items, worker=worker)
        )
