"""Task executors: serial (deterministic) and multiprocessing.

The engine exposes one operation, :meth:`Engine.map_tasks`: apply a
function to every task of a phase, with an optional broadcast value
shared by all tasks, and record a :class:`~repro.engine.counters.TaskStats`
per task.  This mirrors the Spark usage in the paper — ``mapPartitions``
over pseudo random partitions with the broadcast two-level cell
dictionary.

The ``process`` executor ships the broadcast value to each worker process
exactly once (pool initializer), matching Spark broadcast semantics where
the dictionary is transferred per executor rather than per task.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable, Sequence
from typing import Any

from repro.engine.counters import Counters, TaskStats

__all__ = ["Engine"]

# Module-level slot for the broadcast value inside worker processes.
_WORKER_BROADCAST: Any = None


def _init_worker(broadcast: Any) -> None:
    global _WORKER_BROADCAST
    _WORKER_BROADCAST = broadcast


def _run_task(payload: tuple[Callable[..., Any], int, Any, bool]) -> tuple[int, Any, float]:
    fn, task_id, task, wants_broadcast = payload
    start = time.perf_counter()
    if wants_broadcast:
        result = fn(task, _WORKER_BROADCAST)
    else:
        result = fn(task)
    return task_id, result, time.perf_counter() - start


def _default_workers() -> int:
    return max(1, os.cpu_count() or 1)


class Engine:
    """Runs phases of tasks and collects counters.

    Parameters
    ----------
    mode:
        ``"serial"`` (default) or ``"process"``.
    num_workers:
        Worker count for the ``process`` mode; defaults to the CPU count.
    counters:
        Optional pre-existing :class:`Counters` to accumulate into.
    """

    def __init__(
        self,
        mode: str = "serial",
        num_workers: int | None = None,
        counters: Counters | None = None,
    ) -> None:
        if mode not in ("serial", "process"):
            raise ValueError(f"unknown engine mode {mode!r}")
        self.mode = mode
        if num_workers is not None and num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers if num_workers is not None else _default_workers()
        self.counters = counters if counters is not None else Counters()

    def map_tasks(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Any],
        *,
        broadcast: Any = None,
        phase: str = "map",
        item_counter: Callable[[Any], int] | None = None,
    ) -> list[Any]:
        """Apply ``fn`` to every task, in task order.

        Parameters
        ----------
        fn:
            Called as ``fn(task, broadcast)`` when ``broadcast`` is not
            ``None``, else ``fn(task)``.  Must be picklable in
            ``process`` mode.
        tasks:
            The per-partition inputs.
        broadcast:
            Read-only value shared by every task (e.g. the two-level cell
            dictionary).
        phase:
            Counter bucket for the task stats.
        item_counter:
            Optional function mapping a *task* to the number of items it
            carries, recorded in :class:`TaskStats` for the duplication
            metric.

        Returns
        -------
        list
            Results in task order.
        """
        wants_broadcast = broadcast is not None
        results: list[Any] = [None] * len(tasks)
        with self.counters.timed_phase(phase):
            if self.mode == "serial" or len(tasks) <= 1:
                for task_id, task in enumerate(tasks):
                    start = time.perf_counter()
                    result = fn(task, broadcast) if wants_broadcast else fn(task)
                    elapsed = time.perf_counter() - start
                    results[task_id] = result
                    self._record(phase, task_id, task, elapsed, item_counter)
            else:
                self._run_process_pool(
                    fn, tasks, broadcast, wants_broadcast, phase, item_counter, results
                )
        return results

    def _run_process_pool(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Any],
        broadcast: Any,
        wants_broadcast: bool,
        phase: str,
        item_counter: Callable[[Any], int] | None,
        results: list[Any],
    ) -> None:
        import multiprocessing as mp

        ctx = mp.get_context("spawn" if os.name == "nt" else "fork")
        workers = min(self.num_workers, len(tasks))
        payloads = [
            (fn, task_id, task, wants_broadcast) for task_id, task in enumerate(tasks)
        ]
        with ctx.Pool(workers, initializer=_init_worker, initargs=(broadcast,)) as pool:
            for task_id, result, elapsed in pool.imap_unordered(_run_task, payloads):
                results[task_id] = result
                self._record(phase, task_id, tasks[task_id], elapsed, item_counter)

    def _record(
        self,
        phase: str,
        task_id: int,
        task: Any,
        elapsed: float,
        item_counter: Callable[[Any], int] | None,
    ) -> None:
        items = item_counter(task) if item_counter is not None else 0
        self.counters.record_task(phase, TaskStats(task_id, elapsed, items))
