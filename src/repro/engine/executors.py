"""Task executors: serial (deterministic) and a persistent process pool.

The engine exposes one operation, :meth:`Engine.map_tasks`: apply a
function to every task of a phase, with an optional broadcast value
shared by all tasks, and record a :class:`~repro.engine.counters.TaskStats`
per task.  This mirrors the Spark usage in the paper — ``mapPartitions``
over pseudo random partitions with the broadcast two-level cell
dictionary.

Process-mode semantics (matching Spark's executor model):

* **One pool per engine lifetime.**  The worker pool is created lazily
  on the first parallel ``map_tasks`` call and then reused by every
  subsequent phase and every subsequent ``fit()`` that shares the
  engine.  Use the engine as a context manager (``with Engine("process")
  as e: ...``) or call :meth:`Engine.close` to release the workers;
  ``close()`` is idempotent and permanent — mapping on a closed engine
  fails with :class:`~repro.engine.faults.EngineClosedError` instead of
  silently resurrecting workers.
* **Epoch-tagged broadcast caching.**  Each distinct broadcast value is
  shipped to each worker exactly once, via a barrier fan-out that lands
  one install task on every worker.  An epoch counter tags the installed
  value; re-mapping with the *same* broadcast object ships nothing,
  while a new broadcast bumps the epoch and invalidates the per-worker
  module-level cache.  Every task carries its expected epoch, so a stale
  cache raises instead of silently computing with old data.
* **Warm-up hook.**  ``map_tasks(..., warmup=fn)`` runs ``fn(broadcast)``
  once per worker during broadcast installation (once on the driver in
  serial mode).  Phase II uses this to build the region-query engine
  (kd-tree, center caches) *before* the first task, so first-task
  timings measure clustering, not index construction.
* **Setup vs. compute accounting.**  Pool startup, broadcast shipping,
  and warm-up are recorded in the counters' ``engine.setup`` bucket
  (:attr:`~repro.engine.counters.Counters.setup_seconds`), outside every
  phase timer, so Fig 12/13 reproductions are not polluted by one-time
  engine overhead.
* **Fault tolerance (opt-in).**  Constructing the engine with a
  :class:`~repro.engine.faults.FaultPolicy` swaps the parallel path for
  a driver-side recovery loop: per-task retries with exponential
  backoff, per-task and per-phase timeouts, a worker-death watchdog
  that re-spawns the pool (re-shipping broadcasts under a fresh epoch),
  and straggler detection with speculative re-execution — the Spark
  safety net the paper's substrate provides for free.  Recovery events
  land in the counters' fault buckets (``engine.retries``,
  ``engine.timeouts``, ``engine.respawns``, ``engine.speculations``)
  and, like setup time, never enter phase breakdowns.
* **Observability (opt-in).**  Constructing the engine with a
  :class:`~repro.obs.spans.Tracer` records every phase as a span tree —
  phase → task → attempt, with worker ids, broadcast epochs, and
  retry/timeout/respawn/speculation event spans — exportable as JSONL
  or Chrome ``trace_event`` JSON (see :mod:`repro.obs`).  ``profile=
  True`` additionally runs each task body under ``cProfile`` and merges
  the per-worker captures into one stats view.  Both default off; the
  untraced fast path costs one no-op call per recording site.
"""

from __future__ import annotations

import heapq
import os
import pickle
import statistics
import time
from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from repro.engine.counters import DRIVER_WORKER, Counters, TaskStats
from repro.obs.profiling import dump_merged_profile, profile_call
from repro.obs.spans import (
    EVENT_RESPAWN,
    EVENT_RETRY,
    EVENT_SPECULATION,
    EVENT_TIMEOUT,
    NULL_TRACER,
    Span,
    Tracer,
)
from repro.engine.faults import (
    FAULT_RESPAWNS,
    FAULT_RETRIES,
    FAULT_SPECULATIONS,
    FAULT_TIMEOUTS,
    EngineClosedError,
    FaultInjector,
    FaultPolicy,
    PhaseTimeoutError,
    StaleBroadcastError,
    TaskFailedError,
)

__all__ = ["Engine"]

#: Sentinel meaning "no broadcast has been shipped/warmed yet" — distinct
#: from ``None``, which is a legal (if pointless) broadcast value.
_NOTHING = object()

#: Deadlock backstop for the broadcast-install rendezvous: if a worker
#: died, the barrier breaks loudly after this many seconds instead of
#: hanging the fan-out forever.
_BARRIER_TIMEOUT_S = 120.0

# ----------------------------------------------------------------------
# Worker-side module state.  Lives in each pool worker process; the
# driver's copy is only used when tasks run inline.
# ----------------------------------------------------------------------
_WORKER_BROADCAST: Any = None
_WORKER_EPOCH: int = -1
_WORKER_BARRIER: Any = None
_WORKER_INSTALLS: int = 0
#: Shared-memory attachments backing the current broadcast (shm channel
#: only): the flat segment and/or sharded attachments, each exposing
#: ``close()``; kept so a later install can unmap the previous epoch.
_WORKER_SHM: list[Any] = []


def _init_worker(barrier: Any) -> None:
    """Pool initializer: reset the broadcast cache, keep the barrier."""
    global _WORKER_BROADCAST, _WORKER_EPOCH, _WORKER_BARRIER, _WORKER_INSTALLS
    global _WORKER_SHM
    _WORKER_BARRIER = barrier
    _WORKER_BROADCAST = None
    _WORKER_EPOCH = -1
    _WORKER_INSTALLS = 0
    _WORKER_SHM = []


def _install_broadcast(
    payload: tuple[int, str, bytes, Any, Callable[[Any], Any] | None],
) -> tuple[int, int, float]:
    """Install one broadcast epoch in this worker, then rendezvous.

    ``payload`` is ``(epoch, channel, blob, handle, warmup)``: the value
    arrives pre-pickled by the driver (``blob``), either self-contained
    (``channel == "pickle"``) or with its dictionaries hoisted into
    shared memory (``channel == "shm"``), ``handle`` being the pair
    ``(flat_segment_handle | None, sharded_dictionary_handles)``.  The
    flat segment (if any) and every sharded root segment are attached
    eagerly; leaf shard segments attach lazily through the partial
    dictionary's LRU store, bounded by the broadcast budget.

    The trailing ``barrier.wait()`` keeps this worker busy until *every*
    worker has taken exactly one install task, which is what guarantees
    the fan-out reaches the whole pool instead of piling onto one idle
    worker.
    """
    epoch, channel, blob, handle, warmup = payload
    global _WORKER_BROADCAST, _WORKER_EPOCH, _WORKER_INSTALLS, _WORKER_SHM
    if channel == "shm":
        from repro.engine import shm as _shm

        flat_handle, sharded_handles = handle
        attachments: list[Any] = []
        flat_shm = None
        if flat_handle is not None:
            flat_shm = _shm.attach_segment(flat_handle)
            attachments.append(flat_shm)
        value, sharded_attachments = _shm.import_broadcast_parts(
            blob, flat_handle, flat_shm, sharded_handles
        )
        attachments.extend(sharded_attachments)
    else:
        attachments = []
        value = pickle.loads(blob)
    previous = _WORKER_SHM
    _WORKER_BROADCAST = value
    _WORKER_SHM = attachments
    _WORKER_EPOCH = epoch
    _WORKER_INSTALLS += 1
    for stale in previous:
        # The prior epoch's views just became garbage; unmap them.  A
        # lingering reference would make close() raise — leave the unmap
        # to process exit in that case rather than fail the install.
        try:
            stale.close()
        except Exception:
            pass
    warm_seconds = 0.0
    if warmup is not None:
        start = time.perf_counter()
        warmup(value)
        warm_seconds = time.perf_counter() - start
    _WORKER_BARRIER.wait(timeout=_BARRIER_TIMEOUT_S)
    return os.getpid(), _WORKER_INSTALLS, warm_seconds


def _collect_residency(_token: int) -> tuple[int, dict]:
    """Report this worker's shard-residency ledger, then rendezvous.

    The barrier gives the fan-out the same every-worker-exactly-once
    guarantee as :func:`_install_broadcast`.
    """
    from repro.core.sharding import live_residency_stats

    stats = live_residency_stats()
    _WORKER_BARRIER.wait(timeout=_BARRIER_TIMEOUT_S)
    return os.getpid(), stats


def _run_task(
    payload: tuple[
        Callable[..., Any], int, Any, int | None, str, int,
        FaultInjector | None, bool,
    ],
) -> tuple[int, Any, float, int, float, bytes | None]:
    """Worker-side task body.

    Returns ``(task_id, result, elapsed, pid, start_ts, profile_blob)``.
    ``start_ts`` is the worker's ``perf_counter`` at compute start — on
    Linux (where the pool forks) that clock is ``CLOCK_MONOTONIC``,
    system-wide, so the driver's tracer can place the execution window
    on its own time axis.
    """
    fn, task_id, task, epoch, phase, attempt, injector, profile = payload
    if injector is not None:
        # Chaos happens before the task timer starts: an injected delay
        # models infrastructure slowness, not task compute.
        injector.apply(phase, task_id, attempt, allow_crash=True)
    start = time.perf_counter()
    if epoch is None:
        args = (task,)
    else:
        if _WORKER_EPOCH != epoch:
            raise StaleBroadcastError(
                f"stale broadcast in worker {os.getpid()}: cached epoch "
                f"{_WORKER_EPOCH}, task expects {epoch}"
            )
        args = (task, _WORKER_BROADCAST)
    blob = None
    if profile:
        result, blob = profile_call(fn, *args)
    else:
        result = fn(*args)
    return task_id, result, time.perf_counter() - start, os.getpid(), start, blob


def _default_workers() -> int:
    return max(1, os.cpu_count() or 1)


def _default_start_method() -> str:
    # fork is fastest where safe; Windows (and notably macOS since 3.8's
    # default flip) wants spawn.  Everything here is spawn-safe anyway.
    return "fork" if os.name == "posix" else "spawn"


@dataclass
class _Flight:
    """Driver-side record of one in-flight task attempt."""

    task_id: int
    attempt: int
    submitted_at: float
    async_result: Any
    timed_out: bool = False


class Engine:
    """Runs phases of tasks and collects counters.

    Parameters
    ----------
    mode:
        ``"serial"`` (default) or ``"process"``.
    num_workers:
        Worker count for the ``process`` mode; defaults to the CPU count.
    counters:
        Optional pre-existing :class:`Counters` to accumulate into.
    start_method:
        Multiprocessing start method for the pool (``"fork"`` or
        ``"spawn"``); defaults per platform.  The engine is spawn-safe:
        all worker entry points are module-level functions and the
        rendezvous barrier is shipped through the pool initializer.
    fault_policy:
        Optional :class:`~repro.engine.faults.FaultPolicy`.  When set,
        parallel ``map_tasks`` calls run under a recovery loop (retries,
        timeouts, pool re-spawn, speculation) and inline calls retry
        failed tasks with backoff; the policy's
        :class:`~repro.engine.faults.FaultInjector`, if any, wraps every
        task attempt in every mode.  Without a policy the engine keeps
        the zero-overhead fast path, where a single task failure fails
        the phase.
    tracer:
        Optional :class:`~repro.obs.spans.Tracer`.  When set, every
        ``map_tasks`` call records a ``phase`` span with nested
        ``task``/``attempt`` spans (worker id, broadcast epoch,
        retry/timeout/respawn/speculation event annotations), and engine
        setup steps record ``setup`` spans.  Defaults to the shared
        no-op :data:`~repro.obs.spans.NULL_TRACER`.
    profile:
        When ``True``, every task body runs under ``cProfile``; the
        per-task profiles accumulate in :attr:`profile_blobs` and merge
        via :meth:`merged_profile` / :meth:`dump_profile`.
    broadcast_channel:
        How broadcast values cross the process boundary: ``"pickle"``
        ships one self-contained pickle blob per worker; ``"shm"`` hoists
        every :class:`~repro.core.dictionary.FlatCellDictionary` inside
        the value into a single ``multiprocessing.shared_memory`` segment
        that workers map zero-copy, pickling only a small descriptor;
        ``"auto"`` (default) uses ``shm`` whenever the value contains a
        flat dictionary and ``pickle`` otherwise.  A forced ``"shm"``
        likewise degrades to a plain blob when there is nothing columnar
        to hoist.  Bytes shipped per channel are accounted in
        :attr:`Counters.broadcast_bytes`; segments are unlinked on
        :meth:`close`, pool re-spawn, and interpreter exit.

    Notes
    -----
    In ``process`` mode the engine owns a persistent worker pool.  It is
    created lazily by the first parallel :meth:`map_tasks` call and
    reused until :meth:`close` (also invoked by ``with``-exit).
    ``close()`` is idempotent and final: later :meth:`map_tasks` calls
    raise :class:`~repro.engine.faults.EngineClosedError` rather than
    resurrecting a pool behind the caller's back.

    Diagnostics useful for tests and benches: :attr:`pools_created`
    counts pool startups over the engine's lifetime and
    :attr:`broadcast_ships` counts broadcast fan-outs (one per *distinct*
    broadcast value, not one per ``map_tasks`` call).
    """

    def __init__(
        self,
        mode: str = "serial",
        num_workers: int | None = None,
        counters: Counters | None = None,
        *,
        start_method: str | None = None,
        fault_policy: FaultPolicy | None = None,
        tracer: Tracer | None = None,
        profile: bool = False,
        broadcast_channel: str = "auto",
    ) -> None:
        if mode not in ("serial", "process"):
            raise ValueError(f"unknown engine mode {mode!r}")
        if broadcast_channel not in ("auto", "pickle", "shm"):
            raise ValueError(
                f"unknown broadcast channel {broadcast_channel!r}; "
                "choose 'auto', 'pickle', or 'shm'"
            )
        self.mode = mode
        self.broadcast_channel = broadcast_channel
        if num_workers is not None and num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers if num_workers is not None else _default_workers()
        self.counters = counters if counters is not None else Counters()
        self.start_method = start_method if start_method is not None else _default_start_method()
        self.fault_policy = fault_policy
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.profile = bool(profile)
        #: Marshaled per-task cProfile stats (``profile=True`` only).
        self.profile_blobs: list[bytes] = []
        # Persistent-pool state.
        self._pool: Any = None
        self._barrier: Any = None
        self._worker_pids: set[int] | None = None
        self._shipped_broadcast: Any = _NOTHING
        self._shipped_epoch = 0
        self._closed = False
        # Serial-mode warm-up dedup (same identity semantics as shipping).
        self._warmed_broadcast: Any = _NOTHING
        #: Live shared-memory segments this driver created (shm channel);
        #: every one is unlinked on teardown/close — crash paths included.
        self._segments: list[Any] = []
        # Encoded-broadcast cache: a pool re-spawn re-ships the *same*
        # value, so the encode (and the segments it created) can be
        # reused instead of re-packed — the replacement workers simply
        # re-attach the segments that already exist.
        self._encoded_broadcast: Any = _NOTHING
        self._encoded: tuple[str, bytes, Any] | None = None
        # Lifetime diagnostics.
        self.pools_created = 0
        self.broadcast_ships = 0

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Shut down the engine; idempotent, safe to call at any time.

        Uses ``terminate`` rather than a graceful ``close``/``join`` so
        that closing cannot hang on workers stuck in a crashed or
        abandoned phase.  After ``close()`` the engine refuses new work
        (:class:`~repro.engine.faults.EngineClosedError`) — callers that
        want more parallel maps should build a fresh :class:`Engine`.
        """
        self._closed = True
        self._teardown_pool()

    def _teardown_pool(self, *, keep_segments: bool = False) -> None:
        """Release the pool (if any) and reset broadcast-cache state.

        ``keep_segments=True`` preserves the driver's live segments and
        encoded-broadcast cache across a re-spawn: the replacement pool
        re-attaches the existing segments instead of paying for a fresh
        pack of the (unchanged) broadcast value.
        """
        pool, self._pool = self._pool, None
        self._barrier = None
        self._worker_pids = None
        self._shipped_broadcast = _NOTHING
        if pool is not None:
            try:
                pool.terminate()
                pool.join()
            except Exception:
                pass
        if not keep_segments:
            self._destroy_segments()

    def _destroy_segments(self) -> None:
        """Unlink every live shared-memory segment this driver created."""
        self._encoded_broadcast = _NOTHING
        self._encoded = None
        segments, self._segments = self._segments, []
        if segments:
            from repro.engine.shm import destroy_segment

            for segment in segments:
                destroy_segment(segment)

    def __del__(self) -> None:
        pool = getattr(self, "_pool", None)
        if pool is not None:
            try:
                pool.terminate()
            except Exception:
                pass
        try:
            self._destroy_segments()
        except Exception:
            pass

    def _ensure_pool(self) -> Any:
        if self._pool is None:
            import multiprocessing as mp

            with self.counters.timed_setup("pool_startup"), self.tracer.span(
                "pool_startup", "setup"
            ):
                ctx = mp.get_context(self.start_method)
                self._barrier = ctx.Barrier(self.num_workers)
                self._pool = ctx.Pool(
                    self.num_workers,
                    initializer=_init_worker,
                    initargs=(self._barrier,),
                )
            self.pools_created += 1
            self._shipped_broadcast = _NOTHING
            self._worker_pids = self._snapshot_worker_pids()
        return self._pool

    def _snapshot_worker_pids(self) -> set[int] | None:
        procs = getattr(self._pool, "_pool", None)
        if procs is None:
            return None
        return {p.pid for p in procs}

    def _pool_damaged(self) -> bool:
        """Did a worker die (or get replaced) since pool creation?

        ``multiprocessing.Pool`` silently replaces crashed workers, but
        the replacements miss our broadcast cache and the crashed task's
        result is lost forever — both repaired by a full re-spawn.  The
        check reads the pool's worker list; if that private attribute
        ever disappears, the :class:`StaleBroadcastError` raised by a
        replacement worker still triggers the same re-spawn path.
        """
        if self._pool is None or self._worker_pids is None:
            return False
        procs = getattr(self._pool, "_pool", None)
        if procs is None:
            return False
        if any(p.exitcode is not None for p in procs):
            return True
        return {p.pid for p in procs} != self._worker_pids

    @property
    def broadcast_epoch(self) -> int:
        """Epoch of the broadcast currently installed in the pool."""
        return self._shipped_epoch

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------

    def map_tasks(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Any],
        *,
        broadcast: Any = None,
        phase: str = "map",
        trace_phase: str | None = None,
        item_counter: Callable[[Any], int] | None = None,
        warmup: Callable[[Any], Any] | None = None,
    ) -> list[Any]:
        """Apply ``fn`` to every task, in task order.

        Parameters
        ----------
        fn:
            Called as ``fn(task, broadcast)`` when ``broadcast`` is not
            ``None``, else ``fn(task)``.  Must be picklable in
            ``process`` mode.
        tasks:
            The per-partition inputs.
        broadcast:
            Read-only value shared by every task (e.g. the two-level cell
            dictionary).  Shipped to each worker at most once per
            distinct value (identity-compared): passing the same object
            to consecutive calls reuses the per-worker cache.
        phase:
            Counter bucket for the task stats.
        trace_phase:
            Optional display name for this call's spans (phase span
            name, task/attempt phase coordinates, fault-injector phase
            key).  Defaults to ``phase``.  Lets repeated calls within
            one logical phase — e.g. tournament rounds of Phase III-1 —
            show up as distinct spans while their time still aggregates
            into the single ``phase`` counter bucket.
        item_counter:
            Optional function mapping a *task* to the number of items it
            carries, recorded in :class:`TaskStats` for the duplication
            metric.
        warmup:
            Optional ``warmup(broadcast)`` hook run once per worker while
            the broadcast is installed (once on the driver when tasks run
            inline), before any task of this broadcast executes.  Its
            cost lands in the ``engine.setup`` bucket, not in ``phase``.

        Returns
        -------
        list
            Results in task order.

        Raises
        ------
        EngineClosedError
            If :meth:`close` was called; a closed engine fails new work
            cleanly instead of resurrecting its pool.
        """
        if self._closed:
            raise EngineClosedError(
                "map_tasks on a closed Engine; construct a new Engine instead"
            )
        wants_broadcast = broadcast is not None
        label = trace_phase if trace_phase is not None else phase
        results: list[Any] = [None] * len(tasks)
        if self.mode == "process" and len(tasks) > 1:
            # Setup (pool startup + broadcast shipping + warm-up) happens
            # OUTSIDE the phase timer: it is engine overhead, not work.
            pool = self._ensure_pool()
            epoch: int | None = None
            if wants_broadcast:
                self._ship_broadcast(broadcast, warmup)
                epoch = self._shipped_epoch
            if self.fault_policy is not None:
                return self._map_with_recovery(
                    fn,
                    tasks,
                    broadcast=broadcast,
                    wants_broadcast=wants_broadcast,
                    warmup=warmup,
                    phase=label,
                    counter_phase=phase,
                    item_counter=item_counter,
                )
            payloads = [
                (fn, task_id, task, epoch, label, 0, None, self.profile)
                for task_id, task in enumerate(tasks)
            ]
            with self.counters.timed_phase(phase), self.tracer.span(
                label, "phase", phase=label
            ):
                for task_id, result, elapsed, pid, start_ts, blob in (
                    pool.imap_unordered(_run_task, payloads)
                ):
                    results[task_id] = result
                    self._record(phase, task_id, tasks[task_id], elapsed, item_counter, pid)
                    if blob is not None:
                        self.profile_blobs.append(blob)
                    self._trace_oneshot(
                        label, task_id, start_ts, start_ts + elapsed, pid, epoch
                    )
        else:
            if wants_broadcast and warmup is not None:
                self._warm_inline(broadcast, warmup)
            with self.counters.timed_phase(phase), self.tracer.span(
                label, "phase", phase=label
            ):
                for task_id, task in enumerate(tasks):
                    if self.fault_policy is not None:
                        results[task_id] = self._run_inline_with_retries(
                            fn, task_id, task, broadcast, wants_broadcast,
                            label, phase, item_counter,
                        )
                        continue
                    start = time.perf_counter()
                    if self.profile:
                        args = (task, broadcast) if wants_broadcast else (task,)
                        result, blob = profile_call(fn, *args)
                        self.profile_blobs.append(blob)
                    else:
                        result = fn(task, broadcast) if wants_broadcast else fn(task)
                    elapsed = time.perf_counter() - start
                    results[task_id] = result
                    self._record(
                        phase, task_id, task, elapsed, item_counter, DRIVER_WORKER
                    )
                    self._trace_oneshot(
                        label, task_id, start, start + elapsed, DRIVER_WORKER, None
                    )
        return results

    def _trace_oneshot(
        self,
        phase: str,
        task_id: int,
        start_s: float,
        end_s: float,
        worker: int | str,
        epoch: int | None,
    ) -> None:
        """Record the task + single-attempt spans of a fast-path task.

        The current tracer parent is the phase span (both call sites sit
        inside ``tracer.span(phase, ...)``), so the nesting comes out as
        phase → task → attempt with one attempt per task.
        """
        tracer = self.tracer
        if not tracer.enabled:
            return
        task_span = tracer.record_span(
            f"task {task_id}", "task", start_s=start_s, end_s=end_s,
            phase=phase, task_id=task_id, worker=worker,
        )
        tracer.record_span(
            f"task {task_id}#0", "attempt", start_s=start_s, end_s=end_s,
            parent_id=task_span.span_id, phase=phase, task_id=task_id,
            attempt=0, worker=worker, epoch=epoch,
            annotations={"compute_s": end_s - start_s, "winner": True},
        )

    # ------------------------------------------------------------------
    # Fault-tolerant execution
    # ------------------------------------------------------------------

    def _run_inline_with_retries(
        self,
        fn: Callable[..., Any],
        task_id: int,
        task: Any,
        broadcast: Any,
        wants_broadcast: bool,
        phase: str,
        counter_phase: str,
        item_counter: Callable[[Any], int] | None,
    ) -> Any:
        """Inline (driver-side) execution under the retry policy.

        Timeouts and speculation need preemption, which inline execution
        cannot do, so only the retry/backoff part of the policy applies;
        injected crashes degrade to exceptions (the driver must live).
        ``phase`` is the display/injector label (``trace_phase`` of
        :meth:`map_tasks`); ``counter_phase`` is the counter bucket.
        """
        policy = self.fault_policy
        injector = policy.injector
        tracer = self.tracer
        task_span: Span | None = None
        if tracer.enabled:
            task_span = tracer.start_span(
                f"task {task_id}", "task", push=False,
                phase=phase, task_id=task_id, worker=DRIVER_WORKER,
            )
        failures = 0
        while True:
            start = time.perf_counter()
            try:
                if injector is not None:
                    injector.apply(phase, task_id, failures, allow_crash=False)
                    start = time.perf_counter()
                result = fn(task, broadcast) if wants_broadcast else fn(task)
            except Exception as exc:
                if task_span is not None:
                    tracer.record_span(
                        f"task {task_id}#{failures}", "attempt",
                        start_s=start, end_s=time.perf_counter(),
                        parent_id=task_span.span_id, phase=phase,
                        task_id=task_id, attempt=failures,
                        worker=DRIVER_WORKER, status="error",
                        annotations={"error": repr(exc)},
                    )
                failures += 1
                if failures > policy.max_retries:
                    if task_span is not None:
                        tracer.end_span(task_span, status="error")
                    raise TaskFailedError(
                        f"task {task_id} of phase {phase!r} failed "
                        f"{failures} attempts (retry budget {policy.max_retries})"
                    ) from exc
                self.counters.add_fault_event(FAULT_RETRIES)
                tracer.event(
                    EVENT_RETRY, phase=phase, task_id=task_id,
                    parent_id=None if task_span is None else task_span.parent_id,
                )
                time.sleep(policy.backoff(failures))
                continue
            elapsed = time.perf_counter() - start
            self._record(
                counter_phase, task_id, task, elapsed, item_counter, DRIVER_WORKER
            )
            if task_span is not None:
                tracer.record_span(
                    f"task {task_id}#{failures}", "attempt",
                    start_s=start, end_s=start + elapsed,
                    parent_id=task_span.span_id, phase=phase,
                    task_id=task_id, attempt=failures, worker=DRIVER_WORKER,
                    annotations={"compute_s": elapsed, "winner": True},
                )
                tracer.end_span(task_span)
            return result

    def _map_with_recovery(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Any],
        *,
        broadcast: Any,
        wants_broadcast: bool,
        warmup: Callable[[Any], Any] | None,
        phase: str,
        counter_phase: str,
        item_counter: Callable[[Any], int] | None,
    ) -> list[Any]:
        """The driver-side recovery loop (process mode, ``len(tasks) > 1``).

        Admission control keeps at most ``num_workers`` attempts in the
        pool, so an attempt's age measures *execution* time, not
        pool-queue time — without it, attempts queued behind a slow
        worker would burn their retry budget before ever running.  The
        loop then polls: reaps completions, retries failures with
        backoff, abandons attempts that exceed the task timeout (the
        abandoned attempt keeps racing its retry — first completion
        wins — but holds its worker slot, since that worker really is
        busy), re-spawns the pool when a worker died, and launches
        speculative duplicates for stragglers on free slots.  Phase time
        excludes re-spawn overhead, which is accounted as engine setup.
        ``phase`` is the display/injector label (``trace_phase`` of
        :meth:`map_tasks`); ``counter_phase`` is the counter bucket.
        """
        policy = self.fault_policy
        injector = policy.injector
        tracer = self.tracer
        #: Open ``task`` spans by task id (first launch → accepted
        #: completion); attempts parent under these.
        task_spans: dict[int, Span] = {}
        phase_span = tracer.start_span(phase, "phase", phase=phase)
        n = len(tasks)
        results: list[Any] = [None] * n
        done = [False] * n
        launches = [0] * n        # attempt index, keeps injector draws unique
        failures = [0] * n        # failures charged against the retry budget
        speculated = [False] * n
        flights: list[_Flight] = []
        #: Launch queue: ``(task_id, kind)`` with kind one of
        #: ``"initial"``/``"retry"``/``"respawn"``/``"speculation"`` —
        #: fault events are counted when an entry actually launches.
        ready: deque[tuple[int, str]] = deque(
            (task_id, "initial") for task_id in range(n)
        )
        retry_heap: list[tuple[float, int, int]] = []  # (due, seq, task_id)
        retry_seq = 0
        durations: list[float] = []
        completed = 0
        respawns = 0
        epoch = self._shipped_epoch if wants_broadcast else None
        start = time.perf_counter()
        recovery_setup = 0.0      # mid-phase respawn wall, accounted as setup

        def launch_ready() -> bool:
            """Fill free worker slots from the launch queue."""
            launched = False
            while ready and len(flights) < self.num_workers:
                task_id, kind = ready.popleft()
                if done[task_id]:
                    continue
                if kind == "retry":
                    self.counters.add_fault_event(FAULT_RETRIES)
                    tracer.event(EVENT_RETRY, phase=phase, task_id=task_id)
                elif kind == "speculation":
                    self.counters.add_fault_event(FAULT_SPECULATIONS)
                    tracer.event(EVENT_SPECULATION, phase=phase, task_id=task_id)
                attempt = launches[task_id]
                launches[task_id] += 1
                if tracer.enabled and task_id not in task_spans:
                    task_spans[task_id] = tracer.start_span(
                        f"task {task_id}", "task", push=False,
                        parent_id=phase_span.span_id,
                        phase=phase, task_id=task_id,
                    )
                payload = (
                    fn, task_id, tasks[task_id], epoch, phase, attempt,
                    injector, self.profile,
                )
                flights.append(
                    _Flight(
                        task_id,
                        attempt,
                        time.perf_counter(),
                        self._pool.apply_async(_run_task, (payload,)),
                    )
                )
                launched = True
            return launched

        def racing_attempts(task_id: int) -> int:
            """Attempts that could still complete this task: in flight
            (timed-out ones keep racing their retry) or queued."""
            return sum(1 for f in flights if f.task_id == task_id) + sum(
                1 for tid, _ in ready if tid == task_id
            )

        def fail_attempt(task_id: int, exc: BaseException) -> None:
            nonlocal retry_seq
            if done[task_id]:
                return
            failures[task_id] += 1
            if failures[task_id] > policy.max_retries:
                if racing_attempts(task_id) > 0:
                    return  # a racing attempt may still save the task
                raise TaskFailedError(
                    f"task {task_id} of phase {phase!r} failed "
                    f"{failures[task_id]} attempts "
                    f"(retry budget {policy.max_retries})"
                ) from exc
            retry_seq += 1
            heapq.heappush(
                retry_heap,
                (
                    time.perf_counter() + policy.backoff(failures[task_id]),
                    retry_seq,
                    task_id,
                ),
            )

        def record_flight_span(
            flight: _Flight, status: str, **annotations: Any
        ) -> None:
            """Close out one in-flight attempt as a trace span."""
            if not tracer.enabled:
                return
            if flight.timed_out:
                annotations.setdefault("timed_out", True)
            parent = task_spans.get(flight.task_id)
            tracer.record_span(
                f"task {flight.task_id}#{flight.attempt}", "attempt",
                start_s=flight.submitted_at, end_s=time.perf_counter(),
                parent_id=parent.span_id if parent is not None else phase_span.span_id,
                phase=phase, task_id=flight.task_id, attempt=flight.attempt,
                epoch=epoch, status=status, annotations=annotations,
            )

        def respawn(reason: str) -> None:
            nonlocal respawns, recovery_setup, epoch
            respawns += 1
            if respawns > policy.max_respawns:
                raise TaskFailedError(
                    f"pool re-spawn budget ({policy.max_respawns}) exhausted "
                    f"during phase {phase!r}: {reason}"
                )
            # Every in-flight attempt dies with the pool: trace them as
            # lost before the re-spawn wipes the flight list.
            for flight in flights:
                record_flight_span(flight, "lost", reason=reason)
            t0 = time.perf_counter()
            with self.counters.timed_setup("respawn_teardown"):
                # Keep the segments: the broadcast value is unchanged, so
                # the replacement workers re-attach what already exists.
                self._teardown_pool(keep_segments=True)
            self._ensure_pool()
            if wants_broadcast:
                self._ship_broadcast(broadcast, warmup)
                epoch = self._shipped_epoch
            recovery_setup += time.perf_counter() - t0
            self.counters.add_fault_event(FAULT_RESPAWNS)
            tracer.event(EVENT_RESPAWN, phase=phase, annotations={"reason": reason})
            flights.clear()
            retry_heap.clear()
            ready.clear()
            ready.extend(
                (task_id, "respawn") for task_id in range(n) if not done[task_id]
            )

        finished = False
        try:
            while completed < n:
                now = time.perf_counter()
                if (
                    policy.phase_timeout_s is not None
                    and now - start - recovery_setup > policy.phase_timeout_s
                ):
                    self.counters.add_fault_event(FAULT_TIMEOUTS)
                    tracer.event(
                        EVENT_TIMEOUT,
                        phase=phase,
                        annotations={"reason": "phase budget exhausted"},
                    )
                    raise PhaseTimeoutError(
                        f"phase {phase!r} exceeded its "
                        f"{policy.phase_timeout_s}s budget "
                        f"({completed}/{n} tasks done)"
                    )
                if self._pool_damaged():
                    respawn("a worker process died")
                    launch_ready()
                    continue
                progressed = launch_ready()
                for flight in list(flights):
                    if flight.async_result.ready():
                        flights.remove(flight)
                        progressed = True
                        try:
                            task_id, result, elapsed, pid, start_ts, blob = (
                                flight.async_result.get()
                            )
                        except StaleBroadcastError:
                            # A silently-replaced worker ran with a cold
                            # cache; re-spawn invalidates every flight,
                            # so restart the scan from the fresh state.
                            respawn("replacement worker had a cold broadcast cache")
                            break
                        except Exception as exc:
                            record_flight_span(flight, "error", error=repr(exc))
                            fail_attempt(flight.task_id, exc)
                        else:
                            if blob is not None:
                                self.profile_blobs.append(blob)
                            won = not done[task_id]
                            if tracer.enabled:
                                parent = task_spans.get(task_id)
                                tracer.record_span(
                                    f"task {task_id}#{flight.attempt}",
                                    "attempt",
                                    start_s=start_ts, end_s=start_ts + elapsed,
                                    parent_id=(
                                        parent.span_id if parent is not None
                                        else phase_span.span_id
                                    ),
                                    phase=phase, task_id=task_id,
                                    attempt=flight.attempt, worker=pid,
                                    epoch=epoch,
                                    annotations={
                                        "compute_s": elapsed,
                                        "winner": won,
                                        **(
                                            {"timed_out": True}
                                            if flight.timed_out else {}
                                        ),
                                    },
                                )
                                if won and parent is not None:
                                    # The winning attempt's worker names
                                    # the whole task span.
                                    parent.worker = pid
                                    tracer.end_span(parent)
                            if won:
                                done[task_id] = True
                                completed += 1
                                results[task_id] = result
                                durations.append(elapsed)
                                self._record(
                                    counter_phase, task_id, tasks[task_id],
                                    elapsed, item_counter, pid,
                                )
                    elif (
                        policy.task_timeout_s is not None
                        and not flight.timed_out
                        and now - flight.submitted_at > policy.task_timeout_s
                    ):
                        # Abandon, but keep listening: if the slow
                        # original finishes before its retry, it wins.
                        flight.timed_out = True
                        progressed = True
                        if done[flight.task_id]:
                            continue
                        self.counters.add_fault_event(FAULT_TIMEOUTS)
                        tracer.event(
                            EVENT_TIMEOUT,
                            phase=phase,
                            task_id=flight.task_id,
                            attempt=flight.attempt,
                        )
                        fail_attempt(
                            flight.task_id,
                            TimeoutError(
                                f"task {flight.task_id} attempt "
                                f"{flight.attempt} exceeded "
                                f"{policy.task_timeout_s}s"
                            ),
                        )
                while retry_heap and retry_heap[0][0] <= now:
                    _, _, task_id = heapq.heappop(retry_heap)
                    if not done[task_id]:
                        ready.append((task_id, "retry"))
                        progressed = True
                if (
                    policy.speculative
                    and durations
                    and not ready
                    and len(flights) < self.num_workers
                    and completed >= max(policy.speculation_min_done, (n + 1) // 2)
                ):
                    median = statistics.median(durations)
                    threshold = max(
                        policy.straggler_factor * median,
                        policy.straggler_min_wait_s,
                    )
                    for flight in list(flights):
                        task_id = flight.task_id
                        if done[task_id] or speculated[task_id] or flight.timed_out:
                            continue
                        if now - flight.submitted_at > threshold:
                            speculated[task_id] = True
                            ready.append((task_id, "speculation"))
                            progressed = True
                if progressed:
                    launch_ready()
                else:
                    time.sleep(policy.poll_interval_s)
            finished = True
        finally:
            if tracer.enabled:
                # Keep the trace well-formed no matter how the phase
                # ended: attempts still racing (a timed-out original or
                # a speculation loser) close as abandoned, and any task
                # span without an accepted completion closes with the
                # phase's fate.
                for flight in flights:
                    record_flight_span(flight, "abandoned")
                for task_id, span in task_spans.items():
                    if not span.closed:
                        tracer.end_span(
                            span, status="ok" if done[task_id] else "error"
                        )
                tracer.end_span(
                    phase_span,
                    status="ok" if finished else "error",
                    recovery_setup_s=recovery_setup,
                )
            else:
                tracer.end_span(phase_span)
            self.counters.add_phase_time(
                counter_phase, time.perf_counter() - start - recovery_setup
            )
        return results

    # ------------------------------------------------------------------
    # Broadcast shipping
    # ------------------------------------------------------------------

    def _encode_broadcast(
        self, broadcast: Any
    ) -> tuple[str, bytes, Any, list[Any]]:
        """Serialize ``broadcast`` for fan-out on the configured channel.

        Returns ``(channel, blob, handle, segments)``.  ``auto`` (and a
        forced ``shm``) resolves to the shared-memory channel only when
        the value actually contains flat or sharded dictionaries to
        hoist; anything else ships as a plain pickle blob — there is
        nothing zero-copy about arbitrary Python objects.

        On the shm channel ``handle`` is the pair ``(flat_handle | None,
        sharded_dictionary_handles)`` and ``segments`` lists every
        shared-memory segment created: the flat segment plus, for each
        sharded dictionary, one root segment and one segment per leaf
        shard.  Creation is all-or-nothing — a failure partway destroys
        whatever was already created before re-raising, so no segment
        can leak without ever having been handed to a worker.
        """
        if self.broadcast_channel == "pickle":
            blob = pickle.dumps(broadcast, protocol=pickle.HIGHEST_PROTOCOL)
            return "pickle", blob, None, []
        from repro.engine import shm as _shm

        blob, flats, sharded = _shm.export_broadcast_parts(broadcast)
        if not flats and not sharded:
            # No columnar payload: the export blob has no persistent ids,
            # so it is an ordinary pickle stream.
            return "pickle", blob, None, []
        segments: list[Any] = []
        flat_handle = None
        try:
            if flats:
                flat_handle, flat_segment = _shm.create_segment(flats)
                segments.append(flat_segment)
            sharded_handles = []
            for dictionary in sharded:
                handle, shard_segments = _shm.create_sharded_segments(dictionary)
                segments.extend(shard_segments)
                sharded_handles.append(handle)
        except BaseException:
            for segment in segments:
                _shm.destroy_segment(segment)
            raise
        return "shm", blob, (flat_handle, tuple(sharded_handles)), segments

    def _ship_broadcast(
        self, broadcast: Any, warmup: Callable[[Any], Any] | None
    ) -> None:
        """Install ``broadcast`` in every pool worker, once per value."""
        if broadcast is self._shipped_broadcast:
            return
        self._shipped_epoch += 1
        reused = (
            broadcast is self._encoded_broadcast and self._encoded is not None
        )
        if reused:
            # Re-spawn path: same value, segments still linked — the
            # replacement workers just re-attach them.
            channel, blob, handle = self._encoded
            segments: list[Any] = []
        else:
            channel, blob, handle, segments = self._encode_broadcast(broadcast)
        live = segments if not reused else self._segments
        ship_span = self.tracer.start_span(
            "broadcast_ship", "setup", push=False, epoch=self._shipped_epoch,
            annotations={
                "channel": channel,
                "payload_bytes": len(blob),
                "segment_bytes": sum(s.size for s in live),
                "num_segments": len(live),
                "segments_reused": reused,
            },
        )
        start = time.perf_counter()
        payloads = [
            (self._shipped_epoch, channel, blob, handle, warmup)
        ] * self.num_workers
        try:
            installs = self._pool.map(_install_broadcast, payloads, chunksize=1)
        except BaseException:
            # Fan-out failed: nobody holds the new segments, reclaim
            # them (reused segments stay — the next re-spawn needs them,
            # and teardown/close unlinks them regardless).
            if segments:
                from repro.engine.shm import destroy_segment

                for segment in segments:
                    destroy_segment(segment)
            raise
        wall = time.perf_counter() - start
        self.tracer.end_span(ship_span, warmed=warmup is not None)
        if not reused:
            # Every worker has attached the new epoch (and unmapped the
            # old one), so the previous segments can be unlinked now.
            self._destroy_segments()
            self._segments.extend(segments)
            if channel == "shm":
                self._encoded_broadcast = broadcast
                self._encoded = (channel, blob, handle)
        self.counters.add_broadcast_bytes(channel, len(blob))
        if not reused and channel == "shm":
            flat_handle, sharded_handles = handle
            if flat_handle is not None:
                self.counters.add_broadcast_bytes("shm_segment", flat_handle.size)
            for sharded_handle in sharded_handles:
                self.counters.add_broadcast_bytes(
                    "shm_root_segment", sharded_handle.root.size
                )
                self.counters.add_broadcast_bytes(
                    "shm_shard_segments",
                    sum(h.size for h in sharded_handle.shards),
                )
        warm_wall = max(w for _, _, w in installs) if warmup is not None else 0.0
        # Warm-ups run concurrently across workers, so the slowest one is
        # the wall-clock share of the fan-out attributable to warm-up.
        self.counters.add_setup_time("broadcast_ship", max(wall - warm_wall, 0.0))
        if warmup is not None:
            self.counters.add_setup_time("warmup", warm_wall)
        self._shipped_broadcast = broadcast
        self.broadcast_ships += 1

    def collect_broadcast_stats(self) -> list[tuple[int, dict]]:
        """Gather each worker's shard-residency ledger (process mode).

        Fans one :func:`_collect_residency` task to every worker with the
        same barrier rendezvous as a broadcast ship.  Returns ``[(pid,
        stats_dict), ...]`` — empty when there is no live pool or the
        pool is damaged (a crashed worker cannot report; its replacement
        has nothing to say).
        """
        if self.mode != "process" or self._pool is None or self._pool_damaged():
            return []
        tokens = list(range(self.num_workers))
        try:
            return self._pool.map(_collect_residency, tokens, chunksize=1)
        except Exception:
            return []

    def _warm_inline(self, broadcast: Any, warmup: Callable[[Any], Any]) -> None:
        """Driver-side warm-up with the same once-per-value semantics."""
        if broadcast is self._warmed_broadcast:
            return
        with self.counters.timed_setup("warmup"), self.tracer.span(
            "warmup", "setup"
        ):
            warmup(broadcast)
        self._warmed_broadcast = broadcast

    # ------------------------------------------------------------------
    # Profiling
    # ------------------------------------------------------------------

    def merged_profile(self):
        """Merge the per-task cProfile captures into one
        :class:`pstats.Stats` (``None`` if profiling was off or no task
        ran).  Requires ``Engine(profile=True)``."""
        from repro.obs.profiling import merge_profile_blobs

        return merge_profile_blobs(self.profile_blobs)

    def dump_profile(self, path: str) -> bool:
        """Write the merged profile as a standard pstats dump file.
        Returns False (and writes nothing) when no profile was captured."""
        return dump_merged_profile(self.profile_blobs, path) is not None

    def _record(
        self,
        phase: str,
        task_id: int,
        task: Any,
        elapsed: float,
        item_counter: Callable[[Any], int] | None,
        worker: int | str | None,
    ) -> None:
        items = item_counter(task) if item_counter is not None else 0
        self.counters.record_task(
            phase, TaskStats(task_id, elapsed, items, worker=worker)
        )
