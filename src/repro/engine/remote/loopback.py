"""Loopback harness: N real node agents on 127.0.0.1.

Spawns each agent as a genuine subprocess (``python -m repro.node``) on
an ephemeral port, parses the "listening" line for the bound address,
and yields the ``host:port`` list ready to hand to
``Engine(executor="remote", nodes=...)``.  Real processes — not
threads — so node death, reconnects, and per-node shm segments behave
exactly as they would across machines, just without the network.

Teardown is defensive about chaos: killed agents (``node_crash``) skip
their own cleanup, so the harness terminates whatever still runs and
unlinks any ``/dev/shm`` segments left behind by agent pids — the
loopback stand-in for a crashed machine taking its shm with it.  Each
agent runs in its own session (process group), and teardown signals the
whole group: a SIGKILLed or wedged agent cannot orphan its forked pool
workers.
"""

from __future__ import annotations

import contextlib
import glob
import os
import signal
import subprocess
import sys
import time
from collections.abc import Iterator

__all__ = ["loopback_nodes"]

_LISTEN_PREFIX = "rp-dbscan node listening on "


def _src_root() -> str:
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _cleanup_agent_segments(pids: list[int]) -> None:
    from repro.engine.shm import SHM_NAME_PREFIX

    for pid in pids:
        pattern = f"/dev/shm/{SHM_NAME_PREFIX}{pid:x}_*"
        for path in glob.glob(pattern):
            with contextlib.suppress(OSError):
                os.unlink(path)


@contextlib.contextmanager
def loopback_nodes(
    num_nodes: int = 2,
    workers: int = 2,
    *,
    broadcast_channel: str = "auto",
    heartbeat_interval_s: float = 0.2,
    startup_timeout_s: float = 30.0,
) -> Iterator[list[str]]:
    """Run ``num_nodes`` agents on 127.0.0.1; yields their addresses."""
    env = dict(os.environ)
    src = _src_root()
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else f"{src}{os.pathsep}{existing}"
    procs: list[subprocess.Popen] = []
    addrs: list[str] = []
    try:
        for _ in range(num_nodes):
            proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro.node",
                    "--listen", "127.0.0.1:0",
                    "--workers", str(workers),
                    "--broadcast", broadcast_channel,
                    "--heartbeat-interval", str(heartbeat_interval_s),
                ],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                text=True,
                start_new_session=True,
            )
            procs.append(proc)
        deadline = time.monotonic() + startup_timeout_s
        for proc in procs:
            line = proc.stdout.readline()
            if not line.startswith(_LISTEN_PREFIX):
                raise RuntimeError(
                    f"node agent failed to start (pid {proc.pid}): {line!r}"
                )
            if time.monotonic() > deadline:
                raise RuntimeError("node agents took too long to start")
            addrs.append(line[len(_LISTEN_PREFIX):].split()[0])
        yield addrs
    finally:
        for proc in procs:
            if proc.poll() is None:
                with contextlib.suppress(OSError):
                    proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                with contextlib.suppress(OSError):
                    proc.kill()
                with contextlib.suppress(subprocess.TimeoutExpired):
                    proc.wait(timeout=5.0)
            if proc.stdout is not None:
                proc.stdout.close()
            # The agent is its own session leader: sweep the whole group
            # so pool workers forked by a SIGKILLed agent don't linger.
            with contextlib.suppress(OSError, ProcessLookupError):
                os.killpg(proc.pid, signal.SIGKILL)
        _cleanup_agent_segments([proc.pid for proc in procs])
