"""Wire protocol of the distributed substrate.

Every message on a driver↔node connection is one **frame**:

.. code-block:: text

    offset  size  field
    0       4     magic    b"RPDN"
    4       2     version  u16 big-endian (PROTOCOL_VERSION)
    6       2     type     u16 big-endian (MSG_* constant)
    8       8     length   u64 big-endian payload byte count
    16      n     payload  opaque bytes (pickle / npz blobs)

The payload is the repo's existing serialization currency — pickle
blobs, with the columnar dictionaries inside them riding their compact
``to_bytes``/npz reducers (see ``repro.core.serialization``) — so the
wire layer never invents a second encoding.  Framing and payload are
deliberately decoupled: the frame codec moves bytes, the endpoints
decide what they mean.

Versioning is per-frame, not per-session: every header carries
:data:`PROTOCOL_VERSION` and :func:`read_frame` refuses a mismatched
frame with :class:`VersionMismatchError` before touching the payload,
so an old agent and a new driver fail loudly at ``hello`` instead of
mis-parsing each other mid-run.

:class:`HeartbeatMonitor` is the liveness bookkeeping shared by driver
and tests: pure data plus an injectable clock, so timeout detection is
testable with a fake clock and no sockets.
"""

from __future__ import annotations

import asyncio
import struct
import time
from collections.abc import Callable

__all__ = [
    "PROTOCOL_VERSION",
    "FRAME_MAGIC",
    "HEADER_SIZE",
    "MAX_FRAME_BYTES",
    "FrameError",
    "VersionMismatchError",
    "encode_frame",
    "decode_header",
    "read_frame",
    "write_frame",
    "HeartbeatMonitor",
    "MSG_HELLO",
    "MSG_HELLO_ACK",
    "MSG_BROADCAST",
    "MSG_BROADCAST_ACK",
    "MSG_TASK",
    "MSG_RESULT",
    "MSG_HEARTBEAT",
    "MSG_STATS",
    "MSG_STATS_ACK",
    "MSG_SHUTDOWN",
    "MSG_ERROR",
    "MSG_PREDICT",
    "MSG_LABELS",
    "MSG_INGEST",
    "MSG_INGEST_ACK",
    "MESSAGE_TYPES",
]

#: Bump on any incompatible change to framing or message payloads.
PROTOCOL_VERSION = 1

FRAME_MAGIC = b"RPDN"
_HEADER = struct.Struct(">4sHHQ")
HEADER_SIZE = _HEADER.size  # 16 bytes

#: Upper bound on a single frame's payload — far above any real
#: broadcast, but small enough that a garbage length field (from a
#: non-protocol peer or a corrupted stream) is rejected instead of
#: attempting a multi-exabyte read.
MAX_FRAME_BYTES = 1 << 34  # 16 GiB

# Message types.  Driver → node: HELLO, BROADCAST, TASK, STATS,
# SHUTDOWN.  Node → driver: HELLO_ACK, BROADCAST_ACK, RESULT,
# HEARTBEAT, STATS_ACK.  ERROR flows either way and is terminal for the
# connection.
MSG_HELLO = 1
MSG_HELLO_ACK = 2
MSG_BROADCAST = 3
MSG_BROADCAST_ACK = 4
MSG_TASK = 5
MSG_RESULT = 6
MSG_HEARTBEAT = 7
MSG_STATS = 8
MSG_STATS_ACK = 9
MSG_SHUTDOWN = 10
MSG_ERROR = 11

# Serving-plane messages (client ↔ predict server, ``repro.serve``).
# The serving plane reuses this frame codec so there is exactly one
# wire framing in the repo; unlike the node-agent dialect, a serving
# MSG_ERROR is a per-request rejection (overload, bad shape) and does
# NOT terminate the connection.
MSG_PREDICT = 12
MSG_LABELS = 13
MSG_INGEST = 14
MSG_INGEST_ACK = 15

MESSAGE_TYPES = frozenset(
    (
        MSG_HELLO, MSG_HELLO_ACK, MSG_BROADCAST, MSG_BROADCAST_ACK,
        MSG_TASK, MSG_RESULT, MSG_HEARTBEAT, MSG_STATS, MSG_STATS_ACK,
        MSG_SHUTDOWN, MSG_ERROR, MSG_PREDICT, MSG_LABELS, MSG_INGEST,
        MSG_INGEST_ACK,
    )
)


class FrameError(RuntimeError):
    """The byte stream is not a well-formed protocol frame."""


class VersionMismatchError(FrameError):
    """A frame carries a protocol version this endpoint does not speak."""


def encode_frame(msg_type: int, payload: bytes = b"") -> bytes:
    """Serialize one frame (header + payload) to bytes."""
    if msg_type not in MESSAGE_TYPES:
        raise FrameError(f"unknown message type {msg_type}")
    if len(payload) > MAX_FRAME_BYTES:
        raise FrameError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame bound"
        )
    header = _HEADER.pack(
        FRAME_MAGIC, PROTOCOL_VERSION, msg_type, len(payload)
    )
    return header + payload


def decode_header(header: bytes) -> tuple[int, int]:
    """Parse a 16-byte frame header; returns ``(msg_type, length)``.

    Raises :class:`FrameError` on bad magic, unknown type, or an
    implausible length, and :class:`VersionMismatchError` on a foreign
    protocol version — checked *after* the magic (a wrong magic is
    garbage, not a version skew) and *before* the type (a future
    version may legitimately add types).
    """
    if len(header) != HEADER_SIZE:
        raise FrameError(
            f"truncated frame header: {len(header)} of {HEADER_SIZE} bytes"
        )
    magic, version, msg_type, length = _HEADER.unpack(header)
    if magic != FRAME_MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise VersionMismatchError(
            f"peer speaks protocol version {version}, "
            f"this endpoint speaks {PROTOCOL_VERSION}"
        )
    if msg_type not in MESSAGE_TYPES:
        raise FrameError(f"unknown message type {msg_type}")
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte bound"
        )
    return msg_type, length


async def read_frame(reader: asyncio.StreamReader) -> tuple[int, bytes]:
    """Read one frame; returns ``(msg_type, payload)``.

    Raises :class:`asyncio.IncompleteReadError` on a cleanly closed
    stream (EOF at a frame boundary arrives as an incomplete read of 0
    bytes) and :class:`FrameError`/:class:`VersionMismatchError` on a
    malformed header.
    """
    header = await reader.readexactly(HEADER_SIZE)
    msg_type, length = decode_header(header)
    payload = await reader.readexactly(length) if length else b""
    return msg_type, payload


async def write_frame(
    writer: asyncio.StreamWriter, msg_type: int, payload: bytes = b""
) -> None:
    """Write one frame and drain the transport."""
    writer.write(encode_frame(msg_type, payload))
    await writer.drain()


class HeartbeatMonitor:
    """Last-seen bookkeeping with an injectable clock.

    The driver beats a node on every frame it receives from it
    (heartbeats, results, acks — any traffic proves liveness) and
    periodically asks :meth:`expired` which nodes have been silent past
    the timeout.  Nodes never beaten are never expired — liveness
    tracking starts at the first :meth:`beat` (the hello ack).
    """

    def __init__(
        self,
        timeout_s: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if timeout_s <= 0:
            raise ValueError("timeout_s must be positive")
        self.timeout_s = timeout_s
        self._clock = clock
        self._last_seen: dict[int, float] = {}

    def beat(self, node_id: int) -> None:
        """Record traffic from ``node_id`` now."""
        self._last_seen[node_id] = self._clock()

    def forget(self, node_id: int) -> None:
        """Stop tracking ``node_id`` (it is known dead; no double report)."""
        self._last_seen.pop(node_id, None)

    def last_seen(self, node_id: int) -> float | None:
        """Clock reading of the last beat, or ``None`` if never beaten."""
        return self._last_seen.get(node_id)

    def expired(self) -> list[int]:
        """Tracked nodes silent for longer than the timeout."""
        deadline = self._clock() - self.timeout_s
        return [
            node_id
            for node_id, seen in self._last_seen.items()
            if seen < deadline
        ]
