"""The per-machine node agent: ``python -m repro.node``.

One agent fronts one machine.  It owns a local persistent process pool
(a plain process-mode :class:`~repro.engine.executors.Engine`, so every
pool behavior — barrier fan-out, epoch-tagged caches, shm segments,
damage detection — is the battle-tested local code path) and speaks the
:mod:`~repro.engine.remote.protocol` frame protocol to the driver:

* **BROADCAST** — the driver ships each epoch's value to the node
  exactly once, as a plain pickle blob.  The agent unpickles it and
  re-hoists it through its local engine's broadcast channel, which
  lands the columnar dictionaries in *node-local* shared-memory
  segments that the node's workers attach zero-copy.  This is the
  PR 4/6 ship-vs-attach split lifted across the network: TCP carries
  one copy per machine, shm fans it out per worker — sharded
  ``broadcast_budget`` payloads included, since the local engine's
  channel already handles them.
* **TASK** — fn and task arrive pickled; the agent rewrites the
  driver's broadcast epoch to the local pool epoch and submits to its
  pool.  Results (or failures) stream back as RESULT frames as they
  complete — the agent never serializes the phase.
* **Local fault tolerance** — a watchdog notices local worker death
  (``_pool_damaged``), respawns the pool, re-installs the current
  broadcast, and fails the in-flight tasks back to the driver with a
  ``requeue`` flag so the driver reschedules them without charging
  retry budget — exactly what the driver-side respawn does for a local
  pool.
* **HEARTBEAT** — periodic liveness frames; the driver declares the
  node dead after a silence window.
* **Node chaos** — if the driver's hello carries a
  :class:`~repro.engine.faults.FaultInjector` with node-fault
  probabilities, the agent evaluates ``decide_node(phase, node_id)``
  and executes it: crash (terminate pool, ``os._exit``), connection
  drop, or a dispatch delay.  Decisions are seeded and SHA-stable, so
  dead-node chaos runs replay exactly.

One driver connection at a time: a new hello supersedes the previous
connection (that is how a driver rejoins a surviving agent after a
network drop).  The pool — and any installed broadcast — survives
across connections.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import pickle
import time
from typing import Any

from repro.engine.executors import Engine, _run_task
from repro.engine.faults import CRASH_EXIT_CODE, FaultInjector, StaleBroadcastError
from repro.engine.remote import protocol as proto

__all__ = ["NodeAgent"]


class NodeAgent:
    """One node's daemon: a TCP server fronting a local process pool.

    Parameters
    ----------
    host / port:
        Listen address.  ``port=0`` binds an ephemeral port, exposed as
        :attr:`bound_port` once :meth:`serve` is up (the loopback
        harness uses this to run many agents on one machine).
    workers:
        Local pool size; defaults to the CPU count.
    broadcast_channel / start_method:
        Forwarded to the local engine (the node-local fan-out keeps the
        full ``auto``/``pickle``/``shm`` choice).
    heartbeat_interval_s:
        Seconds between HEARTBEAT frames to a connected driver.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int | None = None,
        *,
        broadcast_channel: str = "auto",
        start_method: str | None = None,
        heartbeat_interval_s: float = 1.0,
    ) -> None:
        self.host = host
        self.port = port
        self.engine = Engine(
            "process",
            num_workers=workers,
            broadcast_channel=broadcast_channel,
            start_method=start_method,
        )
        self.workers = self.engine.num_workers
        self.heartbeat_interval_s = heartbeat_interval_s
        self.node_id: int | None = None
        self.injector: FaultInjector | None = None
        self.installs = 0
        self.respawns = 0
        self.tasks_run = 0
        self.bound_port: int | None = None
        # Driver epoch -> local pool epoch for the currently installed
        # broadcast, plus the value itself so a pool respawn can
        # re-install without a network round trip.
        self._epoch_map: dict[int, int] = {}
        self._installed: tuple[int, Any, Any] | None = None
        # (task_id, attempt) -> task message, for respawn notification.
        self._pending: dict[tuple[int, int], dict] = {}
        self._writer: asyncio.StreamWriter | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._stop: asyncio.Event | None = None
        self._install_lock = asyncio.Lock()
        # Node-chaos state: tasks received per phase (the crash/drop
        # trigger counts receipts, so a fault lands mid-phase) and the
        # phases whose one-shot connection drop already fired.
        self._phase_receipts: dict[str, int] = {}
        self._dropped_phases: set[str] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def serve(self, *, ready: Any = None) -> None:
        """Run the agent until :meth:`request_stop` (or SHUTDOWN frame).

        ``ready(agent)`` is called once the socket is bound — the CLI
        prints its "listening" line from it, the loopback harness waits
        on that line.
        """
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        # Fork the pool before the server (and its helper tasks) exist:
        # the children inherit as little event-loop state as possible.
        self.engine._ensure_pool()
        self._server = await asyncio.start_server(
            self._on_connect, self.host, self.port
        )
        self.bound_port = self._server.sockets[0].getsockname()[1]
        if ready is not None:
            ready(self)
        watchdog = asyncio.create_task(self._watchdog())
        try:
            await self._stop.wait()
        finally:
            watchdog.cancel()
            self._server.close()
            await self._server.wait_closed()
            self.engine.close()

    def request_stop(self) -> None:
        """Ask :meth:`serve` to exit (signal handlers and SHUTDOWN)."""
        if self._stop is not None and not self._stop.is_set():
            self._stop.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _on_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        previous, self._writer = self._writer, writer
        if previous is not None:
            previous.close()
        heartbeat = asyncio.create_task(self._heartbeat(writer))
        try:
            while True:
                try:
                    msg_type, payload = await proto.read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    break
                except proto.VersionMismatchError as exc:
                    # Hello refusal: tell the driver why in *our*
                    # version's framing, then hang up.
                    await self._send_safe(
                        writer, proto.MSG_ERROR, pickle.dumps(str(exc))
                    )
                    break
                except proto.FrameError:
                    break  # garbage stream: nothing sane to reply
                if msg_type == proto.MSG_HELLO:
                    await self._handle_hello(writer, payload)
                elif msg_type == proto.MSG_BROADCAST:
                    await self._handle_broadcast(writer, payload)
                elif msg_type == proto.MSG_TASK:
                    await self._handle_task(writer, payload)
                elif msg_type == proto.MSG_STATS:
                    await self._handle_stats(writer, payload)
                elif msg_type == proto.MSG_SHUTDOWN:
                    self.request_stop()
                    break
                # Unexpected-but-valid types (e.g. a stray heartbeat)
                # are ignored; the stream stays framed either way.
        finally:
            heartbeat.cancel()
            if self._writer is writer:
                self._writer = None
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _heartbeat(self, writer: asyncio.StreamWriter) -> None:
        while True:
            await asyncio.sleep(self.heartbeat_interval_s)
            body = pickle.dumps({"pending": len(self._pending)})
            await self._send_safe(writer, proto.MSG_HEARTBEAT, body)

    async def _send_safe(
        self, writer: asyncio.StreamWriter, msg_type: int, payload: bytes
    ) -> None:
        """Best-effort frame write: a broken pipe is the driver's death
        (or a chaos drop), never the agent's — the read loop notices."""
        try:
            await proto.write_frame(writer, msg_type, payload)
        except (ConnectionError, OSError, RuntimeError):
            pass

    # ------------------------------------------------------------------
    # Message handlers
    # ------------------------------------------------------------------

    async def _handle_hello(
        self, writer: asyncio.StreamWriter, payload: bytes
    ) -> None:
        msg = pickle.loads(payload)
        self.node_id = msg.get("node_id")
        self.injector = msg.get("injector")
        ack = {
            "node_id": self.node_id,
            "workers": self.workers,
            "pid": os.getpid(),
            "installs": self.installs,
            "respawns": self.respawns,
        }
        await self._send_safe(writer, proto.MSG_HELLO_ACK, pickle.dumps(ack))

    async def _handle_broadcast(
        self, writer: asyncio.StreamWriter, payload: bytes
    ) -> None:
        msg = pickle.loads(payload)
        async with self._install_lock:
            started = time.perf_counter()
            try:
                await asyncio.get_running_loop().run_in_executor(
                    None, self._install, msg
                )
            except Exception as exc:  # install failed: tell the driver
                body = {
                    "epoch": msg["epoch"],
                    "ok": False,
                    "error": repr(exc),
                }
                await self._send_safe(
                    writer, proto.MSG_BROADCAST_ACK, pickle.dumps(body)
                )
                return
            body = {
                "epoch": msg["epoch"],
                "ok": True,
                "installs": self.installs,
                "warm_s": self._last_warm_s,
                "install_s": time.perf_counter() - started,
            }
        await self._send_safe(
            writer, proto.MSG_BROADCAST_ACK, pickle.dumps(body)
        )

    _last_warm_s = 0.0

    def _install(self, msg: dict) -> None:
        """Unpickle and install one driver epoch into the local pool
        (executor thread — the pool fan-out blocks)."""
        value = pickle.loads(msg["value"])
        warmup = pickle.loads(msg["warmup"]) if msg.get("warmup") else None
        setup_before = self.engine.counters.setup_seconds.get("warmup", 0.0)
        self.engine._ensure_pool()
        self.engine._ship_broadcast(value, warmup)
        self._last_warm_s = (
            self.engine.counters.setup_seconds.get("warmup", 0.0) - setup_before
        )
        self._epoch_map = {msg["epoch"]: self.engine._shipped_epoch}
        self._installed = (msg["epoch"], value, warmup)
        self.installs += 1

    async def _handle_task(
        self, writer: asyncio.StreamWriter, payload: bytes
    ) -> None:
        msg = pickle.loads(payload)
        key = (msg["task_id"], msg["attempt"])
        if not await self._apply_node_chaos(msg["phase"], writer):
            return  # connection dropped by chaos; driver will requeue
        epoch = msg["epoch"]
        local_epoch = None
        if epoch is not None:
            local_epoch = self._epoch_map.get(epoch)
            if local_epoch is None:
                self._send_failure(
                    key,
                    error=StaleBroadcastError(
                        f"node {self.node_id}: driver epoch {epoch} is not "
                        "installed"
                    ),
                    requeue=True,
                )
                return
        try:
            fn = pickle.loads(msg["fn"])
            task = pickle.loads(msg["task"])
        except Exception as exc:
            # A payload this node cannot decode is the task's failure,
            # not the node's: report it, keep the connection alive.
            self._send_failure(
                key,
                error=RuntimeError(
                    f"node {self.node_id}: could not unpickle task "
                    f"{msg['task_id']}: {exc!r}"
                ),
                requeue=False,
            )
            return
        worker_payload = (
            fn, msg["task_id"], task, local_epoch, msg["phase"],
            msg["attempt"], msg.get("injector"), bool(msg.get("profile")),
        )
        self._pending[key] = msg
        loop = self._loop

        def on_done(res: Any, key: tuple[int, int] = key) -> None:
            loop.call_soon_threadsafe(self._complete, key, res, None)

        def on_error(exc: BaseException, key: tuple[int, int] = key) -> None:
            loop.call_soon_threadsafe(self._complete, key, None, exc)

        self.engine._pool.apply_async(
            _run_task, (worker_payload,),
            callback=on_done, error_callback=on_error,
        )

    def _complete(
        self, key: tuple[int, int], res: Any, exc: BaseException | None
    ) -> None:
        if key not in self._pending:
            return  # already answered by a respawn notification
        if exc is not None:
            requeue = isinstance(exc, StaleBroadcastError)
            self._send_failure(key, error=exc, requeue=requeue)
            return
        del self._pending[key]
        task_id, result, elapsed, pid, _start_ts, blob = res
        self.tasks_run += 1
        body = {
            "task_id": task_id,
            "attempt": key[1],
            "ok": True,
            "result": pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL),
            "elapsed": elapsed,
            "pid": pid,
            "profile": blob,
        }
        self._post(proto.MSG_RESULT, body)

    def _send_failure(
        self, key: tuple[int, int], *, error: BaseException, requeue: bool
    ) -> None:
        self._pending.pop(key, None)
        try:
            error_blob = pickle.dumps(error)
        except Exception:
            error_blob = pickle.dumps(RuntimeError(repr(error)))
        body = {
            "task_id": key[0],
            "attempt": key[1],
            "ok": False,
            "error": error_blob,
            "requeue": requeue,
        }
        self._post(proto.MSG_RESULT, body)

    def _post(self, msg_type: int, body: dict) -> None:
        """Queue a frame to the current driver connection (loop thread)."""
        writer = self._writer
        if writer is None:
            return
        self._loop.create_task(
            self._send_safe(writer, msg_type, pickle.dumps(body))
        )

    async def _handle_stats(
        self, writer: asyncio.StreamWriter, payload: bytes
    ) -> None:
        try:
            stats = await asyncio.get_running_loop().run_in_executor(
                None, self.engine.collect_broadcast_stats
            )
        except Exception:
            stats = []
        body = {"node_id": self.node_id, "workers": stats}
        await self._send_safe(writer, proto.MSG_STATS_ACK, pickle.dumps(body))

    # ------------------------------------------------------------------
    # Local fault tolerance + node chaos
    # ------------------------------------------------------------------

    async def _watchdog(self) -> None:
        """Respawn the local pool when a worker dies, then fail the
        in-flight tasks back to the driver as requeue-able."""
        while True:
            await asyncio.sleep(0.2)
            if self.engine._pool is not None and self.engine._pool_damaged():
                async with self._install_lock:
                    await asyncio.get_running_loop().run_in_executor(
                        None, self._respawn
                    )

    def _respawn(self) -> None:
        pending, self._pending = dict(self._pending), {}
        self._epoch_map = {}
        # Keep the segments: the broadcast value is unchanged, the
        # replacement workers re-attach the node-local segments.
        self.engine._teardown_pool(keep_segments=True)
        self.engine._ensure_pool()
        if self._installed is not None:
            epoch, value, warmup = self._installed
            self.engine._ship_broadcast(value, warmup)
            self._epoch_map = {epoch: self.engine._shipped_epoch}
        self.respawns += 1
        for key in pending:
            self._loop.call_soon_threadsafe(
                self._notify_respawned, key
            )

    def _notify_respawned(self, key: tuple[int, int]) -> None:
        self._pending[key] = None  # re-arm so _send_failure pops cleanly
        self._send_failure(
            key,
            error=RuntimeError(
                f"node {self.node_id}: a local worker died; "
                "pool respawned, attempt lost"
            ),
            requeue=True,
        )

    async def _apply_node_chaos(
        self, phase: str, writer: asyncio.StreamWriter
    ) -> bool:
        """Execute this node's chaos decision for ``phase``.

        Returns ``False`` when the connection was dropped (the caller
        must not dispatch the task).  Crash never returns.
        """
        injector = self.injector
        if injector is None or self.node_id is None:
            return True
        count = self._phase_receipts[phase] = (
            self._phase_receipts.get(phase, 0) + 1
        )
        decision = injector.decide_node(phase, self.node_id)
        if decision.delay and count == 1:
            await asyncio.sleep(injector.node_delay_s)
        if decision.crash and count == 2:
            # Mid-phase node death.  Take the local workers down first
            # (an abruptly orphaned pool would outlive os._exit) and
            # unlink the node's segments — the machine is "gone", the
            # loopback host is not.  No goodbye frame: the driver must
            # discover the death, not be told.
            self.engine.close()
            os._exit(CRASH_EXIT_CODE)
        if decision.drop and count == 2 and phase not in self._dropped_phases:
            self._dropped_phases.add(phase)
            writer.close()
            return False
        return True
