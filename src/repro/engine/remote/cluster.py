"""Driver-side view of a node cluster.

:class:`RemoteCluster` owns one TCP connection per node agent and an
asyncio event loop running in a dedicated background thread; the engine
talks to it through a small synchronous facade (connect / ship / submit
/ stats / close) so the recovery loop in
:meth:`repro.engine.executors.Engine.map_tasks` stays the synchronous
polling loop it already is — remote flights expose the same
``ready()``/``get()`` surface as a pool ``AsyncResult``.

Liveness and death:

* every frame received from a node beats the
  :class:`~repro.engine.remote.protocol.HeartbeatMonitor`; a health
  task declares silent nodes dead after the timeout;
* a dropped connection (EOF, reset, frame garbage) kills the node
  immediately;
* death fails that node's in-flight futures with
  :class:`NodeDeathError`, resets its shipped-epoch bookkeeping, and —
  when ``reconnect`` is on — starts a background redial; a rejoined
  node starts with no installed broadcast, so the substrate re-ships
  the current epoch before dispatching to it again.

Per-node counters (ships, bytes, tasks, deaths, rejoins) accumulate on
the :class:`RemoteNode` records and surface as the run report's node
ledger.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import pickle
import threading
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.engine.faults import EngineClosedError
from repro.engine.remote import protocol as proto

__all__ = [
    "RemoteCluster",
    "RemoteNode",
    "NodeDeathError",
    "RemoteTaskLostError",
    "parse_node_addr",
]


class NodeDeathError(RuntimeError):
    """A node died (missed heartbeats or dropped connection)."""


class RemoteTaskLostError(RuntimeError):
    """An attempt was lost to a node-local pool respawn; the task is
    requeue-able without charging retry budget (the node's fault, not
    the task's)."""


def parse_node_addr(addr: str) -> tuple[str, int]:
    """Parse ``host:port`` (the CLI/-constructor node syntax)."""
    host, sep, port = addr.rpartition(":")
    if not sep or not host:
        raise ValueError(f"node address {addr!r} is not host:port")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"node address {addr!r} has a non-integer port")


@dataclass
class RemoteNode:
    """Driver-side record of one node: address, link, and counters."""

    node_id: int
    host: str
    port: int
    workers: int = 0
    pid: int = 0
    alive: bool = False
    #: Driver broadcast epoch this node has installed (None = none).
    shipped_epoch: int | None = None
    # Lifetime counters (the node ledger).
    tasks_done: int = 0
    ships: int = 0
    bytes_shipped: int = 0
    deaths: int = 0
    rejoins: int = 0
    reader: Any = field(default=None, repr=False)
    writer: Any = field(default=None, repr=False)

    @property
    def addr(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def label(self) -> str:
        return f"n{self.node_id}"

    def ledger_row(self) -> dict:
        return {
            "node": self.label,
            "addr": self.addr,
            "workers": self.workers,
            "tasks": self.tasks_done,
            "ships": self.ships,
            "bytes_shipped": self.bytes_shipped,
            "deaths": self.deaths,
            "rejoins": self.rejoins,
            "alive": self.alive,
        }


class _RemoteFlightResult:
    """AsyncResult-shaped adapter over a concurrent future.

    ``get()`` decodes the RESULT body on the *caller's* thread (the
    recovery loop), keeping big unpickles off the event loop, and
    reconstructs the remote failure taxonomy: the original exception
    for ordinary task failures (retry budget applies),
    :class:`RemoteTaskLostError` for requeue-able losses,
    :class:`NodeDeathError` when the node died under the flight.
    """

    def __init__(self, future: concurrent.futures.Future) -> None:
        self._future = future

    def ready(self) -> bool:
        return self._future.done()

    def get(self) -> tuple[int, Any, float, int, float | None, bytes | None]:
        body = self._future.result()
        if not body["ok"]:
            error = pickle.loads(body["error"])
            if body.get("requeue"):
                raise RemoteTaskLostError(str(error)) from error
            raise error
        result = pickle.loads(body["result"])
        return (
            body["task_id"], result, body["elapsed"], body["pid"],
            None, body.get("profile"),
        )


class RemoteCluster:
    """Connections, liveness, and dispatch for a set of node agents.

    Parameters
    ----------
    addrs:
        ``host:port`` strings, one per node; node ids are their indices.
    injector:
        Optional :class:`~repro.engine.faults.FaultInjector` forwarded
        to every agent in the hello, carrying the node-chaos
        probabilities (``node_crash`` et al.).
    heartbeat_timeout_s:
        Silence window after which a node is declared dead.
    connect_timeout_s:
        Per-node budget for dial + hello.
    reconnect:
        Redial dead nodes in the background; a rejoined node is used
        again after the substrate re-ships the current broadcast.
    clock:
        Injectable monotonic clock for the heartbeat monitor (tests).
    """

    def __init__(
        self,
        addrs: Sequence[str],
        *,
        injector: Any = None,
        heartbeat_timeout_s: float = 10.0,
        connect_timeout_s: float = 10.0,
        reconnect: bool = True,
        reconnect_interval_s: float = 0.25,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not addrs:
            raise ValueError("a remote cluster needs at least one node address")
        self.nodes = [
            RemoteNode(node_id, *parse_node_addr(addr))
            for node_id, addr in enumerate(addrs)
        ]
        self.injector = injector
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.connect_timeout_s = connect_timeout_s
        self.reconnect = reconnect
        self.reconnect_interval_s = reconnect_interval_s
        self._monitor = proto.HeartbeatMonitor(heartbeat_timeout_s, clock=clock)
        self._lock = threading.Lock()
        #: (node_id, task_id, attempt) -> concurrent future of the body.
        self._pending: dict[tuple[int, int, int], concurrent.futures.Future] = {}
        #: Death events not yet consumed by the substrate: (node, reason).
        self._death_events: list[tuple[RemoteNode, str]] = []
        #: Nodes that rejoined and have not been re-equipped yet.
        self._rejoined: list[RemoteNode] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Dial and hello every node; raises if any node is unreachable."""
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="rpdbscan-remote-cluster",
            daemon=True,
        )
        self._thread.start()
        try:
            self._call(
                self._connect_all(),
                timeout=self.connect_timeout_s * len(self.nodes) + 10.0,
            )
            self._call(self._start_health(), timeout=5.0)
        except BaseException:
            self.close()
            raise

    def close(self, *, shutdown_agents: bool = True) -> None:
        """Cancel flights, hang up (optionally telling agents to exit),
        and stop the loop thread.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pending = list(self._pending.values())
            self._pending.clear()
        for future in pending:
            if not future.done():
                future.set_exception(
                    EngineClosedError("remote cluster closed with tasks in flight")
                )
        if self._loop is not None and self._loop.is_running():
            with contextlib.suppress(Exception):
                self._call(
                    self._shutdown_all(shutdown_agents), timeout=5.0
                )
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self._loop is not None and not self._loop.is_running():
            with contextlib.suppress(Exception):
                self._loop.close()

    def _call(self, coro: Any, *, timeout: float) -> Any:
        """Run a coroutine on the loop thread, synchronously."""
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        try:
            return future.result(timeout=timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise TimeoutError("remote cluster operation timed out") from None

    # ------------------------------------------------------------------
    # Connection management (loop thread)
    # ------------------------------------------------------------------

    async def _connect_all(self) -> None:
        errors = []
        for node in self.nodes:
            try:
                await asyncio.wait_for(
                    self._connect(node), timeout=self.connect_timeout_s
                )
            except Exception as exc:
                errors.append(f"{node.label} ({node.addr}): {exc!r}")
        if errors:
            raise ConnectionError(
                "could not reach node agent(s): " + "; ".join(errors)
            )

    async def _connect(self, node: RemoteNode) -> None:
        reader, writer = await asyncio.open_connection(node.host, node.port)
        hello = {
            "node_id": node.node_id,
            "driver_pid": None,
            "injector": self.injector,
        }
        await proto.write_frame(writer, proto.MSG_HELLO, pickle.dumps(hello))
        msg_type, payload = await proto.read_frame(reader)
        if msg_type == proto.MSG_ERROR:
            writer.close()
            raise ConnectionError(
                f"node {node.label} refused hello: {pickle.loads(payload)}"
            )
        if msg_type != proto.MSG_HELLO_ACK:
            writer.close()
            raise proto.FrameError(
                f"expected hello ack from {node.label}, got type {msg_type}"
            )
        ack = pickle.loads(payload)
        with self._lock:
            node.reader, node.writer = reader, writer
            node.workers = int(ack["workers"])
            node.pid = int(ack["pid"])
            node.alive = True
            node.shipped_epoch = None
        self._monitor.beat(node.node_id)
        asyncio.get_running_loop().create_task(self._read_loop(node))

    async def _read_loop(self, node: RemoteNode) -> None:
        reader = node.reader
        try:
            while True:
                msg_type, payload = await proto.read_frame(reader)
                self._monitor.beat(node.node_id)
                if msg_type == proto.MSG_RESULT:
                    body = pickle.loads(payload)
                    key = (node.node_id, body["task_id"], body["attempt"])
                    with self._lock:
                        future = self._pending.pop(key, None)
                        if future is not None and body["ok"]:
                            node.tasks_done += 1
                    if future is not None and not future.done():
                        future.set_result(body)
                elif msg_type in (
                    proto.MSG_HEARTBEAT,
                    proto.MSG_BROADCAST_ACK,
                    proto.MSG_STATS_ACK,
                ):
                    if msg_type != proto.MSG_HEARTBEAT:
                        self._resolve_ack(node, msg_type, payload)
                elif msg_type == proto.MSG_ERROR:
                    raise proto.FrameError(
                        f"node {node.label} reported: {pickle.loads(payload)}"
                    )
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            OSError,
            proto.FrameError,
        ) as exc:
            if node.reader is reader:  # not superseded by a reconnect
                self._mark_dead(node, f"connection lost ({exc!r})")

    # Per-node one-slot ack mailboxes (broadcast ack, stats ack).  The
    # driver serializes these per node — one ship or stats request in
    # flight per node at a time — so a single slot per type suffices.
    def _ack_box(self, node: RemoteNode) -> dict:
        box = getattr(node, "_acks", None)
        if box is None:
            box = {}
            node._acks = box  # type: ignore[attr-defined]
        return box

    def _resolve_ack(self, node: RemoteNode, msg_type: int, payload: bytes) -> None:
        future = self._ack_box(node).pop(msg_type, None)
        if future is not None and not future.done():
            future.set_result(pickle.loads(payload))

    def _expect_ack(
        self, node: RemoteNode, msg_type: int
    ) -> concurrent.futures.Future:
        future: concurrent.futures.Future = concurrent.futures.Future()
        self._ack_box(node)[msg_type] = future
        return future

    def _mark_dead(self, node: RemoteNode, reason: str) -> None:
        with self._lock:
            if not node.alive:
                return
            node.alive = False
            node.deaths += 1
            node.shipped_epoch = None
            self._death_events.append((node, reason))
            lost = [
                (key, future)
                for key, future in self._pending.items()
                if key[0] == node.node_id
            ]
            for key, _ in lost:
                del self._pending[key]
        self._monitor.forget(node.node_id)
        for msg_type, future in list(self._ack_box(node).items()):
            self._ack_box(node).pop(msg_type, None)
            if not future.done():
                future.set_exception(
                    NodeDeathError(f"node {node.label} died: {reason}")
                )
        for _, future in lost:
            if not future.done():
                future.set_exception(
                    NodeDeathError(f"node {node.label} died: {reason}")
                )
        if node.writer is not None:
            with contextlib.suppress(Exception):
                node.writer.close()
        if self.reconnect and not self._closed:
            self._loop.create_task(self._redial(node))

    async def _redial(self, node: RemoteNode) -> None:
        while not self._closed and not node.alive:
            await asyncio.sleep(self.reconnect_interval_s)
            try:
                await asyncio.wait_for(
                    self._connect(node), timeout=self.connect_timeout_s
                )
            except Exception:
                continue
            with self._lock:
                node.rejoins += 1
                self._rejoined.append(node)
            return

    async def _start_health(self) -> None:
        async def health() -> None:
            interval = max(self.heartbeat_timeout_s / 4.0, 0.05)
            while not self._closed:
                await asyncio.sleep(interval)
                for node_id in self._monitor.expired():
                    node = self.nodes[node_id]
                    if node.alive:
                        self._mark_dead(
                            node,
                            f"missed heartbeats for "
                            f">{self.heartbeat_timeout_s:g}s",
                        )

        asyncio.get_running_loop().create_task(health())

    async def _shutdown_all(self, shutdown_agents: bool) -> None:
        for node in self.nodes:
            if node.writer is None:
                continue
            if shutdown_agents and node.alive:
                with contextlib.suppress(Exception):
                    await proto.write_frame(node.writer, proto.MSG_SHUTDOWN)
            with contextlib.suppress(Exception):
                node.writer.close()
        # Retire the helper tasks (read loops, health, redials) so
        # stopping the loop does not strand them mid-await.
        for task in asyncio.all_tasks():
            if task is not asyncio.current_task():
                task.cancel()

    # ------------------------------------------------------------------
    # Synchronous facade (driver thread)
    # ------------------------------------------------------------------

    def alive_nodes(self) -> list[RemoteNode]:
        with self._lock:
            return [n for n in self.nodes if n.alive]

    def total_slots(self) -> int:
        return sum(n.workers for n in self.alive_nodes())

    def take_death_events(self) -> list[tuple[RemoteNode, str]]:
        """Drain the not-yet-consumed node-death events."""
        with self._lock:
            events, self._death_events = self._death_events, []
        return events

    def take_rejoined(self) -> list[RemoteNode]:
        """Drain the nodes that reconnected since the last call."""
        with self._lock:
            rejoined, self._rejoined = self._rejoined, []
        return rejoined

    def submit(
        self,
        node: RemoteNode,
        *,
        task_id: int,
        attempt: int,
        epoch: int | None,
        phase: str,
        fn_blob: bytes,
        task_blob: bytes,
        injector: Any = None,
        profile: bool = False,
    ) -> _RemoteFlightResult:
        """Dispatch one task attempt to ``node``; returns a flight whose
        ``ready()``/``get()`` mirror a pool ``AsyncResult``."""
        body = {
            "task_id": task_id,
            "attempt": attempt,
            "epoch": epoch,
            "phase": phase,
            "fn": fn_blob,
            "task": task_blob,
            "injector": injector,
            "profile": profile,
        }
        key = (node.node_id, task_id, attempt)
        future: concurrent.futures.Future = concurrent.futures.Future()
        with self._lock:
            if self._closed:
                raise EngineClosedError("submit on a closed remote cluster")
            if not node.alive:
                raise NodeDeathError(f"node {node.label} is dead")
            self._pending[key] = future
        blob = pickle.dumps(body, protocol=pickle.HIGHEST_PROTOCOL)

        async def send() -> None:
            try:
                await proto.write_frame(node.writer, proto.MSG_TASK, blob)
            except Exception as exc:
                self._mark_dead(node, f"send failed ({exc!r})")

        self._loop.call_soon_threadsafe(
            lambda: self._loop.create_task(send())
        )
        return _RemoteFlightResult(future)

    def ship_broadcast(
        self,
        epoch: int,
        value_blob: bytes,
        warmup_blob: bytes | None,
        nodes: Sequence[RemoteNode] | None = None,
        *,
        timeout_s: float = 120.0,
    ) -> dict[int, dict]:
        """Ship one epoch to every (given) alive node lacking it.

        Sends the pre-pickled value to each target concurrently, waits
        for every BROADCAST_ACK, and updates the per-node ledger.  A
        node dying mid-ship is left to the death-event machinery; its
        absence from the returned ``{node_id: ack}`` map tells the
        substrate not to dispatch to it.  Raises only if *no* target
        node accepted the epoch.
        """
        targets = [
            n for n in (nodes if nodes is not None else self.nodes)
            if n.alive and n.shipped_epoch != epoch
        ]
        if not targets:
            return {}
        body = pickle.dumps(
            {"epoch": epoch, "value": value_blob, "warmup": warmup_blob},
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        acks: dict[int, concurrent.futures.Future] = {}

        async def send(node: RemoteNode) -> None:
            try:
                await proto.write_frame(node.writer, proto.MSG_BROADCAST, body)
            except Exception as exc:
                self._mark_dead(node, f"broadcast send failed ({exc!r})")

        for node in targets:
            acks[node.node_id] = self._expect_ack(node, proto.MSG_BROADCAST_ACK)
            self._loop.call_soon_threadsafe(
                lambda n=node: self._loop.create_task(send(n))
            )
        results: dict[int, dict] = {}
        deadline = time.monotonic() + timeout_s
        for node in targets:
            budget = max(deadline - time.monotonic(), 0.01)
            try:
                ack = acks[node.node_id].result(timeout=budget)
            except (NodeDeathError, concurrent.futures.TimeoutError):
                continue
            if not ack.get("ok", False):
                continue
            with self._lock:
                node.shipped_epoch = epoch
                node.ships += 1
                node.bytes_shipped += len(value_blob)
            results[node.node_id] = ack
        if not results:
            raise NodeDeathError(
                f"no node accepted broadcast epoch {epoch} "
                f"({len(targets)} target(s))"
            )
        return results

    def collect_stats(self, *, timeout_s: float = 30.0) -> list[tuple[str, dict]]:
        """Gather each node's worker shard-residency ledgers.

        Returns ``[(f"n<k>:<pid>", stats), ...]`` across all alive
        nodes — the remote analogue of
        :meth:`Engine.collect_broadcast_stats`'s ``(pid, stats)`` rows.
        """
        acks = []
        for node in self.alive_nodes():
            future = self._expect_ack(node, proto.MSG_STATS_ACK)

            async def send(n: RemoteNode = node) -> None:
                try:
                    await proto.write_frame(n.writer, proto.MSG_STATS)
                except Exception as exc:
                    self._mark_dead(n, f"stats send failed ({exc!r})")

            self._loop.call_soon_threadsafe(
                lambda n=node: self._loop.create_task(send(n))
            )
            acks.append((node, future))
        rows: list[tuple[str, dict]] = []
        deadline = time.monotonic() + timeout_s
        for node, future in acks:
            budget = max(deadline - time.monotonic(), 0.01)
            try:
                body = future.result(timeout=budget)
            except (NodeDeathError, concurrent.futures.TimeoutError):
                continue
            for pid, stats in body.get("workers", []):
                rows.append((f"{node.label}:{pid}", stats))
        return rows

    def ledger(self) -> list[dict]:
        """Per-node counters for the run report / fit result."""
        with self._lock:
            return [node.ledger_row() for node in self.nodes]
