"""Multi-node distributed substrate for the engine.

Three layers, bottom up:

* :mod:`repro.engine.remote.protocol` — the asyncio/TCP wire format:
  length-prefixed frames (magic + version + type + u64 length +
  payload), message-type constants, and the heartbeat monitor.
* :mod:`repro.engine.remote.agent` — the per-machine node agent
  (``python -m repro.node``): fronts a local persistent process pool,
  installs each broadcast epoch once per node into node-local shared
  memory, runs tasks, and survives local worker death by respawning its
  pool.
* :mod:`repro.engine.remote.cluster` — the driver side:
  :class:`~repro.engine.remote.cluster.RemoteCluster` holds one TCP
  connection per node, tracks liveness via heartbeats, reconnects dead
  nodes, and exposes the synchronous submit/ship facade the engine's
  recovery loop schedules through.

:mod:`repro.engine.remote.loopback` spawns N agents on 127.0.0.1 so the
whole substrate — including dead-node chaos — is testable on a single
machine.
"""

from repro.engine.remote.cluster import (
    NodeDeathError,
    RemoteCluster,
    RemoteTaskLostError,
)
from repro.engine.remote.loopback import loopback_nodes
from repro.engine.remote.protocol import (
    PROTOCOL_VERSION,
    FrameError,
    HeartbeatMonitor,
    VersionMismatchError,
)

__all__ = [
    "NodeDeathError",
    "RemoteCluster",
    "RemoteTaskLostError",
    "loopback_nodes",
    "PROTOCOL_VERSION",
    "FrameError",
    "HeartbeatMonitor",
    "VersionMismatchError",
]
