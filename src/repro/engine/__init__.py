"""Execution-engine substrate: the repo's stand-in for Apache Spark.

The paper runs on Spark over 12 Azure nodes.  Here the same MapReduce
shape — partitioned tasks, a broadcast variable, per-task counters — is
provided by a small engine with two executors:

* ``serial``: runs tasks in-process, deterministically, recording each
  task's wall time.  This is the default for tests and for experiments
  whose *measurements* (load imbalance, duplication, phase breakdown)
  only need accurate per-task timings.
* ``process``: a persistent :mod:`multiprocessing` pool for actual
  parallel speed.  One pool lives for the engine's lifetime (use the
  engine as a context manager or call ``close()``); broadcast values
  are shipped to each worker once per distinct value under an epoch
  tag, and a warm-up hook lets phases pre-build per-worker state so
  task timings measure compute, not setup.  Engine overhead (pool
  startup, broadcast shipping, warm-up) is accounted in a dedicated
  ``engine.setup`` counter bucket, excluded from phase breakdowns.

Fault tolerance is opt-in: construct the engine with a
:class:`~repro.engine.faults.FaultPolicy` to get per-task retries with
exponential backoff, task/phase timeouts, automatic pool re-spawn after
a worker crash (broadcasts re-shipped under a fresh epoch), and
straggler speculation — the safety net Spark gives the paper for free.
A seeded :class:`~repro.engine.faults.FaultInjector` on the policy turns
any executor into a chaos harness for testing that recovery machinery.

For scalability experiments (Figs 15 and 20) the measured per-task
durations are replayed through :func:`repro.engine.simulate.makespan`
to compute the elapsed time a ``w``-worker cluster would achieve, which
reproduces the speed-up *shape* without 48 physical cores.  A recorded
span trace converts directly into such a replay via
:meth:`repro.engine.simulate.PhaseSchedule.from_trace`.

Observability is opt-in via :mod:`repro.obs`: pass a
:class:`~repro.obs.spans.Tracer` to the engine to record the full
phase → task → attempt span timeline (with fault events), and
``profile=True`` for merged per-task cProfile capture.  The legacy
:class:`~repro.engine.counters.Counters` is now a compatibility shim
over :class:`~repro.obs.metrics.MetricsRegistry`.
"""

from repro.engine.counters import DRIVER_WORKER, Counters, CountersMark, TaskStats
from repro.engine.executors import Engine
from repro.engine.faults import (
    FAULT_RESPAWNS,
    FAULT_RETRIES,
    FAULT_SPECULATIONS,
    FAULT_TIMEOUTS,
    EngineClosedError,
    FaultInjector,
    FaultPolicy,
    InjectedFault,
    PhaseTimeoutError,
    StaleBroadcastError,
    TaskFailedError,
)
from repro.engine.simulate import PhaseSchedule, makespan, speedup_curve

# Imported after executors: shm depends on repro.core, whose orchestrator
# imports repro.engine.executors back — this ordering keeps the cycle
# resolvable from either entry point.
from repro.engine.shm import SHM_NAME_PREFIX, ShmSegmentHandle

__all__ = [
    "Engine",
    "Counters",
    "CountersMark",
    "TaskStats",
    "DRIVER_WORKER",
    "FaultPolicy",
    "FaultInjector",
    "EngineClosedError",
    "StaleBroadcastError",
    "InjectedFault",
    "TaskFailedError",
    "PhaseTimeoutError",
    "FAULT_RETRIES",
    "FAULT_TIMEOUTS",
    "FAULT_RESPAWNS",
    "FAULT_SPECULATIONS",
    "makespan",
    "speedup_curve",
    "PhaseSchedule",
    "ShmSegmentHandle",
    "SHM_NAME_PREFIX",
]
