"""Execution-engine substrate: the repo's stand-in for Apache Spark.

The paper runs on Spark over 12 Azure nodes.  Here the same MapReduce
shape — partitioned tasks, a broadcast variable, per-task counters — is
provided by a small engine with two executors:

* ``serial``: runs tasks in-process, deterministically, recording each
  task's wall time.  This is the default for tests and for experiments
  whose *measurements* (load imbalance, duplication, phase breakdown)
  only need accurate per-task timings.
* ``process``: a persistent :mod:`multiprocessing` pool for actual
  parallel speed.  One pool lives for the engine's lifetime (use the
  engine as a context manager or call ``close()``); broadcast values
  are shipped to each worker once per distinct value under an epoch
  tag, and a warm-up hook lets phases pre-build per-worker state so
  task timings measure compute, not setup.  Engine overhead (pool
  startup, broadcast shipping, warm-up) is accounted in a dedicated
  ``engine.setup`` counter bucket, excluded from phase breakdowns.

* ``remote``: a multi-node distributed substrate.  The driver speaks a
  length-prefixed TCP frame protocol (:mod:`repro.engine.remote`) to
  per-machine node agents (``python -m repro.node``), each fronting its
  own local persistent process pool.  Broadcasts ship **once per node
  per epoch** over the wire; each agent re-hoists the value through its
  local shm channel so workers attach node-locally, zero-copy.  Under
  a :class:`~repro.engine.faults.FaultPolicy` the same recovery loop
  that absorbs worker death absorbs *node* death (missed heartbeats or
  a dropped connection): only the dead node's in-flight attempts are
  rescheduled on survivors, and a reconnecting node is re-equipped with
  the current broadcast before receiving work again.

Fault tolerance is opt-in: construct the engine with a
:class:`~repro.engine.faults.FaultPolicy` to get per-task retries with
exponential backoff, task/phase timeouts, automatic pool re-spawn after
a worker crash (broadcasts re-shipped under a fresh epoch), and
straggler speculation — the safety net Spark gives the paper for free.
A seeded :class:`~repro.engine.faults.FaultInjector` on the policy turns
any executor into a chaos harness for testing that recovery machinery.

For scalability experiments (Figs 15 and 20) the measured per-task
durations are replayed through :func:`repro.engine.simulate.makespan`
to compute the elapsed time a ``w``-worker cluster would achieve, which
reproduces the speed-up *shape* without 48 physical cores.  A recorded
span trace converts directly into such a replay via
:meth:`repro.engine.simulate.PhaseSchedule.from_trace`.

Observability is opt-in via :mod:`repro.obs`: pass a
:class:`~repro.obs.spans.Tracer` to the engine to record the full
phase → task → attempt span timeline (with fault events), and
``profile=True`` for merged per-task cProfile capture.  The legacy
:class:`~repro.engine.counters.Counters` is now a compatibility shim
over :class:`~repro.obs.metrics.MetricsRegistry`.
"""

from repro.engine.counters import DRIVER_WORKER, Counters, CountersMark, TaskStats
from repro.engine.executors import Engine
from repro.engine.faults import (
    FAULT_RESPAWNS,
    FAULT_RETRIES,
    FAULT_SPECULATIONS,
    FAULT_TIMEOUTS,
    EngineClosedError,
    FaultInjector,
    FaultPolicy,
    InjectedFault,
    PhaseTimeoutError,
    StaleBroadcastError,
    TaskFailedError,
)
from repro.engine.simulate import PhaseSchedule, makespan, speedup_curve

from repro.engine.remote import (
    NodeDeathError,
    RemoteCluster,
    RemoteTaskLostError,
    loopback_nodes,
)

# Imported after executors: shm depends on repro.core, whose orchestrator
# imports repro.engine.executors back — this ordering keeps the cycle
# resolvable from either entry point.
from repro.engine.shm import SHM_NAME_PREFIX, ShmSegmentHandle

__all__ = [
    "Engine",
    "Counters",
    "CountersMark",
    "TaskStats",
    "DRIVER_WORKER",
    "FaultPolicy",
    "FaultInjector",
    "EngineClosedError",
    "StaleBroadcastError",
    "InjectedFault",
    "TaskFailedError",
    "PhaseTimeoutError",
    "FAULT_RETRIES",
    "FAULT_TIMEOUTS",
    "FAULT_RESPAWNS",
    "FAULT_SPECULATIONS",
    "RemoteCluster",
    "NodeDeathError",
    "RemoteTaskLostError",
    "loopback_nodes",
    "makespan",
    "speedup_curve",
    "PhaseSchedule",
    "ShmSegmentHandle",
    "SHM_NAME_PREFIX",
]
