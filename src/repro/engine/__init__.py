"""Execution-engine substrate: the repo's stand-in for Apache Spark.

The paper runs on Spark over 12 Azure nodes.  Here the same MapReduce
shape — partitioned tasks, a broadcast variable, per-task counters — is
provided by a small engine with two executors:

* ``serial``: runs tasks in-process, deterministically, recording each
  task's wall time.  This is the default for tests and for experiments
  whose *measurements* (load imbalance, duplication, phase breakdown)
  only need accurate per-task timings.
* ``process``: a :mod:`multiprocessing` pool for actual parallel speed.

For scalability experiments (Figs 15 and 20) the measured per-task
durations are replayed through :func:`repro.engine.simulate.makespan`
to compute the elapsed time a ``w``-worker cluster would achieve, which
reproduces the speed-up *shape* without 48 physical cores.
"""

from repro.engine.counters import Counters, TaskStats
from repro.engine.executors import Engine
from repro.engine.simulate import PhaseSchedule, makespan, speedup_curve

__all__ = ["Engine", "Counters", "TaskStats", "makespan", "speedup_curve", "PhaseSchedule"]
