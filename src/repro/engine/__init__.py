"""Execution-engine substrate: the repo's stand-in for Apache Spark.

The paper runs on Spark over 12 Azure nodes.  Here the same MapReduce
shape — partitioned tasks, a broadcast variable, per-task counters — is
provided by a small engine with two executors:

* ``serial``: runs tasks in-process, deterministically, recording each
  task's wall time.  This is the default for tests and for experiments
  whose *measurements* (load imbalance, duplication, phase breakdown)
  only need accurate per-task timings.
* ``process``: a persistent :mod:`multiprocessing` pool for actual
  parallel speed.  One pool lives for the engine's lifetime (use the
  engine as a context manager or call ``close()``); broadcast values
  are shipped to each worker once per distinct value under an epoch
  tag, and a warm-up hook lets phases pre-build per-worker state so
  task timings measure compute, not setup.  Engine overhead (pool
  startup, broadcast shipping, warm-up) is accounted in a dedicated
  ``engine.setup`` counter bucket, excluded from phase breakdowns.

For scalability experiments (Figs 15 and 20) the measured per-task
durations are replayed through :func:`repro.engine.simulate.makespan`
to compute the elapsed time a ``w``-worker cluster would achieve, which
reproduces the speed-up *shape* without 48 physical cores.
"""

from repro.engine.counters import DRIVER_WORKER, Counters, CountersMark, TaskStats
from repro.engine.executors import Engine
from repro.engine.simulate import PhaseSchedule, makespan, speedup_curve

__all__ = [
    "Engine",
    "Counters",
    "CountersMark",
    "TaskStats",
    "DRIVER_WORKER",
    "makespan",
    "speedup_curve",
    "PhaseSchedule",
]
