"""Clustering-quality and parallel-efficiency metrics.

:mod:`repro.metrics.rand_index` implements the accuracy measure of
Sec 7.1.5 (the Rand index, plus the adjusted variant);
:mod:`repro.metrics.parallel_metrics` implements the efficiency measures
of Figs 12-14 (load imbalance, duplication, phase breakdown).
"""

from repro.metrics.cluster_stats import (
    ClusteringSummary,
    cluster_sizes,
    summarize_clustering,
)
from repro.metrics.parallel_metrics import (
    duplication_ratio,
    load_imbalance,
    normalize_breakdown,
)
from repro.metrics.rand_index import adjusted_rand_index, rand_index

__all__ = [
    "ClusteringSummary",
    "cluster_sizes",
    "summarize_clustering",
    "rand_index",
    "adjusted_rand_index",
    "load_imbalance",
    "duplication_ratio",
    "normalize_breakdown",
]
