"""Parallel-efficiency metrics: the measurements behind Figs 12-14 & 21.

* **Load imbalance** (Fig 13) — "the ratio of the elapsed time for the
  slowest split to that for the fastest split during parallel local
  clustering"; 1 is perfect balance.
* **Duplication** (Fig 14) — "the number of data points in the union of
  those processed for each split" relative to the data-set size; 1 means
  no point is processed twice (always true for RP-DBSCAN).
* **Phase breakdown** (Figs 12 & 21) — each phase's fraction of total
  elapsed time.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["load_imbalance", "duplication_ratio", "normalize_breakdown"]


def load_imbalance(task_seconds: Sequence[float]) -> float:
    """Slowest/fastest task ratio; 1.0 for < 2 tasks or perfect balance."""
    times = [t for t in task_seconds if t >= 0]
    if len(times) < 2:
        return 1.0
    fastest = max(min(times), 1e-9)
    return max(times) / fastest


def duplication_ratio(split_point_counts: Sequence[int], num_points: int) -> float:
    """Total points processed across splits over the data-set size.

    ``1.0`` means every point was processed exactly once; region-split
    algorithms exceed 1 by the halo overlap factor.
    """
    if num_points <= 0:
        raise ValueError("num_points must be positive")
    return sum(split_point_counts) / num_points


def normalize_breakdown(phase_seconds: dict[str, float]) -> dict[str, float]:
    """Phase durations normalized to fractions summing to 1 (or all 0)."""
    total = sum(phase_seconds.values())
    if total <= 0:
        return {phase: 0.0 for phase in phase_seconds}
    return {phase: seconds / total for phase, seconds in phase_seconds.items()}
