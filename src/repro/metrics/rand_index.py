"""Rand index and adjusted Rand index (Rand, 1971; Hubert & Arabie, 1985).

The paper measures accuracy as "the Rand index, ... a value between 0
and 1, where ... 1 indicates that the sets are exactly the same"
(Sec 7.1.5), comparing RP-DBSCAN's clustering against exact DBSCAN's.

DBSCAN labelings contain noise (label ``-1``).  Noise points are treated
as *singleton clusters* by default: two clusterings only agree perfectly
when they mark the same points as noise.  Set
``noise_as_singletons=False`` to treat all noise as one shared cluster.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rand_index", "adjusted_rand_index", "contingency_table"]


def _prepare(labels: np.ndarray, noise_as_singletons: bool, offset: int) -> np.ndarray:
    out = np.asarray(labels, dtype=np.int64).copy()
    noise = out == -1
    if noise_as_singletons and noise.any():
        # Give each noise point a unique label beyond the real ones.
        base = out.max(initial=-1) + 1 + offset
        out[noise] = base + np.arange(int(noise.sum()))
    return out


def contingency_table(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Dense contingency matrix between two label vectors."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError("label vectors must have equal length")
    if a.size == 0:
        return np.zeros((0, 0), dtype=np.int64)
    _, a_idx = np.unique(a, return_inverse=True)
    _, b_idx = np.unique(b, return_inverse=True)
    table = np.zeros((a_idx.max() + 1, b_idx.max() + 1), dtype=np.int64)
    np.add.at(table, (a_idx, b_idx), 1)
    return table


def _pair_counts(a: np.ndarray, b: np.ndarray) -> tuple[float, float, float, float]:
    """Pair-counting sums: (sum_ij C(n_ij,2), sum_i C(a_i,2),
    sum_j C(b_j,2), C(n,2))."""
    table = contingency_table(a, b)
    n = table.sum()

    def comb2(x: np.ndarray) -> float:
        x = x.astype(np.float64)
        return float((x * (x - 1.0) / 2.0).sum())

    return (
        comb2(table),
        comb2(table.sum(axis=1)),
        comb2(table.sum(axis=0)),
        float(n) * (float(n) - 1.0) / 2.0,
    )


def rand_index(
    labels_a: np.ndarray, labels_b: np.ndarray, *, noise_as_singletons: bool = True
) -> float:
    """The Rand index between two labelings, in ``[0, 1]``.

    Counts pairs of points on which the two clusterings agree (same
    cluster in both, or different clusters in both) over all pairs.
    Returns 1.0 for identical clusterings (including length-0 and
    length-1 inputs, which have no pairs to disagree on).
    """
    a = _prepare(labels_a, noise_as_singletons, offset=0)
    b = _prepare(labels_b, noise_as_singletons, offset=0)
    sum_nij, sum_ai, sum_bj, total = _pair_counts(a, b)
    if total == 0:
        return 1.0
    agree_same = sum_nij
    agree_diff = total - sum_ai - sum_bj + sum_nij
    return (agree_same + agree_diff) / total


def adjusted_rand_index(
    labels_a: np.ndarray, labels_b: np.ndarray, *, noise_as_singletons: bool = True
) -> float:
    """Adjusted Rand index: Rand index corrected for chance agreement.

    1.0 for identical clusterings, ~0 for independent random ones; can
    be negative for adversarial disagreement.
    """
    a = _prepare(labels_a, noise_as_singletons, offset=0)
    b = _prepare(labels_b, noise_as_singletons, offset=0)
    sum_nij, sum_ai, sum_bj, total = _pair_counts(a, b)
    if total == 0:
        return 1.0
    expected = sum_ai * sum_bj / total
    maximum = 0.5 * (sum_ai + sum_bj)
    if maximum == expected:
        return 1.0
    return (sum_nij - expected) / (maximum - expected)
