"""Descriptive statistics of a clustering (labels array).

Used by examples and benches to summarize results the way the paper's
prose does ("around ten clusters", noise fractions, dominant clusters on
skewed data).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ClusteringSummary", "summarize_clustering", "cluster_sizes"]


def cluster_sizes(labels: np.ndarray) -> dict[int, int]:
    """Mapping cluster id -> member count (noise excluded)."""
    labels = np.asarray(labels)
    values, counts = np.unique(labels[labels >= 0], return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


@dataclass(frozen=True)
class ClusteringSummary:
    """Shape of one clustering.

    Attributes
    ----------
    n_points:
        Total number of points.
    n_clusters:
        Number of clusters.
    noise:
        Number of noise points.
    largest:
        Size of the largest cluster (0 when there are none).
    smallest:
        Size of the smallest cluster (0 when there are none).
    median_size:
        Median cluster size (0.0 when there are none).
    """

    n_points: int
    n_clusters: int
    noise: int
    largest: int
    smallest: int
    median_size: float

    @property
    def noise_fraction(self) -> float:
        """Noise points over all points (0.0 for an empty labeling)."""
        if self.n_points == 0:
            return 0.0
        return self.noise / self.n_points

    @property
    def dominance(self) -> float:
        """Largest cluster's share of the clustered points.

        1.0 means a single cluster holds everything that clustered —
        the signature of heavily skewed data like GeoLife's metro blob.
        """
        clustered = self.n_points - self.noise
        if clustered <= 0:
            return 0.0
        return self.largest / clustered

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.n_clusters} clusters over {self.n_points} points "
            f"({self.noise_fraction:.1%} noise; sizes "
            f"{self.smallest}..{self.largest}, median {self.median_size:.0f})"
        )


def summarize_clustering(labels: np.ndarray) -> ClusteringSummary:
    """Compute a :class:`ClusteringSummary` from a label vector."""
    labels = np.asarray(labels)
    sizes = sorted(cluster_sizes(labels).values())
    return ClusteringSummary(
        n_points=int(labels.shape[0]),
        n_clusters=len(sizes),
        noise=int(np.count_nonzero(labels == -1)),
        largest=sizes[-1] if sizes else 0,
        smallest=sizes[0] if sizes else 0,
        median_size=float(np.median(sizes)) if sizes else 0.0,
    )
