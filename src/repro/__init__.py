"""RP-DBSCAN reproduction (Song & Lee, SIGMOD 2018).

A full Python implementation of RP-DBSCAN — parallel DBSCAN via pseudo
random partitioning of cells and a broadcast two-level cell dictionary —
together with every substrate and baseline the paper's evaluation needs:
an execution engine, spatial indexes, exact and rho-approximate DBSCAN,
the region-split family (ESP / RBP / CBP / SPARK), NG-DBSCAN, data
generators, and clustering metrics.

Quickstart::

    import numpy as np
    from repro import RPDBSCAN

    points = np.random.default_rng(0).normal(size=(10_000, 2))
    result = RPDBSCAN(eps=0.1, min_pts=20, num_partitions=8).fit(points)
    print(result.n_clusters, result.labels)
"""

from repro.core import (
    RPDBSCAN,
    CellDictionary,
    CellGeometry,
    ClusterModel,
    ClusterState,
    RegionQueryEngine,
    RPDBSCANResult,
    load_cluster_state,
    save_cluster_state,
)
from repro.engine import Engine, FaultInjector, FaultPolicy

__version__ = "1.0.0"

__all__ = [
    "RPDBSCAN",
    "RPDBSCANResult",
    "CellGeometry",
    "CellDictionary",
    "RegionQueryEngine",
    "ClusterModel",
    "ClusterState",
    "save_cluster_state",
    "load_cluster_state",
    "Engine",
    "FaultPolicy",
    "FaultInjector",
    "__version__",
]
