"""Native-speed kernels for the Phase II hot path (ROADMAP item 3).

The region query + core marking loop dominates RP-DBSCAN's phase
breakdown (Fig 12).  This package compiles that loop into numba
``@njit(parallel=True, cache=True)`` kernels operating directly on the
columnar dictionary arrays, behind a ``kernel={auto,numpy,numba}``
switch threaded through :class:`~repro.core.region_query.RegionQueryEngine`,
:class:`~repro.core.rp_dbscan.RPDBSCAN`, and the CLI (``--kernel``).

Backends
--------
``numpy``
    The vectorized reference path in :mod:`repro.core.region_query`.
    Always available.
``numba``
    The compiled kernels in :mod:`repro.kernels.phase2`.  Requires the
    ``kernels`` optional extra (``pip install repro[kernels]``); asking
    for it without numba installed raises :class:`KernelUnavailableError`.
``python``
    The *uncompiled* kernel source functions — the exact code numba
    compiles, run by the interpreter.  Slow; exists so the conformance
    suite can pin kernel semantics against the numpy backend in
    numba-free environments.  Not exposed on the CLI.
``auto``
    ``numba`` when importable, else ``numpy`` (silent fallback).

Every backend is bit-identical: neighbor counts, core flags, touch
masks, candidate row order, and final labels are exact-equal across
``kernel x dictionary_layout x broadcast channel`` (see
``tests/kernels/`` and ``benchmarks/bench_phase2_kernels.py``).
"""

from __future__ import annotations

from repro.kernels.phase2 import (
    HAVE_NUMBA,
    NUMBA_VERSION,
    fused_batch_source,
    gathered_batch_source,
    get_impls,
    warmed_dims,
    warmup,
)

__all__ = [
    "HAVE_NUMBA",
    "NUMBA_VERSION",
    "KERNELS",
    "KernelUnavailableError",
    "resolve_kernel",
    "get_impls",
    "warmup",
    "warmed_dims",
    "fused_batch_source",
    "gathered_batch_source",
]

#: The public kernel choices (CLI ``--kernel``).  ``"python"`` is also
#: accepted by :func:`resolve_kernel` as an internal testing backend.
KERNELS = ("auto", "numpy", "numba")


class KernelUnavailableError(RuntimeError):
    """``kernel="numba"`` was requested but numba is not installed."""


def resolve_kernel(kernel: str) -> str:
    """Resolve a requested kernel to a concrete backend.

    Returns ``"numpy"``, ``"numba"``, or ``"python"``.  ``"auto"``
    silently falls back to ``"numpy"`` when numba is absent; an explicit
    ``"numba"`` request without numba raises
    :class:`KernelUnavailableError` naming the missing extra.

    Availability is re-checked on every call (``phase2.HAVE_NUMBA`` is
    read through the module) so tests can simulate a numba-free
    environment by monkeypatching one attribute.
    """
    from repro.kernels import phase2

    if kernel == "auto":
        return "numba" if phase2.HAVE_NUMBA else "numpy"
    if kernel in ("numpy", "python"):
        return kernel
    if kernel == "numba":
        if not phase2.HAVE_NUMBA:
            raise KernelUnavailableError(
                "kernel='numba' requires the optional numba dependency, which "
                "is not installed; install the 'kernels' extra "
                "(pip install repro[kernels], i.e. numba>=0.59) or use "
                "kernel='auto' to fall back to the numpy backend"
            )
        return "numba"
    raise ValueError(
        f"kernel must be one of {KERNELS + ('python',)}, got {kernel!r}"
    )
