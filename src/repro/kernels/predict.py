"""Serving kernel: nearest-core-within-eps label assignment.

The batch-predict hot loop of
:class:`~repro.core.prediction.ClusterModel` — for each query point,
scan the gathered candidate core points, track the nearest one within
``eps``, and emit its cluster label (or ``-1``).  Written in the same
style as :mod:`repro.kernels.phase2`: a plain-python kernel source in
numba's nopython subset, compiled with ``@njit(parallel=True)`` when
numba is importable and runnable as-is (the exact ``python`` reference
backend) when it is not.

Bit-identity contract
---------------------
The kernel must reproduce the numpy backend
(:func:`repro.spatial.distance.seq_squared_distances` + masked argmin)
exactly:

* Squared distances accumulate **sequentially per dimension** — the
  same exactly-rounded elementwise sequence as the Phase II kernels, so
  a point at distance exactly ``eps`` gets the same in/out decision the
  fit made for it.
* Ties break to the **first** candidate in gathered order (candidate
  cells ascend lexicographically; fitted order within each cell), via a
  strict ``<`` against the running best — matching ``np.argmin``'s
  first-minimum rule on the same ordering.
* ``prange`` parallelism is over query points only; each point's scan
  is sequential and writes one output row, so results are independent
  of thread count and schedule.
"""

from __future__ import annotations

__all__ = ["nearest_core_source", "get_impl", "warmup"]

from repro.kernels.phase2 import HAVE_NUMBA

if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
    import numba

    _prange = numba.prange
else:
    numba = None  # type: ignore[assignment]
    _prange = range


def _make_nearest(prange):
    def nearest_core(pts, centers, labels, eps2, out):
        n, d = pts.shape
        m = centers.shape[0]
        for i in prange(n):
            best_d2 = eps2
            best_label = -1
            found = False
            for s in range(m):
                d2 = 0.0
                for k in range(d):
                    diff = pts[i, k] - centers[s, k]
                    d2 += diff * diff
                # Strict < keeps the first candidate on ties; <= eps2
                # admits points exactly at distance eps (the boundary
                # decision Phase II made for the fitted points).
                if d2 <= eps2 and (not found or d2 < best_d2):
                    best_d2 = d2
                    best_label = labels[s]
                    found = True
            out[i] = best_label

    return nearest_core


#: The reference source function: plain python, runnable anywhere.
nearest_core_source = _make_nearest(range)

_numba_nearest = None
if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
    _numba_nearest = numba.njit(parallel=True, cache=True, nogil=True)(
        _make_nearest(_prange)
    )


def get_impl(backend: str):
    """The nearest-core callable for a resolved backend.

    ``backend`` must be ``"numba"`` or ``"python"``; the ``numpy``
    backend has no kernel callable (its implementation is the vectorized
    path inside :mod:`repro.core.prediction`).
    """
    if backend == "python":
        return nearest_core_source
    if backend == "numba":
        if not HAVE_NUMBA:  # pragma: no cover - guarded by resolve_kernel
            raise RuntimeError(
                "numba backend requested but numba is not importable"
            )
        return _numba_nearest
    raise ValueError(f"no predict kernel for backend {backend!r}")


def warmup(dim: int) -> None:
    """Compile the kernel for ``dim``-dimensional data (no-op sans numba)."""
    if not HAVE_NUMBA:
        return
    import numpy as np

    _numba_nearest(
        np.zeros((1, dim), dtype=np.float64),
        np.zeros((1, dim), dtype=np.float64),
        np.zeros(1, dtype=np.int64),
        1.0,
        np.empty(1, dtype=np.int64),
    )
