"""Fused Phase II kernels: candidate gather + distance filter + density sum.

The (eps, rho)-region query's inner loop — gather a candidate cell's
sub-cell block from the CSR arrays, test each sub-cell center against
the query point, and accumulate the densities of the centers that pass
(Algorithm 3 lines 8-10) — is the Phase II hot path (Fig 12).  This
module holds that loop as *kernel source functions*: plain-python
nested loops written in numba's nopython subset, compiled with
``@njit(parallel=True, cache=True)`` when numba is installed and left
callable as-is (the slow but exact ``python`` reference backend) when it
is not.

Two kernel shapes cover every dictionary the region-query engine serves:

* :func:`fused_batch_source` — indexes the columnar
  :class:`~repro.core.dictionary.FlatCellDictionary` arrays directly
  (``offsets``/``sub_centers``/``sub_counts``), so the candidate gather
  never materializes: the CSR slice *is* the loop bounds.  Used for the
  flat layout and its defragmented wrapper.
* :func:`gathered_batch_source` — consumes a pre-gathered
  ``(M, d)`` center block with per-candidate segment offsets.  Used for
  the dict layout (whose leaves are per-cell arrays) and the sharded
  :class:`~repro.core.sharding.PartialFlatDictionary` (whose leaves live
  in per-shard segments), both of which already produce exactly this
  block for the numpy path.

Bit-identity contract (pinned by ``tests/kernels/``)
----------------------------------------------------
The kernels must reproduce the numpy backend's outputs *exactly*:

* The within-``eps`` decision is a squared comparison over a squared
  distance accumulated **sequentially per dimension**:
  ``acc = ((0 + diff_0^2) + diff_1^2) + ...`` with no fused
  multiply-add.  The numpy backend computes the same sequence with one
  elementwise operation per dimension
  (:func:`repro.spatial.distance.seq_squared_distances`); since IEEE 754
  elementwise operations are exactly rounded, the scalar loop here and
  the vectorized loop there agree to the bit.  (The BLAS expansion
  ``|a|^2 + |b|^2 - 2ab`` does *not* have this property — its dot
  products reorder and may fuse — which is why the numpy hot path does
  not use it.)
* Density accumulation adds integer-valued float64 terms (cell and
  sub-cell counts).  Integer sums below 2**53 are exact in float64
  regardless of association, so the interleaved per-point order here is
  bit-identical to the numpy backend's two matmuls.
* ``prange`` parallelism is over query points only; each point's
  accumulation is sequential and writes disjoint output rows, so results
  do not depend on thread count or schedule.

Array contracts the kernels assume (DESIGN.md §11): lexicographically
sorted ``(C, d)`` int64 cell ids whose row order matches ``rows``;
CSR ``offsets`` of shape ``(C + 1,)`` int64 starting at 0 and covering
``sub_centers``/``sub_counts``; ``sub_centers`` float64 C-contiguous;
counts int64; masks bool.
"""

from __future__ import annotations

import time

__all__ = [
    "HAVE_NUMBA",
    "NUMBA_VERSION",
    "fused_batch_source",
    "gathered_batch_source",
    "get_impls",
    "warmup",
    "warmed_dims",
]

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
    NUMBA_VERSION: str | None = numba.__version__
    _prange = numba.prange
except ImportError:  # the baked-in environment has no numba
    numba = None  # type: ignore[assignment]
    HAVE_NUMBA = False
    NUMBA_VERSION = None
    _prange = range


def _make_fused(prange):
    def fused_batch(
        pts,
        rows,
        near,
        full,
        cell_counts_sel,
        offsets,
        sub_centers,
        sub_counts,
        eps2,
        counts,
        touch,
    ):
        n, d = pts.shape
        m = rows.shape[0]
        for i in prange(n):
            acc = 0.0
            for j in range(m):
                if full[i, j]:
                    # Fully-contained candidate (Example 5.5 case 1):
                    # every sub-cell center is a neighbor; add the
                    # precomputed root density wholesale.
                    acc += cell_counts_sel[j]
                    touch[i, j] = True
                elif near[i, j]:
                    row = rows[j]
                    hit = False
                    for s in range(offsets[row], offsets[row + 1]):
                        d2 = 0.0
                        for k in range(d):
                            diff = pts[i, k] - sub_centers[s, k]
                            d2 += diff * diff
                        if d2 <= eps2:
                            acc += sub_counts[s]
                            hit = True
                    touch[i, j] = hit
            counts[i] = acc

    return fused_batch


def _make_gathered(prange):
    def gathered_batch(
        pts,
        near,
        full,
        cell_counts_sel,
        partial_cols,
        seg_offsets,
        centers,
        densities,
        eps2,
        counts,
        touch,
    ):
        n, d = pts.shape
        m = full.shape[1]
        p = partial_cols.shape[0]
        for i in prange(n):
            acc = 0.0
            for j in range(m):
                if full[i, j]:
                    acc += cell_counts_sel[j]
                    touch[i, j] = True
            for jj in range(p):
                j = partial_cols[jj]
                if near[i, j] and not full[i, j]:
                    hit = False
                    for s in range(seg_offsets[jj], seg_offsets[jj + 1]):
                        d2 = 0.0
                        for k in range(d):
                            diff = pts[i, k] - centers[s, k]
                            d2 += diff * diff
                        if d2 <= eps2:
                            acc += densities[s]
                            hit = True
                    touch[i, j] = hit
            counts[i] = acc

    return gathered_batch


#: The reference source functions: plain python, ``range`` in place of
#: ``prange``.  These ARE the kernels — what numba compiles — runnable
#: (slowly) in any environment, which is what lets the differential
#: suite pin the source semantics against the numpy backend even where
#: numba is absent.
fused_batch_source = _make_fused(range)
gathered_batch_source = _make_gathered(range)

_numba_fused = None
_numba_gathered = None
if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
    _jit = numba.njit(parallel=True, cache=True, nogil=True)
    _numba_fused = _jit(_make_fused(_prange))
    _numba_gathered = _jit(_make_gathered(_prange))


def get_impls(backend: str):
    """The ``(fused, gathered)`` callables for a resolved backend.

    ``backend`` must be ``"numba"`` or ``"python"``; the ``numpy``
    backend has no kernel callables (its implementation is the
    vectorized path inside :mod:`repro.core.region_query`).
    """
    if backend == "python":
        return fused_batch_source, gathered_batch_source
    if backend == "numba":
        if not HAVE_NUMBA:  # pragma: no cover - guarded by resolve_kernel
            raise RuntimeError("numba backend requested but numba is not importable")
        return _numba_fused, _numba_gathered
    raise ValueError(f"no kernel implementations for backend {backend!r}")


#: Dimensions whose kernel signatures have been compiled this process.
_WARMED_DIMS: set[int] = set()


def warmed_dims() -> frozenset[int]:
    """Dimensions already JIT-compiled in this process (for tests)."""
    return frozenset(_WARMED_DIMS)


def warmup(dim: int) -> float:
    """Compile both kernels for ``dim``-dimensional data; return seconds.

    Called from the engine's Phase II warm-up hook so the one-time JIT
    cost lands in the ``engine.setup`` counter bucket, never in a phase
    timing.  Idempotent per dimension and process (numba caches compiled
    signatures; ``cache=True`` additionally persists them on disk).
    A no-op returning 0.0 when numba is not installed.
    """
    if not HAVE_NUMBA:
        return 0.0
    if dim in _WARMED_DIMS:
        return 0.0
    import numpy as np

    start = time.perf_counter()
    pts = np.zeros((1, dim), dtype=np.float64)
    near = np.ones((1, 1), dtype=np.bool_)
    full = np.zeros((1, 1), dtype=np.bool_)
    counts_sel = np.zeros(1, dtype=np.float64)
    counts = np.zeros(1, dtype=np.float64)
    touch = np.zeros((1, 1), dtype=np.bool_)
    _numba_fused(
        pts,
        np.zeros(1, dtype=np.int64),
        near,
        full,
        counts_sel,
        np.array([0, 1], dtype=np.int64),
        np.zeros((1, dim), dtype=np.float64),
        np.ones(1, dtype=np.int64),
        1.0,
        counts,
        touch,
    )
    touch[:] = False
    _numba_gathered(
        pts,
        near,
        full,
        counts_sel,
        np.zeros(1, dtype=np.int64),
        np.array([0, 1], dtype=np.int64),
        np.zeros((1, dim), dtype=np.float64),
        np.ones(1, dtype=np.float64),
        1.0,
        counts,
        touch,
    )
    _WARMED_DIMS.add(dim)
    return time.perf_counter() - start
