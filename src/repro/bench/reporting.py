"""Rendering of experiment rows as paper-style tables and series.

Benches print their reproduction of each table/figure through these
helpers so every bench's output looks the same: a fixed-width table
whose rows mirror the paper's rows, with ``N/A`` for timed-out runs
(as in Table 6).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from typing import Any

__all__ = [
    "format_cell",
    "format_duration",
    "format_table",
    "render_ascii_scatter",
    "render_stacked_bars",
    "render_utilization_bar",
]


def format_cell(value: Any) -> str:
    """Human-readable cell: N/A for NaN, compact floats, plain ints."""
    if value is None:
        return "N/A"
    if isinstance(value, float):
        if math.isnan(value):
            return "N/A"
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3g}"
        if magnitude >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_duration(seconds: float) -> str:
    """Adaptive duration: µs/ms below a second, ``m s`` above a minute.

    Used by tables whose rows span orders of magnitude (e.g. the run
    report's phase breakdown, where a driver merge of 80 µs sits next
    to a 12 s clustering phase).
    """
    if seconds != seconds:  # NaN
        return "N/A"
    magnitude = abs(seconds)
    if magnitude < 0.001:
        return f"{seconds * 1e6:.0f}µs"
    if magnitude < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if magnitude < 60.0:
        return f"{seconds:.2f}s"
    minutes, rest = divmod(seconds, 60.0)
    return f"{int(minutes)}m{rest:04.1f}s"


def render_utilization_bar(fraction: float, *, width: int = 24) -> str:
    """A ``|####....|`` busy-fraction bar for per-worker utilization."""
    fraction = min(max(float(fraction), 0.0), 1.0)
    filled = round(fraction * width)
    return "|" + "#" * filled + "." * (width - filled) + "|"


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], *, title: str | None = None
) -> str:
    """Fixed-width text table with optional title line."""
    cells = [[format_cell(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in cells)) if cells else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_ascii_scatter(
    points, labels, *, width: int = 72, height: int = 24, max_clusters: int = 62
) -> str:
    """ASCII rendering of a 2-d labeled point set (Fig 16 stand-in).

    Each cluster gets a distinct character; noise is ``.``; empty space
    is blank.  Only the first two dimensions are drawn.
    """
    import numpy as np

    pts = np.asarray(points, dtype=float)[:, :2]
    labels = np.asarray(labels)
    if pts.shape[0] == 0:
        return "(empty)"
    lo = pts.min(axis=0)
    hi = pts.max(axis=0)
    span = np.where(hi - lo > 0, hi - lo, 1.0)
    cols = np.minimum(((pts[:, 0] - lo[0]) / span[0] * (width - 1)).astype(int), width - 1)
    rows = np.minimum(((pts[:, 1] - lo[1]) / span[1] * (height - 1)).astype(int), height - 1)
    glyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
    canvas = [[" "] * width for _ in range(height)]
    for col, row, label in zip(cols, rows, labels):
        if label < 0:
            glyph = "."
        else:
            glyph = glyphs[int(label) % min(max_clusters, len(glyphs))]
        current = canvas[height - 1 - row][col]
        if current == " " or current == ".":
            canvas[height - 1 - row][col] = glyph
    return "\n".join("".join(line) for line in canvas)


def render_stacked_bars(
    rows: dict, *, width: int = 60, glyphs: str = "#*=+~o.-"
) -> str:
    """Text rendering of stacked fraction bars (Figs 12 and 21).

    ``rows`` maps a row label to an ordered mapping of segment label ->
    fraction; fractions of one row should sum to ~1.  Every row becomes
    one bar of ``width`` characters, one glyph per segment, plus a
    legend line.
    """
    lines = []
    legend_parts: list[str] = []
    segment_names: list[str] = []
    for segments in rows.values():
        for name in segments:
            if name not in segment_names:
                segment_names.append(name)
    for i, name in enumerate(segment_names):
        legend_parts.append(f"{glyphs[i % len(glyphs)]} = {name}")
    lines.append("legend: " + ", ".join(legend_parts))
    label_width = max((len(str(k)) for k in rows), default=0)
    for label, segments in rows.items():
        bar = ""
        for i, name in enumerate(segment_names):
            fraction = float(segments.get(name, 0.0))
            bar += glyphs[i % len(glyphs)] * max(0, round(fraction * width))
        bar = bar[:width].ljust(width)
        lines.append(f"{str(label).rjust(label_width)} |{bar}|")
    return "\n".join(lines)
