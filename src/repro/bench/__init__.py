"""Benchmark harness: experiment execution and paper-style reporting.

:mod:`repro.bench.harness` runs algorithm sweeps with timeouts and
repetition; :mod:`repro.bench.reporting` renders the rows as the same
tables and series the paper's figures show.
"""

from repro.bench.harness import (
    AlgorithmTimeout,
    ExperimentRow,
    call_with_timeout,
    find_eps_for_clusters,
    run_comparison,
)
from repro.bench.reporting import format_table, render_ascii_scatter

__all__ = [
    "AlgorithmTimeout",
    "ExperimentRow",
    "call_with_timeout",
    "find_eps_for_clusters",
    "run_comparison",
    "format_table",
    "render_ascii_scatter",
]
