"""Experiment runner used by every table/figure bench.

Mirrors the paper's protocol at laptop scale:

* each algorithm runs under a wall-clock budget; exceeding it yields an
  ``N/A`` row, like the paper's 20,000-second cutoff (Sec 7.1.5);
* the ε grid per data set is ``{ε10/8, ε10/4, ε10/2, ε10}`` where ε10
  yields about ten clusters (Sec 7.1.4) — :func:`find_eps_for_clusters`
  recovers ε10 empirically, and the curated values in
  :data:`repro.data.datasets.DATASETS` were produced with it;
* runs can be repeated and averaged ("we repeated every test by five
  times and reported the average").
"""

from __future__ import annotations

import math
import signal
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.baselines.base import BaselineResult

__all__ = [
    "AlgorithmTimeout",
    "call_with_timeout",
    "ExperimentRow",
    "run_comparison",
    "find_eps_for_clusters",
]


class AlgorithmTimeout(Exception):
    """Raised when an algorithm exceeds its wall-clock budget."""


def call_with_timeout(fn: Callable[[], Any], timeout_s: float | None) -> Any:
    """Run ``fn`` with a SIGALRM-based wall-clock budget.

    POSIX main-thread only; when alarms are unavailable (non-main
    thread, Windows) the call runs unbudgeted.  Raises
    :class:`AlgorithmTimeout` when the budget expires.
    """
    if timeout_s is None or timeout_s <= 0:
        return fn()

    def _handler(signum, frame):  # pragma: no cover - signal context
        raise AlgorithmTimeout()

    try:
        previous = signal.signal(signal.SIGALRM, _handler)
    except ValueError:  # not in the main thread
        return fn()
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return fn()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@dataclass
class ExperimentRow:
    """One (algorithm, configuration) measurement.

    ``elapsed_s`` is NaN when the run timed out (rendered as ``N/A``).
    """

    algorithm: str
    params: dict[str, Any] = field(default_factory=dict)
    elapsed_s: float = math.nan
    n_clusters: int = -1
    noise: int = -1
    load_imbalance: float = math.nan
    points_processed: int = -1
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def timed_out(self) -> bool:
        """Whether this run exceeded the budget."""
        return math.isnan(self.elapsed_s)


def _measure(result: Any) -> dict[str, Any]:
    out: dict[str, Any] = {}
    out["n_clusters"] = int(getattr(result, "n_clusters", -1))
    out["noise"] = int(getattr(result, "noise_count", -1))
    if isinstance(result, BaselineResult):
        out["load_imbalance"] = result.load_imbalance
        out["points_processed"] = result.points_processed
    else:  # RPDBSCANResult
        out["load_imbalance"] = float(getattr(result, "load_imbalance", math.nan))
        out["points_processed"] = int(getattr(result, "points_processed", -1))
    return out


def run_comparison(
    algorithms: dict[str, Callable[[], Any]],
    points: np.ndarray,
    *,
    timeout_s: float | None = None,
    repeats: int = 1,
    params: dict[str, Any] | None = None,
) -> list[ExperimentRow]:
    """Run each algorithm factory on ``points`` and collect rows.

    Parameters
    ----------
    algorithms:
        Name -> zero-argument factory returning an object with
        ``fit(points)``.  A factory (not an instance) so repeated runs
        and timeouts always start from fresh state.
    points:
        The workload.
    timeout_s:
        Per-run wall-clock budget; ``None`` disables it.
    repeats:
        Runs to average over (elapsed time is averaged; the other
        measurements are taken from the last run).
    params:
        Extra key/values copied into every row (e.g. ``{"eps": 0.02}``).
    """
    rows: list[ExperimentRow] = []
    for name, factory in algorithms.items():
        row = ExperimentRow(algorithm=name, params=dict(params or {}))
        elapsed: list[float] = []
        try:
            for _ in range(max(1, repeats)):
                algorithm = factory()
                start = time.perf_counter()
                result = call_with_timeout(lambda: algorithm.fit(points), timeout_s)
                elapsed.append(time.perf_counter() - start)
            row.elapsed_s = float(np.mean(elapsed))
            for key, value in _measure(result).items():
                setattr(row, key, value)
            row.extra["result"] = result
        except AlgorithmTimeout:
            pass  # row keeps NaN elapsed -> rendered N/A
        rows.append(row)
    return rows


def find_eps_for_clusters(
    points: np.ndarray,
    min_pts: int,
    *,
    target_clusters: int = 10,
    eps_grid: np.ndarray | None = None,
    sample: int = 10_000,
    seed: int | None = 0,
) -> float:
    """Empirically find ε10: the ε yielding about ``target_clusters``.

    Runs rho-approximate DBSCAN over a geometric ε grid on a sample of
    the data and returns the ε whose cluster count is closest to the
    target (ties toward larger ε, which the paper's grids favor).
    """
    from repro.baselines.rho_dbscan import RhoDBSCAN

    pts = np.asarray(points, dtype=np.float64)
    if pts.shape[0] > sample:
        rng = np.random.default_rng(seed)
        pts = pts[rng.choice(pts.shape[0], sample, replace=False)]
    if eps_grid is None:
        spread = float(np.max(pts.max(axis=0) - pts.min(axis=0)))
        eps_grid = spread * np.geomspace(1e-3, 0.25, 12)
    best_eps = float(eps_grid[0])
    best_gap = math.inf
    for eps in eps_grid:
        result = RhoDBSCAN(float(eps), min_pts, rho=0.05).fit(pts)
        gap = abs(result.n_clusters - target_clusters)
        if gap <= best_gap:  # ties toward larger eps (grid is ascending)
            best_gap = gap
            best_eps = float(eps)
    return best_eps
