"""Assigning new points to an existing clustering (library extension).

Not part of the paper, but the natural deployment step after it: once a
data set has been clustered, classify *new* points against the result
without re-running DBSCAN.  The rule is DBSCAN's own border rule: a new
point joins the cluster of the nearest core point within ``eps``,
otherwise it is noise.  Cell bucketing keeps each lookup local, exactly
like the region queries of the main algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.core.cells import CellGeometry
from repro.spatial.cell_index import NeighborCellFinder
from repro.spatial.distance import pairwise_distances
from repro.spatial.grid import group_points_by_cell

__all__ = ["ClusterModel"]


class ClusterModel:
    """A frozen clustering usable to classify new points.

    Parameters
    ----------
    points:
        The points the clustering was fitted on, ``(n, d)``.
    labels:
        Their cluster labels (``-1`` = noise).
    core_mask:
        Which fitted points are core.
    eps:
        The DBSCAN radius used for the fit.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import RPDBSCAN
    >>> from repro.core.prediction import ClusterModel
    >>> rng = np.random.default_rng(0)
    >>> pts = np.concatenate([rng.normal(0, .1, (200, 2)),
    ...                       rng.normal(3, .1, (200, 2))])
    >>> fit = RPDBSCAN(eps=0.3, min_pts=10).fit(pts)
    >>> model = ClusterModel(pts, fit.labels, fit.core_mask, eps=0.3)
    >>> model.predict(np.array([[0.05, 0.0], [10.0, 10.0]])).tolist()
    [0, -1]
    """

    def __init__(
        self,
        points: np.ndarray,
        labels: np.ndarray,
        core_mask: np.ndarray,
        eps: float,
    ) -> None:
        points = np.asarray(points, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        core_mask = np.asarray(core_mask, dtype=bool)
        if points.ndim != 2:
            raise ValueError("points must be (n, d)")
        if labels.shape != (points.shape[0],) or core_mask.shape != labels.shape:
            raise ValueError("labels/core_mask must align with points")
        if eps <= 0:
            raise ValueError("eps must be positive")
        if np.any((labels < 0) & core_mask):
            raise ValueError("a core point cannot be noise")
        self.eps = float(eps)
        self._core_points = points[core_mask]
        self._core_labels = labels[core_mask]
        dim = points.shape[1] if points.shape[1] else 1
        self._geometry = CellGeometry(self.eps, dim)
        if self._core_points.shape[0]:
            self._groups = {
                cell: indices
                for cell, indices in group_points_by_cell(
                    self._core_points, self._geometry.side
                ).items()
            }
        else:
            self._groups = {}
        self._finder = NeighborCellFinder(
            set(self._groups), self._geometry.side, self.eps
        )

    @property
    def n_core_points(self) -> int:
        """Number of core points retained by the model."""
        return self._core_points.shape[0]

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Labels for ``points``: nearest core's cluster within ``eps``,
        else ``-1``."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != self._geometry.dim:
            raise ValueError(
                f"points must be (m, {self._geometry.dim})"
            )
        out = np.full(pts.shape[0], -1, dtype=np.int64)
        if not self._groups:
            return out
        # Group queries by cell so each candidate set is computed once.
        for cell_id, rows in group_points_by_cell(pts, self._geometry.side).items():
            candidate_cells = self._finder.candidates(cell_id)
            if not candidate_cells:
                continue
            candidate_rows = np.concatenate(
                [self._groups[c] for c in candidate_cells]
            )
            dist = pairwise_distances(pts[rows], self._core_points[candidate_rows])
            dist[dist > self.eps] = np.inf
            nearest = np.argmin(dist, axis=1)
            hit = np.isfinite(dist[np.arange(rows.shape[0]), nearest])
            out[rows[hit]] = self._core_labels[candidate_rows[nearest[hit]]]
        return out
