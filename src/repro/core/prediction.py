"""Assigning new points to an existing clustering (library extension).

Not part of the paper, but the natural deployment step after it: once a
data set has been clustered, classify *new* points against the result
without re-running DBSCAN.  The rule is DBSCAN's own border rule: a new
point joins the cluster of the nearest core point within ``eps``,
otherwise it is noise.

The model is a **thin cell-level view** over the fitted clustering: the
core points are grouped by cell into the same columnar layout the fit
itself broadcasts — a :class:`~repro.core.dictionary.FlatCellDictionary`
whose lex-sorted cell ids give binary-search lookup, whose CSR offsets
give per-cell center-block gathers, and whose ``sub_centers``/
``sub_counts`` columns carry the actual core points and their cluster
labels.  Because the payload *is* a flat dictionary, a model broadcast
through the engine rides the existing shared-memory channel unchanged:
the export pickler hoists the table into one segment and every worker
serves zero-copy views of it.

Distance decisions are **bit-consistent with Phase II**: squared
distances accumulate sequentially per dimension (the fused segmented
sweep of the numpy backend applies the exact accumulation order of
:func:`~repro.spatial.distance.seq_squared_distances`; the
``python``/``numba`` backends run the equivalent scalar loop of
:mod:`repro.kernels.predict`), so a query point at distance exactly
``eps`` of a core point gets the same in/out decision the fit made —
``predict`` on the fitted points returns their fitted labels on every
non-border core point.  Ties (two cores equidistant from a query) break
deterministically to the first candidate in gathered order: candidate
cells ascend lexicographically, fitted order within each cell.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.cells import CellGeometry
from repro.core.dictionary import FlatCellDictionary, csr_gather_indices
from repro.kernels import resolve_kernel
from repro.spatial.cell_index import NeighborCellFinder

__all__ = ["ClusterModel"]


class ClusterModel:
    """A frozen clustering usable to classify new points.

    Parameters
    ----------
    points:
        The points the clustering was fitted on, ``(n, d)``.
    labels:
        Their cluster labels (``-1`` = noise).
    core_mask:
        Which fitted points are core.
    eps:
        The DBSCAN radius used for the fit.
    kernel:
        Distance backend for :meth:`predict`: ``"numpy"`` (vectorized,
        default via ``"auto"`` without numba), ``"numba"``, or the
        testing-only ``"python"``.  All backends are bit-identical.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import RPDBSCAN
    >>> from repro.core.prediction import ClusterModel
    >>> rng = np.random.default_rng(0)
    >>> pts = np.concatenate([rng.normal(0, .1, (200, 2)),
    ...                       rng.normal(3, .1, (200, 2))])
    >>> fit = RPDBSCAN(eps=0.3, min_pts=10).fit(pts)
    >>> model = ClusterModel.from_state(fit.state)
    >>> model.predict(np.array([[0.05, 0.0], [10.0, 10.0]])).tolist()
    [0, -1]
    """

    def __init__(
        self,
        points: np.ndarray,
        labels: np.ndarray,
        core_mask: np.ndarray,
        eps: float,
        *,
        kernel: str = "auto",
    ) -> None:
        points = np.asarray(points, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        core_mask = np.asarray(core_mask, dtype=bool)
        if points.ndim != 2:
            raise ValueError("points must be (n, d)")
        if points.shape[1] == 0:
            raise ValueError(
                "points must have at least one coordinate axis; got shape "
                f"{points.shape} (d = 0)"
            )
        if labels.shape != (points.shape[0],) or core_mask.shape != labels.shape:
            raise ValueError("labels/core_mask must align with points")
        if eps <= 0:
            raise ValueError("eps must be positive")
        if np.any((labels < 0) & core_mask):
            raise ValueError("a core point cannot be noise")
        geometry = CellGeometry(float(eps), points.shape[1])
        self._init_table(
            geometry, points[core_mask], labels[core_mask], kernel
        )

    def _init_table(
        self,
        geometry: CellGeometry,
        core_points: np.ndarray,
        core_labels: np.ndarray,
        kernel: str,
    ) -> None:
        self.eps = geometry.eps
        self._geometry = geometry
        self.kernel = resolve_kernel(kernel)
        m, d = core_points.shape
        if m:
            cell_ids = geometry.cell_ids(core_points)
            # Lexicographic by cell, stable within a cell (fitted order):
            # lexsort's last key is primary, so feed axes in reverse.
            order = np.lexsort(cell_ids.T[::-1])
            cell_ids = cell_ids[order]
            boundary = np.empty(m, dtype=bool)
            boundary[0] = True
            np.any(cell_ids[1:] != cell_ids[:-1], axis=1, out=boundary[1:])
            starts = np.nonzero(boundary)[0]
            offsets = np.concatenate([starts, [m]]).astype(np.int64)
            table = FlatCellDictionary(
                geometry,
                cell_ids[starts],
                np.diff(offsets),
                offsets,
                np.zeros((m, d), dtype=np.uint16),
                core_labels[order],
                np.ascontiguousarray(core_points[order]),
                validate=False,
            )
        else:
            table = FlatCellDictionary._empty(geometry)
        self._table = table
        self._finder = NeighborCellFinder(
            table.cell_ids, geometry.side, self.eps
        )

    @classmethod
    def from_state(cls, state, *, kernel: str | None = None) -> "ClusterModel":
        """Build the serving view of a fitted
        :class:`~repro.core.cluster_state.ClusterState` (the model
        reuses the state's resolved kernel unless overridden)."""
        if state.geometry.dim == 0:
            raise ValueError("state must have at least one coordinate axis")
        model = cls.__new__(cls)
        model._init_table(
            CellGeometry(state.eps, state.geometry.dim),
            state.points[state.core_mask],
            state.labels[state.core_mask],
            state.kernel if kernel is None else kernel,
        )
        return model

    @property
    def n_core_points(self) -> int:
        """Number of core points retained by the model."""
        return int(self._table.sub_centers.shape[0])

    @property
    def num_cells(self) -> int:
        """Number of non-empty core cells in the model's table."""
        return int(self._table.num_cells)

    def warmup(self) -> float:
        """Pay every one-time cost of :meth:`predict` up front.

        JIT-compiles the kernel backend for this model's dimensionality
        (the per-dim compile :func:`repro.kernels.predict.warmup` does)
        and pushes one probe point through the full batched sweep so
        lazily built candidate tables are hot.  Returns wall seconds —
        the number callers bill to the setup bucket, mirroring
        ``_phase2_warmup``, so the first real request never pays compile
        cost inside its latency budget.
        """
        start = time.perf_counter()
        if self.kernel == "numba":
            from repro.kernels.predict import warmup as kernel_warmup

            kernel_warmup(self._geometry.dim)
        probe = np.zeros((1, self._geometry.dim), dtype=np.float64)
        self.predict(probe)
        return time.perf_counter() - start

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Labels for ``points``: nearest core's cluster within ``eps``,
        else ``-1``."""
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2 or pts.shape[1] != self._geometry.dim:
            raise ValueError(f"points must be (m, {self._geometry.dim})")
        out = np.full(pts.shape[0], -1, dtype=np.int64)
        table = self._table
        if table.num_cells == 0 or pts.shape[0] == 0:
            return out
        eps2 = self.eps * self.eps
        centers = table.sub_centers
        labels = table.sub_counts
        offsets = table.offsets
        sizes = np.diff(offsets)
        impl = None
        if self.kernel != "numpy":
            from repro.kernels.predict import get_impl

            impl = get_impl(self.kernel)
        # Group queries by cell so each candidate gather happens once.
        query_cells = self._geometry.cell_ids(pts)
        order = np.lexsort(query_cells.T[::-1])
        sorted_cells = query_cells[order]
        boundary = np.empty(pts.shape[0], dtype=bool)
        boundary[0] = True
        np.any(
            sorted_cells[1:] != sorted_cells[:-1], axis=1, out=boundary[1:]
        )
        group_starts = np.nonzero(boundary)[0]
        group_stops = np.concatenate([group_starts[1:], [pts.shape[0]]])
        # One batched candidate sweep over the distinct query cells —
        # per-group binary searches are what makes naive dense predict
        # scale with the query count instead of the group count.
        cand_rows, cand_offsets = self._finder.candidate_rows_batch(
            sorted_cells[group_starts]
        )
        # Gather every group's candidate centers into one pool; group
        # ``g`` owns pool rows ``block_lo[g]:block_hi[g]`` in candidate
        # order (cells ascend lexicographically, fitted order within).
        cand_sizes = sizes[cand_rows]
        block_bounds = np.concatenate(
            [[0], np.cumsum(cand_sizes)]
        ).astype(np.int64)
        block_lo = block_bounds[cand_offsets[:-1]]
        block_hi = block_bounds[cand_offsets[1:]]
        pool = csr_gather_indices(offsets[cand_rows], cand_sizes)
        pool_centers = centers[pool]
        pool_labels = labels[pool]
        if impl is not None:
            for g, (start, stop) in enumerate(
                zip(group_starts.tolist(), group_stops.tolist())
            ):
                lo, hi = int(block_lo[g]), int(block_hi[g])
                if lo == hi:
                    continue
                rows = order[start:stop]
                chunk = np.empty(rows.shape[0], dtype=np.int64)
                impl(
                    pts[rows],
                    pool_centers[lo:hi],
                    pool_labels[lo:hi],
                    eps2,
                    chunk,
                )
                out[rows] = chunk
            return out
        # Vectorized reference, fused across groups: per-pair sequential
        # squared distances (bit-identical to the scalar kernels) and a
        # segmented first-minimum tie-break via reduceat — no per-group
        # python loop.
        group_counts = group_stops - group_starts
        group_ids = np.repeat(
            np.arange(group_starts.size, dtype=np.int64), group_counts
        )
        per_query_block = (block_hi - block_lo)[group_ids]
        live = np.nonzero(per_query_block > 0)[0]
        if live.size == 0:
            return out
        pts_sorted = pts[order]
        budget = 1 << 21  # pairs per fused chunk (bounds peak memory)
        cum_pairs = np.cumsum(per_query_block[live])
        start_q = 0
        while start_q < live.size:
            base = int(cum_pairs[start_q - 1]) if start_q else 0
            stop_q = int(np.searchsorted(cum_pairs, base + budget))
            stop_q = max(stop_q, start_q + 1)
            qs = live[start_q:stop_q]
            seg_sizes = per_query_block[qs]
            total = int(seg_sizes.sum())
            seg_starts = np.concatenate(
                [[0], np.cumsum(seg_sizes[:-1])]
            ).astype(np.int64)
            pair_query = np.repeat(
                np.arange(qs.size, dtype=np.int64), seg_sizes
            )
            pair_center = (
                block_lo[group_ids[qs]][pair_query]
                + np.arange(total, dtype=np.int64)
                - seg_starts[pair_query]
            )
            qpts = pts_sorted[qs]
            d2 = np.zeros(total, dtype=np.float64)
            for k in range(self._geometry.dim):
                diff = qpts[:, k][pair_query] - pool_centers[pair_center, k]
                d2 += diff * diff
            masked = np.where(d2 <= eps2, d2, np.inf)
            best = np.minimum.reduceat(masked, seg_starts)
            # First minimum in candidate order: pair_center ascends
            # within a segment, so the smallest selected center is the
            # first one.
            selected = np.where(
                masked == best[pair_query], pair_center, np.iinfo(np.int64).max
            )
            first = np.minimum.reduceat(selected, seg_starts)
            hit = np.isfinite(best)
            out[order[qs[hit]]] = pool_labels[first[hit]]
            start_q = stop_q
        return out
