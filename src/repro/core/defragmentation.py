"""Dictionary defragmentation via binary space partitioning (Sec 4.2.2).

A worker may not be able to hold the whole two-level cell dictionary in
memory at once, so the dictionary is kept as a set of disjoint
*sub-dictionaries* (Definition 4.4).  Defragmentation reallocates cells
so that contiguous cells land in the same sub-dictionary and
sub-dictionaries are of similar size, using binary space partitioning
(BSP): recursively pick the axis-aligned cut that best balances the two
halves' entry counts until each piece fits a capacity budget.

Each sub-dictionary carries the MBR of its sub-cell centers
(Definition 5.9) so region queries can skip irrelevant sub-dictionaries
(Lemma 5.10).  Skipping never changes query results; it only reduces the
number of sub-dictionaries that must be resident, which
:class:`DefragmentedDictionary` tracks for the ablation benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cells import CellGeometry, CellId
from repro.core.dictionary import CellDictionary, CellSummary, FlatCellDictionary
from repro.spatial.mbr import MBR

__all__ = [
    "SubDictionary",
    "DefragmentedDictionary",
    "FlatSubDictionary",
    "FlatDefragmentedDictionary",
    "defragment",
]


@dataclass
class SubDictionary:
    """A disjoint piece of the two-level cell dictionary.

    Attributes
    ----------
    cells:
        The cell summaries owned by this piece.
    mbr:
        Minimum bounding rectangle of the piece's sub-cell centers.
    """

    cells: dict[CellId, CellSummary]
    mbr: MBR

    @property
    def num_entries(self) -> int:
        """Root entries plus leaf entries — the BSP balance weight."""
        return len(self.cells) + sum(s.num_subcells for s in self.cells.values())


def _subcell_center_mbr(
    cells: dict[CellId, CellSummary], geometry: CellGeometry
) -> MBR:
    """MBR over all sub-cell centers of ``cells`` (Definition 5.9)."""
    lo = np.full(geometry.dim, np.inf)
    hi = np.full(geometry.dim, -np.inf)
    for cell_id, summary in cells.items():
        origin = np.asarray(cell_id, dtype=np.float64) * geometry.side
        coords = summary.sub_coords.astype(np.float64)
        centers_lo = origin + (coords.min(axis=0) + 0.5) * geometry.sub_side
        centers_hi = origin + (coords.max(axis=0) + 0.5) * geometry.sub_side
        np.minimum(lo, centers_lo, out=lo)
        np.maximum(hi, centers_hi, out=hi)
    return MBR(lo, hi)


def _best_cut(
    cell_ids: np.ndarray, weights: np.ndarray
) -> tuple[int, int] | None:
    """Best balancing cut over all axes and positions.

    Returns ``(axis, index)`` meaning: sort cells by coordinate on
    ``axis``; the first ``index`` sorted cells go left.  ``None`` when no
    axis admits a cut (all cells share every coordinate).
    """
    total = float(weights.sum())
    best: tuple[float, int, int] | None = None
    for axis in range(cell_ids.shape[1]):
        order = np.argsort(cell_ids[:, axis], kind="stable")
        coords = cell_ids[order, axis]
        prefix = np.cumsum(weights[order].astype(np.float64))
        # Valid cut positions: between two distinct coordinate values, so
        # that the cut is a geometric hyperplane (contiguity).
        cut_positions = np.nonzero(coords[1:] != coords[:-1])[0] + 1
        if cut_positions.size == 0:
            continue
        left = prefix[cut_positions - 1]
        imbalance = np.abs(total - 2.0 * left)
        best_local = int(np.argmin(imbalance))
        candidate = (float(imbalance[best_local]), axis, int(cut_positions[best_local]))
        if best is None or candidate[0] < best[0]:
            best = candidate
    if best is None:
        return None
    return best[1], best[2]


def defragment(
    dictionary: CellDictionary | FlatCellDictionary, *, capacity: int = 4096
) -> "DefragmentedDictionary | FlatDefragmentedDictionary":
    """Split ``dictionary`` into balanced, contiguous sub-dictionaries.

    Parameters
    ----------
    dictionary:
        The full two-level cell dictionary (either layout; the columnar
        layout yields index-range views instead of cell copies).
    capacity:
        Maximum number of entries (cells + sub-cells) per sub-dictionary,
        modeling the worker's available memory.

    Returns
    -------
    DefragmentedDictionary | FlatDefragmentedDictionary
    """
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    if isinstance(dictionary, FlatCellDictionary):
        return _defragment_flat(dictionary, capacity)
    geometry = dictionary.geometry
    items = sorted(dictionary.cells.items())
    pieces: list[dict[CellId, CellSummary]] = []

    def recurse(chunk: list[tuple[CellId, CellSummary]]) -> None:
        weight = len(chunk) + sum(s.num_subcells for _, s in chunk)
        if weight <= capacity or len(chunk) <= 1:
            pieces.append(dict(chunk))
            return
        ids = np.array([cid for cid, _ in chunk], dtype=np.int64)
        weights = np.array(
            [1 + summary.num_subcells for _, summary in chunk], dtype=np.int64
        )
        cut = _best_cut(ids, weights)
        if cut is None:
            pieces.append(dict(chunk))
            return
        axis, index = cut
        order = np.argsort(ids[:, axis], kind="stable")
        left = [chunk[i] for i in order[:index]]
        right = [chunk[i] for i in order[index:]]
        recurse(left)
        recurse(right)

    if items:
        recurse(items)
    sub_dicts = [
        SubDictionary(cells=piece, mbr=_subcell_center_mbr(piece, geometry))
        for piece in pieces
        if piece
    ]
    return DefragmentedDictionary(dictionary, sub_dicts)


class DefragmentedDictionary:
    """A two-level cell dictionary organized as disjoint sub-dictionaries.

    Exposes the same query-support surface as :class:`CellDictionary`
    (delegation) plus sub-dictionary iteration with MBR-based skipping
    and counters of how many sub-dictionaries each query touched.
    """

    def __init__(self, dictionary: CellDictionary, sub_dicts: list[SubDictionary]) -> None:
        covered = sum(len(s.cells) for s in sub_dicts)
        if covered != len(dictionary.cells):
            raise ValueError("sub-dictionaries do not exactly cover the dictionary")
        self.dictionary = dictionary
        self.sub_dicts = sub_dicts
        self._owner: dict[CellId, int] = {}
        for index, sub in enumerate(sub_dicts):
            for cell_id in sub.cells:
                if cell_id in self._owner:
                    raise ValueError(f"cell {cell_id} in two sub-dictionaries")
                self._owner[cell_id] = index
        # Query-time statistics (ablation: value of skipping).
        self.queries = 0
        self.subdicts_consulted = 0

    @property
    def geometry(self) -> CellGeometry:
        """Shared cell geometry."""
        return self.dictionary.geometry

    @property
    def num_sub_dicts(self) -> int:
        """Number of sub-dictionaries after defragmentation."""
        return len(self.sub_dicts)

    def owner_of(self, cell_id: CellId) -> int:
        """Index of the sub-dictionary holding ``cell_id``."""
        return self._owner[cell_id]

    def relevant_sub_dicts(self, point: np.ndarray, eps: float) -> list[int]:
        """Sub-dictionaries that survive the Lemma 5.10 skip test for a
        query at ``point`` with radius ``eps``.  Updates counters."""
        kept = [
            i for i, sub in enumerate(self.sub_dicts) if not sub.mbr.can_skip(point, eps)
        ]
        self.queries += 1
        self.subdicts_consulted += len(kept)
        return kept

    def record_cells_consulted(self, cell_ids: list[CellId]) -> int:
        """Track which sub-dictionaries a candidate-cell set touches.

        Used by batched per-cell queries: returns the number of distinct
        sub-dictionaries those candidate cells live in (the pieces that
        would have to be resident) and updates counters.
        """
        touched = {self._owner[cid] for cid in cell_ids if cid in self._owner}
        self.queries += 1
        self.subdicts_consulted += len(touched)
        return len(touched)

    def average_consulted(self) -> float:
        """Mean sub-dictionaries consulted per query (1.0 is ideal)."""
        if self.queries == 0:
            return 0.0
        return self.subdicts_consulted / self.queries


# ----------------------------------------------------------------------
# Columnar (flat) layout: sub-dictionaries as index views
# ----------------------------------------------------------------------


@dataclass
class FlatSubDictionary:
    """A disjoint piece of a :class:`FlatCellDictionary`.

    Instead of copying cell summaries, the piece is the set of dense
    *rows* it owns — a view into the shared columnar arrays.

    Attributes
    ----------
    rows:
        Ascending dense row indices into the owning flat dictionary.
    mbr:
        Minimum bounding rectangle of the piece's sub-cell centers.
    num_entries:
        Root entries plus leaf entries — the BSP balance weight.
    """

    rows: np.ndarray
    mbr: MBR
    num_entries: int


def _defragment_flat(
    flat: FlatCellDictionary, capacity: int
) -> "FlatDefragmentedDictionary":
    """BSP defragmentation over the columnar layout (no cell copies)."""
    ids = flat.cell_ids
    weights = 1 + np.diff(flat.offsets)
    pieces: list[np.ndarray] = []

    def recurse(rows: np.ndarray) -> None:
        weight = int(weights[rows].sum())
        if weight <= capacity or rows.size <= 1:
            pieces.append(rows)
            return
        cut = _best_cut(ids[rows], weights[rows])
        if cut is None:
            pieces.append(rows)
            return
        axis, index = cut
        order = np.argsort(ids[rows, axis], kind="stable")
        recurse(np.sort(rows[order[:index]]))
        recurse(np.sort(rows[order[index:]]))

    if flat.num_cells:
        recurse(np.arange(flat.num_cells, dtype=np.int64))
    sub_dicts = []
    for rows in pieces:
        if rows.size == 0:
            continue
        centers, _, _ = flat.gather_subcells(rows)
        sub_dicts.append(
            FlatSubDictionary(
                rows=rows,
                mbr=MBR(centers.min(axis=0), centers.max(axis=0)),
                num_entries=int(weights[rows].sum()),
            )
        )
    return FlatDefragmentedDictionary(flat, sub_dicts)


class FlatDefragmentedDictionary:
    """A columnar cell dictionary organized as disjoint row-range views.

    The flat twin of :class:`DefragmentedDictionary`: same counters and
    skip test, but ownership is a dense ``(C,)`` array and consulted
    pieces are computed from candidate *rows* with one ``np.unique``.
    """

    def __init__(
        self, dictionary: FlatCellDictionary, sub_dicts: list[FlatSubDictionary]
    ) -> None:
        covered = sum(s.rows.size for s in sub_dicts)
        if covered != dictionary.num_cells:
            raise ValueError("sub-dictionaries do not exactly cover the dictionary")
        self.dictionary = dictionary
        self.sub_dicts = sub_dicts
        owner = np.full(dictionary.num_cells, -1, dtype=np.int64)
        for index, sub in enumerate(sub_dicts):
            if np.any(owner[sub.rows] >= 0):
                raise ValueError("a cell row appears in two sub-dictionaries")
            owner[sub.rows] = index
        self._owner = owner
        # Query-time statistics (ablation: value of skipping).
        self.queries = 0
        self.subdicts_consulted = 0

    @property
    def geometry(self) -> CellGeometry:
        """Shared cell geometry."""
        return self.dictionary.geometry

    @property
    def num_sub_dicts(self) -> int:
        """Number of sub-dictionaries after defragmentation."""
        return len(self.sub_dicts)

    def owner_of(self, cell_id: CellId) -> int:
        """Index of the sub-dictionary holding ``cell_id``."""
        return int(self._owner[self.dictionary.row_of(cell_id)])

    def relevant_sub_dicts(self, point: np.ndarray, eps: float) -> list[int]:
        """Sub-dictionaries that survive the Lemma 5.10 skip test for a
        query at ``point`` with radius ``eps``.  Updates counters."""
        kept = [
            i for i, sub in enumerate(self.sub_dicts) if not sub.mbr.can_skip(point, eps)
        ]
        self.queries += 1
        self.subdicts_consulted += len(kept)
        return kept

    def record_rows_consulted(self, rows: np.ndarray) -> int:
        """Track which sub-dictionaries a candidate-row set touches."""
        touched = np.unique(self._owner[np.asarray(rows, dtype=np.int64)])
        self.queries += 1
        self.subdicts_consulted += int(touched.size)
        return int(touched.size)

    def record_cells_consulted(self, cell_ids: list[CellId]) -> int:
        """Tuple-keyed twin of :meth:`record_rows_consulted` (API parity
        with :class:`DefragmentedDictionary`)."""
        if not cell_ids:
            self.queries += 1
            return 0
        rows = self.dictionary.find_rows(np.asarray(cell_ids, dtype=np.int64))
        return self.record_rows_consulted(rows[rows >= 0])

    def average_consulted(self) -> float:
        """Mean sub-dictionaries consulted per query (1.0 is ideal)."""
        if self.queries == 0:
            return 0.0
        return self.subdicts_consulted / self.queries
