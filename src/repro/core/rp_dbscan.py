"""The RP-DBSCAN orchestrator (Algorithm 1).

Ties the three phases together on top of the execution engine:

* **Phase I** — pseudo random partitioning (I-1), per-partition
  dictionary building and merging (I-2), and "broadcast" of the merged
  dictionary (handing it to the engine as the broadcast value).
* **Phase II** — per-partition core marking and cell-subgraph building,
  run as one engine task per partition.
* **Phase III** — progressive graph merging (III-1) on the driver and
  per-partition point labeling (III-2) as engine tasks.

All phase wall-times and per-task statistics land in the engine's
:class:`~repro.engine.counters.Counters`, which is what the efficiency
figures (12, 13, 14, 21) read.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cell_graph import CellGraph, FlatCellGraph
from repro.core.cells import CellGeometry
from repro.core.cluster_state import ClusterState
from repro.core.construction import QueryContext, SubgraphResult, build_cell_subgraph
from repro.core.defragmentation import defragment
from repro.core.dictionary import (
    CellDictionary,
    DictionarySizeModel,
    FlatCellDictionary,
    summarize_cell,
)
from repro.core.labeling import (
    LabelingContext,
    build_labeling_context,
    label_partition,
)
from repro.core.merging import (
    MERGE_MODES,
    PHASE_MERGE,
    MergeStats,
    progressive_merge,
)
from repro.core.partitioning import Partition, pseudo_random_partition
from repro.core.sharding import PartialFlatDictionary, ShardedFlatDictionary
from repro.data.streaming import PointSource, as_point_source
from repro.engine.counters import Counters
from repro.engine.executors import Engine
from repro.engine.faults import FaultPolicy
from repro.kernels import resolve_kernel

__all__ = [
    "RPDBSCAN",
    "RPDBSCANResult",
    "EXACT_RHO",
    "PHASE_PARTITION",
    "PHASE_DICTIONARY",
    "PHASE_CELL_GRAPH",
    "PHASE_MERGE",
    "PHASE_LABEL",
    "PHASES",
]

#: ``rho=0`` requests the exact limit of the approximation.  A literal
#: zero is not representable (the dictionary height ``h = 1 +
#: ceil(log2(1/rho))`` diverges), so it aliases to the finest refinement
#: whose sub-cell coordinates still fit the dictionary's uint16 layout:
#: ``2**-16`` gives ``h = 17`` and a center-approximation error of at
#: most ``eps * 2**-17`` per point — exact DBSCAN on any data whose
#: pairwise distances do not sit within that sliver of ``eps``.
EXACT_RHO = 2.0**-16

PHASE_PARTITION = "I-1 partitioning"
PHASE_DICTIONARY = "I-2 dictionary"
PHASE_CELL_GRAPH = "II cell graph"
# PHASE_MERGE is defined in repro.core.merging (the module that owns the
# bucket) and re-exported here alongside its siblings.
PHASE_LABEL = "III-2 labeling"

#: The five phases in execution order (Figure 12's legend).
PHASES = (
    PHASE_PARTITION,
    PHASE_DICTIONARY,
    PHASE_CELL_GRAPH,
    PHASE_MERGE,
    PHASE_LABEL,
)


def _dictionary_from_partition(partition: Partition, geometry: CellGeometry) -> CellDictionary:
    """Algorithm 2, ``Cell_Dictionary_Building.Map`` for one partition."""
    cells: dict = {}
    for cell_id, (start, stop) in partition.cell_slices.items():
        cells[cell_id] = summarize_cell(partition.points[start:stop], cell_id, geometry)
    return CellDictionary(geometry, cells)


def _dictionary_worker(partition: Partition, broadcast):
    geometry, layout = broadcast
    try:
        if layout == "flat":
            # One vectorized pass over the whole partition — no per-cell
            # python loop (Algorithm 2's Map step over arrays).
            return FlatCellDictionary.from_points(partition.points, geometry)
        return _dictionary_from_partition(partition, geometry)
    finally:
        partition.release()


def _phase2_worker(task, broadcast) -> SubgraphResult:
    """One Phase II task: ``(partition, shard_hint)``.

    ``shard_hint`` is the driver's Lemma 5.10 reachable-shard set for the
    partition (``None`` when the broadcast is not sharded).  Restricting
    the partial dictionary before querying makes any missed shard a hard
    error instead of a silent budget violation — the skip test is proved
    correct on every task, not just in tests.
    """
    partition, shard_hint = task
    context, min_pts, graph_layout = broadcast
    dictionary = context.dictionary
    restricted = shard_hint is not None and isinstance(
        dictionary, PartialFlatDictionary
    )
    if restricted:
        dictionary.restrict(shard_hint)
    try:
        return build_cell_subgraph(
            partition, context, min_pts, graph_layout=graph_layout
        )
    finally:
        if restricted:
            dictionary.restrict(None)
        # Out-of-core partitions drop their materialized block as soon
        # as the task is done — per-task residency, not per-run.
        partition.release()


def _phase2_warmup(broadcast) -> None:
    """Engine warm-up hook: build the region-query engine per worker.

    Runs during broadcast installation (worker initialization in process
    mode, driver-side in serial mode), so kd-tree construction and
    center-cache materialization never land in the first Phase II task's
    timing — that is what keeps Fig 13's slowest/fastest ratio a load
    measurement instead of a warm-up artifact.  With ``kernel="numba"``
    the same hook JIT-compiles the Phase II kernels, so compile cost also
    lands in the ``engine.setup`` bucket — and a respawned worker pool
    automatically re-warms, because the engine re-ships the broadcast
    (with this hook) to every fresh pool.
    """
    context = broadcast[0]
    context.engine.warmup_kernel()


def _phase3_worker(partition: Partition, context: LabelingContext):
    return label_partition(partition, context)


@dataclass
class RPDBSCANResult:
    """Everything a run of RP-DBSCAN produced.

    Attributes
    ----------
    labels:
        ``(n,)`` int64 cluster labels; ``-1`` marks noise.
    core_mask:
        ``(n,)`` bool: whether each point was marked core.
    n_clusters:
        Number of clusters found.
    counters:
        Phase wall-times and per-task stats.
    merge_stats:
        Per-round edge counts of the tournament (Fig 17 / Table 7).
    dictionary_model:
        Lemma 4.3 size accounting of the broadcast dictionary (Table 5).
    partition_sizes:
        Points per pseudo random partition.
    num_points:
        Size of the input data set.
    """

    labels: np.ndarray
    core_mask: np.ndarray
    n_clusters: int
    counters: Counters
    merge_stats: MergeStats
    dictionary_model: DictionarySizeModel
    partition_sizes: list[int] = field(default_factory=list)
    num_points: int = 0
    #: The resolved Phase II kernel backend this run executed with
    #: (``"numpy"``, ``"numba"``, or the testing-only ``"python"`` —
    #: never ``"auto"``, which resolves before the run starts).
    kernel: str = "numpy"
    global_graph: CellGraph | FlatCellGraph | None = None
    subdict_stats: tuple[int, float] | None = None
    #: Shard-residency ledger of a budgeted run (``--broadcast-budget``):
    #: the driver-side sharded dictionary's stats plus, in process mode,
    #: the per-worker ledgers gathered after Phase II.  ``None`` for
    #: full-broadcast runs.
    broadcast_residency: dict | None = None
    #: Remote mode only: per-node counters (ships, bytes, tasks, deaths,
    #: rejoins) from the cluster at the end of the run.  ``None`` for
    #: serial/process runs.
    node_ledger: list[dict] | None = None
    #: The persistent model plane: geometry + flat dictionary + global
    #: cell graph + canonical cell labels + per-point arrays, ready for
    #: serving (:class:`~repro.core.prediction.ClusterModel`),
    #: serialization (``RPST``), and incremental refit
    #: (:meth:`~repro.core.cluster_state.ClusterState.ingest`).  ``None``
    #: when the fit streamed from a :class:`~repro.data.streaming.PointSource`
    #: — the model plane holds the fitted points, which an out-of-core
    #: run deliberately never materializes in full.
    state: ClusterState | None = None

    @property
    def noise_count(self) -> int:
        """Number of points labeled as noise."""
        return int(np.count_nonzero(self.labels == -1))

    @property
    def total_seconds(self) -> float:
        """Total elapsed time across all phases."""
        return self.counters.total_seconds()

    @property
    def load_imbalance(self) -> float:
        """Slowest/fastest Phase II task ratio (Fig 13's metric)."""
        return self.counters.load_imbalance(PHASE_CELL_GRAPH)

    @property
    def worker_imbalance(self) -> float:
        """Busiest/idlest worker ratio for Phase II.

        The per-worker companion to :attr:`load_imbalance`, comparable
        across ``serial`` and ``process`` engine modes now that worker
        warm-up is excluded from task timings.
        """
        return self.counters.worker_imbalance(PHASE_CELL_GRAPH)

    @property
    def setup_seconds(self) -> float:
        """Engine setup time (pool startup, broadcast shipping, warm-up).

        Accounted separately from the five phases; see
        :meth:`~repro.engine.counters.Counters.setup_total`.
        """
        return self.counters.setup_total()

    @property
    def fault_events(self) -> dict[str, int]:
        """Fault-recovery events of this run (retries, timeouts,
        respawns, speculations) — counts, kept out of phase breakdowns
        like the setup bucket.  Empty for a fault-free run."""
        return dict(self.counters.fault_events)

    @property
    def broadcast_bytes(self) -> dict[str, int]:
        """Broadcast payload bytes of this run, by channel (``"pickle"``,
        ``"shm"``, ``"shm_segment"``) — the serialized-bytes side of the
        engine's fan-outs.  Empty when nothing was shipped (serial
        mode)."""
        return dict(self.counters.broadcast_bytes)

    @property
    def points_processed(self) -> int:
        """Total points processed across splits in local clustering.

        For RP-DBSCAN this always equals ``num_points`` — random
        partitioning never duplicates a point (Fig 14's invariant).
        """
        return self.counters.items_processed(PHASE_CELL_GRAPH)

    def phase_breakdown(self) -> dict[str, float]:
        """Phase -> fraction of elapsed time, in phase order (Fig 12)."""
        raw = self.counters.breakdown()
        return {phase: raw.get(phase, 0.0) for phase in PHASES}


class RPDBSCAN:
    """Random Partitioning DBSCAN (the paper's Algorithm 1).

    Parameters
    ----------
    eps:
        Neighborhood radius (also the cell diagonal).
    min_pts:
        Minimum neighborhood size for a core point.
    num_partitions:
        Number of pseudo random partitions ``k`` (one engine task each).
    rho:
        Approximation parameter; ``0.01`` reproduces exact DBSCAN on the
        paper's data sets (Table 4) and is the paper's default.  ``0``
        requests the exact limit and aliases to :data:`EXACT_RHO`
        (``2**-16``, the finest refinement the dictionary's uint16
        sub-cell coordinates can hold).
    seed:
        Seed for the partitioning RNG.
    engine:
        An :class:`~repro.engine.executors.Engine`, or ``None`` for a
        fresh serial engine.  In ``process`` mode one persistent worker
        pool is threaded through the mapped phases (I-2, II, III-2) and
        survives across ``fit()`` calls; the caller owns its lifecycle
        (``with Engine("process") as e: ...`` or ``e.close()``).  Each
        ``fit()`` reports a per-run snapshot of the engine's counters,
        so results from repeated fits stay independent.
    partition_method:
        ``"random_key"`` (paper) or ``"shuffle"``.
    candidate_strategy:
        Candidate-cell search: ``"auto"``, ``"enumerate"``, ``"kdtree"``.
    kernel:
        Phase II inner-loop backend: ``"numpy"`` (vectorized reference),
        ``"numba"`` (compiled ``@njit(parallel=True)`` kernels over the
        columnar dictionary arrays; requires the ``kernels`` optional
        extra), or ``"auto"`` (default; numba when importable, silent
        numpy fallback otherwise).  Resolved at construction time —
        an explicit ``"numba"`` without numba raises
        :class:`~repro.kernels.KernelUnavailableError` immediately.
        All backends produce bit-identical labels, core flags, and
        density counts; JIT compilation happens in the engine's Phase II
        warm-up hook, so it lands in the ``engine.setup`` bucket and
        never in phase timings.
    fault_policy:
        Optional :class:`~repro.engine.faults.FaultPolicy` installed on
        the engine: parallel phases then run under the engine's recovery
        loop (retries, timeouts, pool re-spawn, straggler speculation),
        so one crashed or hung worker no longer kills the whole
        ``fit()``.  Recovery events are reported in the result counters'
        fault buckets, never in phase breakdowns.
    defragment_capacity:
        When set, the broadcast dictionary is defragmented into
        sub-dictionaries of at most this many entries (Sec 4.2.2) and
        sub-dictionary-skipping statistics are collected.
    broadcast_budget:
        When set (bytes), the broadcast dictionary is sharded into one
        leaf segment per sub-dictionary and each worker keeps at most
        this many leaf bytes resident (LRU) — the out-of-core partial
        broadcast.  The driver ships each Phase II task only the shards
        its partition can reach within ``eps`` (Lemma 5.10); labels are
        bit-identical to a full-broadcast run.  Requires the ``"flat"``
        dictionary layout.  When ``defragment_capacity`` is unset, a
        capacity is derived from the budget so several shards fit
        under it at once.
    dictionary_layout:
        ``"flat"`` (default) builds the columnar
        :class:`~repro.core.dictionary.FlatCellDictionary` — vectorized
        Phase I-2, CSR region queries, and shared-memory-broadcast
        eligible.  ``"dict"`` keeps the dict-of-dataclass layout; both
        produce bit-identical labels.
    graph_layout:
        ``"flat"`` (default) makes Phase II emit columnar
        :class:`~repro.core.cell_graph.FlatCellGraph` subgraphs
        (vectorized Phase III-1 matches, compact merge payloads);
        ``"dict"`` keeps the reference :class:`CellGraph`.  Labels,
        ``n_clusters``, and per-round merge accounting are bit-identical
        across layouts.
    merge_mode:
        Phase III-1 tournament scheduling: ``"driver"`` runs every match
        on the driver, ``"engine"`` dispatches each round's matches
        through the engine, ``"auto"`` (default) picks per run via a
        cost model (engine only for process engines with enough work).
        The clustering is bit-identical across modes.

    Examples
    --------
    >>> import numpy as np
    >>> from repro import RPDBSCAN
    >>> rng = np.random.default_rng(0)
    >>> pts = np.concatenate([rng.normal(0, .1, (200, 2)),
    ...                       rng.normal(3, .1, (200, 2))])
    >>> result = RPDBSCAN(eps=0.3, min_pts=10, num_partitions=4).fit(pts)
    >>> result.n_clusters
    2
    """

    def __init__(
        self,
        eps: float,
        min_pts: int,
        num_partitions: int = 8,
        rho: float = 0.01,
        *,
        seed: int | None = 0,
        engine: Engine | None = None,
        partition_method: str = "random_key",
        candidate_strategy: str = "auto",
        kernel: str = "auto",
        fault_policy: FaultPolicy | None = None,
        defragment_capacity: int | None = None,
        broadcast_budget: int | None = None,
        dictionary_layout: str = "flat",
        graph_layout: str = "flat",
        merge_mode: str = "auto",
    ) -> None:
        if eps <= 0:
            raise ValueError("eps must be positive")
        if min_pts < 1:
            raise ValueError("min_pts must be >= 1")
        if num_partitions < 1:
            raise ValueError("num_partitions must be >= 1")
        if dictionary_layout not in ("flat", "dict"):
            raise ValueError(
                f"dictionary_layout must be 'flat' or 'dict', got "
                f"{dictionary_layout!r}"
            )
        if graph_layout not in ("flat", "dict"):
            raise ValueError(
                f"graph_layout must be 'flat' or 'dict', got {graph_layout!r}"
            )
        if merge_mode not in MERGE_MODES:
            raise ValueError(
                f"merge_mode must be one of {MERGE_MODES}, got {merge_mode!r}"
            )
        if broadcast_budget is not None:
            if broadcast_budget < 1:
                raise ValueError("broadcast_budget must be >= 1 byte")
            if dictionary_layout != "flat":
                raise ValueError(
                    "broadcast_budget requires the 'flat' dictionary layout "
                    "(sharding is columnar)"
                )
        self.eps = float(eps)
        self.min_pts = int(min_pts)
        self.num_partitions = int(num_partitions)
        self.rho = float(rho) if rho != 0 else EXACT_RHO
        self.seed = seed
        self.engine = engine if engine is not None else Engine("serial")
        self.partition_method = partition_method
        self.candidate_strategy = candidate_strategy
        # Resolve at construction time so kernel="numba" without numba
        # fails fast with the clear install hint, not mid-fit on a
        # worker; "auto" pins to its concrete backend here so every
        # worker of the run agrees on it.
        self.kernel = resolve_kernel(kernel)
        self.fault_policy = fault_policy
        if fault_policy is not None:
            self.engine.fault_policy = fault_policy
        self.defragment_capacity = defragment_capacity
        self.broadcast_budget = broadcast_budget
        self.dictionary_layout = dictionary_layout
        self.graph_layout = graph_layout
        self.merge_mode = merge_mode

    def fit(self, points: np.ndarray | PointSource) -> RPDBSCANResult:
        """Cluster ``points`` and return the full result object.

        ``points`` may be an eager ``(n, d)`` array or a
        :class:`~repro.data.streaming.PointSource` (a memory-mapped
        ``.npy``, a chunked ``.npz``, an ``np.memmap`` — anything
        :func:`~repro.data.streaming.open_point_source` produces).  With
        a source, partitions ship as index lists and materialize their
        point blocks per task — the driver never holds the whole data
        set.  Labels are bit-identical across the two ingestion paths.

        When the engine carries a :class:`~repro.obs.spans.Tracer`, the
        whole call is recorded as a ``fit`` span containing one span per
        phase: driver-side phases (I-1 partitioning, the I-2 dictionary
        merge, III-1 merging) as ``driver`` spans opened here, mapped
        phases (I-2, II, III-2) as ``phase`` spans opened by the engine
        with nested task/attempt spans.
        """
        if isinstance(points, np.memmap):
            points = as_point_source(points)
        if isinstance(points, PointSource):
            pts: np.ndarray | PointSource = points
            n, dim = points.num_points, points.dim
            # Streaming finiteness validation — same contract as the
            # eager path, one chunk resident at a time.
            bad = 0
            for _, chunk in points.iter_chunks():
                bad += int(np.count_nonzero(~np.isfinite(chunk).all(axis=1)))
            if bad:
                raise ValueError(
                    f"points contain NaN/inf coordinates in {bad} row(s); "
                    "the cell grid requires finite coordinates"
                )
        else:
            pts = np.asarray(points, dtype=np.float64)
            if pts.ndim != 2:
                raise ValueError(
                    f"points must be a 2-d array of shape (n, d), got shape "
                    f"{pts.shape}"
                )
            if pts.size and not np.isfinite(pts).all():
                bad = int(np.count_nonzero(~np.isfinite(pts).all(axis=1)))
                raise ValueError(
                    f"points contain NaN/inf coordinates in {bad} row(s); the "
                    "cell grid requires finite coordinates"
                )
            n, dim = pts.shape
        # Counters accumulate for the engine's whole lifetime (it may be
        # shared across fits); snapshot here and report only this run's
        # delta so repeated fit() calls yield independent timings.
        engine_counters = self.engine.counters
        fit_mark = engine_counters.mark()
        tracer = self.engine.tracer
        geometry = CellGeometry(self.eps, max(dim, 1), self.rho)
        with tracer.span(
            "fit", "fit", annotations={"n": n, "dim": dim, "kernel": self.kernel}
        ):
            return self._fit_traced(pts, n, geometry, engine_counters, fit_mark)

    def _empty_state(self, geometry: CellGeometry) -> ClusterState:
        return ClusterState.empty(
            geometry,
            self.min_pts,
            kernel=self.kernel,
            candidate_strategy=self.candidate_strategy,
            merge_mode=self.merge_mode,
            num_tasks=self.num_partitions,
        )

    def _fit_traced(self, pts, n, geometry, engine_counters, fit_mark):
        dim = geometry.dim
        # The model plane holds the fitted points; a PointSource run
        # deliberately never materializes them in full, so it carries no
        # state (the result arrays are unaffected).
        build_state = isinstance(pts, np.ndarray)
        if n == 0:
            return RPDBSCANResult(
                labels=np.empty(0, dtype=np.int64),
                core_mask=np.empty(0, dtype=bool),
                n_clusters=0,
                counters=engine_counters.since(fit_mark),
                merge_stats=MergeStats(edges_per_round=[0]),
                dictionary_model=DictionarySizeModel(0, 0, dim or 1, geometry.h),
                num_points=0,
                kernel=self.kernel,
                state=self._empty_state(geometry) if build_state else None,
            )

        state = self._empty_state(geometry) if build_state else None
        partitions, dictionary, sharded, context = self._phase1(
            state, pts, geometry
        )
        subgraph_results, broadcast_residency = self._phase2(
            state, partitions, context, sharded, n
        )
        labels, global_graph, merge_stats, labeling_context = self._phase3(
            state, partitions, subgraph_results, dictionary, sharded, n
        )
        core_mask = np.zeros(n, dtype=bool)
        for partition, subgraph in zip(
            partitions, subgraph_results, strict=True
        ):
            core_mask[partition.global_indices] = subgraph.core_mask
        if state is not None:
            state.labels = labels
            state.core_mask = core_mask

        # Out-of-core partitions may still hold their Phase III-2 blocks;
        # the run is over, so drop them before reporting.
        for partition in partitions:
            partition.release()

        subdict_stats = None
        if sharded is not None:
            subdict_stats = (sharded.num_shards, sharded.average_consulted())
        elif self.defragment_capacity is not None:
            defrag_dict = context.defragmented
            if defrag_dict is not None:
                subdict_stats = (
                    defrag_dict.num_sub_dicts,
                    defrag_dict.average_consulted(),
                )
        return RPDBSCANResult(
            labels=labels,
            core_mask=core_mask,
            n_clusters=labeling_context.n_clusters,
            counters=engine_counters.since(fit_mark),
            merge_stats=merge_stats,
            dictionary_model=dictionary.size_model(),
            partition_sizes=[p.num_points for p in partitions],
            num_points=n,
            kernel=self.kernel,
            global_graph=global_graph,
            subdict_stats=subdict_stats,
            broadcast_residency=broadcast_residency,
            node_ledger=self.engine.node_ledger(),
            state=state,
        )

    # ------------------------------------------------------------------
    # The three pipeline steps (each reads/writes the ClusterState)
    # ------------------------------------------------------------------

    def _phase1(self, state, pts, geometry):
        """Phases I-1 + I-2: partition, build + merge the dictionary.

        Writes the state's point plane (``points``, ``point_cell_rows``)
        and ``dictionary``; returns the partitions plus the Phase II
        broadcast context (and the sharded dictionary, if budgeted).
        """
        counters = self.engine.counters
        tracer = self.engine.tracer
        dim = geometry.dim

        # ---------------- Phase I-1: pseudo random partitioning --------
        with counters.timed_phase(PHASE_PARTITION), tracer.span(
            PHASE_PARTITION, "driver", phase=PHASE_PARTITION
        ):
            partitions = pseudo_random_partition(
                pts,
                geometry,
                self.num_partitions,
                seed=self.seed,
                method=self.partition_method,
            )

        # ---------------- Phase I-2: dictionary building + broadcast ---
        # Per-partition dictionary building is a map over partitions
        # (Algorithm 2), so it runs as engine tasks; the union of the
        # disjoint partials and the broadcast warm-up stay driver-side.
        partials = self.engine.map_tasks(
            _dictionary_worker,
            [p for p in partitions if p.num_points > 0],
            broadcast=(geometry, self.dictionary_layout),
            phase=PHASE_DICTIONARY,
            item_counter=lambda p: p.num_cells,
        )
        with counters.timed_phase(PHASE_DICTIONARY), tracer.span(
            f"{PHASE_DICTIONARY} (driver merge)", "driver", phase=PHASE_DICTIONARY
        ):
            if self.dictionary_layout == "flat":
                dictionary = FlatCellDictionary.merge(partials)
            else:
                dictionary = CellDictionary.merge(partials)
            sharded: ShardedFlatDictionary | None = None
            if self.broadcast_budget is not None:
                capacity = self.defragment_capacity
                if capacity is None:
                    # Derive a capacity so ~4 leaf shards fit under the
                    # budget at once: enough residency for the LRU to
                    # absorb a query's cross-shard candidates without
                    # thrashing, small enough that the budget binds.
                    entry_bytes = dim * 8 + 8  # center row + count
                    capacity = max(1, self.broadcast_budget // (4 * entry_bytes))
                defrag = defragment(dictionary, capacity=capacity)
                sharded = ShardedFlatDictionary.from_defragmented(
                    defrag, budget_bytes=self.broadcast_budget
                )
                context = QueryContext(
                    sharded, strategy=self.candidate_strategy, kernel=self.kernel
                )
            else:
                context = QueryContext(
                    dictionary,
                    strategy=self.candidate_strategy,
                    defragment_capacity=self.defragment_capacity,
                    kernel=self.kernel,
                )

        if state is not None:
            flat = (
                dictionary
                if isinstance(dictionary, FlatCellDictionary)
                else FlatCellDictionary.from_cell_dictionary(dictionary)
            )
            state.dictionary = flat
            state.points = pts
            rows = np.empty(pts.shape[0], dtype=np.int64)
            for partition in partitions:
                if not partition.cell_slices:
                    continue
                owned = np.array(list(partition.cell_slices), dtype=np.int64)
                local = np.empty(partition.num_points, dtype=np.int64)
                for row, (start, stop) in zip(
                    flat.find_rows(owned).tolist(),
                    partition.cell_slices.values(),
                ):
                    local[start:stop] = row
                rows[partition.global_indices] = local
            state.point_cell_rows = rows
        return partitions, dictionary, sharded, context

    def _phase2(self, state, partitions, context, sharded, n):
        """Phase II: per-partition core marking + cell subgraphs.

        Reads the broadcast context built by :meth:`_phase1`; the
        per-point core flags it produces land on the state after
        Phase III-2's scatter (the subgraph results are returned).
        """
        counters = self.engine.counters
        # The warm-up hook builds the region-query engine during worker
        # initialization (or once on the driver in serial mode), under
        # the engine.setup bucket: every mode pays index construction
        # outside the task timings, keeping Fig 12/13 comparable.
        # With a sharded broadcast, each task also carries the driver's
        # Lemma 5.10 reachable-shard hint: the worker may only attach
        # shards within eps of the partition's cells.
        counters.registry.counter(f"phase2.kernel.{self.kernel}").inc()
        shard_hints: list[tuple[int, ...] | None] = [None] * len(partitions)
        if sharded is not None:
            for i, partition in enumerate(partitions):
                if not partition.cell_slices:
                    shard_hints[i] = ()
                    continue
                owned_ids = np.array(list(partition.cell_slices), dtype=np.int64)
                rows = sharded.find_rows(owned_ids)
                shard_hints[i] = tuple(
                    int(s) for s in sharded.reachable_shards(rows)
                )
        subgraph_results: list[SubgraphResult] = self.engine.map_tasks(
            _phase2_worker,
            list(zip(partitions, shard_hints)),
            broadcast=(context, self.min_pts, self.graph_layout),
            phase=PHASE_CELL_GRAPH,
            item_counter=lambda t: t[0].num_points,
            warmup=_phase2_warmup,
        )
        broadcast_residency = None
        if sharded is not None:
            # Gather the residency ledgers while the pool (if any) still
            # holds the sharded epoch: driver-side stats plus one entry
            # per worker in process mode.
            broadcast_residency = {
                "driver": sharded.residency_stats(),
                "workers": [
                    {"pid": pid, **stats}
                    for pid, stats in self.engine.collect_broadcast_stats()
                ],
            }
            peak = max(
                [w["peak_resident_bytes"] for w in broadcast_residency["workers"]]
                + [broadcast_residency["driver"]["peak_resident_bytes"]]
            )
            registry = counters.registry
            registry.gauge("broadcast.shards").set(sharded.num_shards)
            registry.gauge("broadcast.budget_bytes").set(self.broadcast_budget)
            registry.gauge("broadcast.peak_resident_bytes").set(peak)
        return subgraph_results, broadcast_residency

    def _phase3(
        self, state, partitions, subgraph_results, dictionary, sharded, n
    ):
        """Phase III: merge the subgraphs, then label every point.

        Writes the state's graph plane (``graph``, ``cell_labels``);
        per-point ``labels``/``core_mask`` are committed by the caller
        once the scatter completes.
        """
        counters = self.engine.counters
        tracer = self.engine.tracer
        # progressive_merge owns the Phase III-1 accounting: driver-mode
        # tournaments run inside one driver span, engine-mode ones open
        # per-round phase spans via map_tasks (all in the PHASE_MERGE
        # counter bucket).  Only the labeling-context build stays here.
        graphs = [r.graph for r in subgraph_results]
        global_graph, merge_stats = progressive_merge(
            graphs, merge_mode=self.merge_mode, engine=self.engine
        )
        with counters.timed_phase(PHASE_MERGE), tracer.span(
            f"{PHASE_MERGE} (labeling context)", "driver", phase=PHASE_MERGE
        ):
            core_masks = {r.pid: r.core_mask for r in subgraph_results}
            # In a budgeted run the index map must reference the sharded
            # dictionary: its lookups touch only the root arrays, so the
            # Phase III-2 broadcast hoists root + shards (budget-bounded
            # residency) instead of dragging the full flat dictionary
            # into a monolithic segment.
            index_source = sharded if sharded is not None else dictionary
            labeling_context = build_labeling_context(
                global_graph, partitions, core_masks, self.eps,
                index_source.index_map,
            )

        if state is not None:
            flat_graph = (
                global_graph
                if isinstance(global_graph, FlatCellGraph)
                else FlatCellGraph.from_cell_graph(
                    global_graph, state.dictionary.num_cells
                )
            )
            state.graph = flat_graph
            cell_labels = np.full(
                state.dictionary.num_cells, -1, dtype=np.int64
            )
            for cell, label in labeling_context.cell_labels.items():
                cell_labels[cell] = label
            state.cell_labels = cell_labels

        # ---------------- Phase III-2: point labeling ------------------
        labels = np.full(n, -1, dtype=np.int64)
        label_chunks = self.engine.map_tasks(
            _phase3_worker,
            partitions,
            broadcast=labeling_context,
            phase=PHASE_LABEL,
            item_counter=lambda p: p.num_points,
        )
        # strict=True: a partition/result misalignment must raise, not
        # silently truncate and mislabel the tail.
        for _partition, (global_indices, chunk_labels) in zip(
            partitions, label_chunks, strict=True
        ):
            labels[global_indices] = chunk_labels
        return labels, global_graph, merge_stats, labeling_context

    def fit_predict(self, points: np.ndarray | PointSource) -> np.ndarray:
        """Cluster ``points`` and return only the label array."""
        return self.fit(points).labels
