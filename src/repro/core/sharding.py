"""Budgeted partial broadcast of the cell dictionary (Sec 4.2.2, Lemma 5.10).

The paper keeps the two-level cell dictionary as disjoint
*sub-dictionaries* (Definition 4.4) precisely so a worker never has to
hold the whole structure.  This module turns that idea into a physical
data plane:

* :class:`ShardedFlatDictionary` (driver side) splits a defragmented
  :class:`~repro.core.dictionary.FlatCellDictionary` into a small,
  always-resident **root** (cell ids, densities, CSR offsets, shard
  ownership) plus one leaf **shard** per
  :class:`~repro.core.defragmentation.FlatSubDictionary` — the sub-cell
  centers and densities, which are the Lemma 4.3 bulk of the payload.
* :class:`PartialFlatDictionary` (both sides) answers the full flat
  query surface while keeping at most ``budget_bytes`` of leaf shards
  resident, loading shards through a pluggable :class:`ShardStore` and
  evicting least-recently-used ones.
* :meth:`ShardedFlatDictionary.reachable_shards` is the driver-side
  Lemma 5.10 skip test: a shard whose cell-box bounding rectangle lies
  farther than ``eps`` from every cell of a partition can never be
  consulted by that partition's region queries, so the worker need not
  be allowed to attach it.

A note on the skip geometry: the paper's Definition 5.9 MBR spans
*sub-cell centers*, which is sound for skipping whole sub-dictionaries
inside a point query.  Residency, however, is driven by the batched
query's gather: it loads the leaves of every candidate whose *cell box*
is within ``eps`` of a query point, even if all of that candidate's
sub-cell centers turn out farther away.  The shard rectangles here
therefore span the owned **cell boxes** — a superset of the center MBR —
so "skipped" provably implies "never gathered".

Every access path returns bit-identical values to the monolithic flat
dictionary; the budget changes residency, never results.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from typing import Iterable, Protocol

import numpy as np

from repro.core.cells import CellGeometry, CellId
from repro.core.defragmentation import FlatDefragmentedDictionary
from repro.core.dictionary import csr_gather_indices, lex_keys

__all__ = [
    "ShardStore",
    "InMemoryShardStore",
    "PartialFlatDictionary",
    "ShardedFlatDictionary",
    "live_residency_stats",
]

#: Slack factor matching the candidate-cell finder's box-distance test,
#: so the reachability superset holds even at floating-point boundaries.
_REACH_SLACK = 1.0 + 1e-12

#: Live partial dictionaries in this process, for residency telemetry.
_LIVE: "weakref.WeakSet[PartialFlatDictionary]" = weakref.WeakSet()


class ShardStore(Protocol):
    """Loads leaf shards on demand for a :class:`PartialFlatDictionary`.

    A shard is the pair ``(sub_centers, sub_counts)`` of one
    sub-dictionary, concatenated over its cells in ascending dense-row
    order.  Implementations: :class:`InMemoryShardStore` (driver /
    serial engine) and the shared-memory segment store in
    :mod:`repro.engine.shm` (workers).
    """

    @property
    def num_shards(self) -> int: ...

    def nbytes(self, index: int) -> int:
        """Resident size of shard ``index`` in bytes."""
        ...

    def load(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """Materialize shard ``index`` as ``(centers (k, d), counts (k,))``."""
        ...

    def release(self, index: int) -> None:
        """Drop any per-shard resources held for ``index`` (eviction)."""
        ...


class InMemoryShardStore:
    """A :class:`ShardStore` over already-materialized shard arrays."""

    def __init__(self, blocks: list[tuple[np.ndarray, np.ndarray]]) -> None:
        self._blocks = blocks

    @property
    def num_shards(self) -> int:
        return len(self._blocks)

    def nbytes(self, index: int) -> int:
        centers, counts = self._blocks[index]
        return int(centers.nbytes + counts.nbytes)

    def load(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        return self._blocks[index]

    def release(self, index: int) -> None:
        pass


class PartialFlatDictionary:
    """The flat dictionary's query surface over a bounded shard cache.

    Root arrays (always resident, shipped to every worker):

    ``cell_ids (C, d)``, ``cell_counts (C,)``, ``offsets (C + 1,)`` —
    exactly the flat dictionary's root; plus ``shard_owner (C,)`` (which
    shard holds each cell's leaves), ``local_starts (C,)`` (where the
    cell's leaf block starts inside its shard), and the per-shard
    cell-box rectangles ``shard_box_lo/hi (S, d)``.

    Leaf shards are attached through ``store`` on first touch and
    evicted least-recently-used so that resident leaf bytes never exceed
    ``budget_bytes`` (``None`` = unbounded).  :meth:`restrict` narrows
    the attachable set to a partition's Lemma 5.10 reachable shards —
    violations raise, which doubles as a live proof that the driver-side
    skip test is a true superset of demand.
    """

    def __init__(
        self,
        geometry: CellGeometry,
        cell_ids: np.ndarray,
        cell_counts: np.ndarray,
        offsets: np.ndarray,
        shard_owner: np.ndarray,
        local_starts: np.ndarray,
        shard_box_lo: np.ndarray,
        shard_box_hi: np.ndarray,
        store: ShardStore,
        *,
        budget_bytes: int | None = None,
    ) -> None:
        if budget_bytes is not None and budget_bytes < 1:
            raise ValueError("budget_bytes must be >= 1")
        self.geometry = geometry
        self.cell_ids = cell_ids
        self.cell_counts = cell_counts
        self.offsets = offsets
        self.shard_owner = shard_owner
        self.local_starts = local_starts
        self.shard_box_lo = shard_box_lo
        self.shard_box_hi = shard_box_hi
        self.store = store
        self.budget_bytes = budget_bytes
        self._keys = lex_keys(cell_ids) if cell_ids.shape[0] else None
        self._resident: OrderedDict[int, tuple[np.ndarray, np.ndarray]] = OrderedDict()
        self._allowed: frozenset[int] | None = None
        # Residency ledger.
        self.resident_bytes = 0
        self.peak_resident_bytes = 0
        self.shard_attaches = 0
        self.shard_evictions = 0
        # Residency oracle (Lemma 5.10 accounting, mirrors the
        # defragmented wrappers' consulted counters).
        self.queries = 0
        self.shards_consulted = 0
        _LIVE.add(self)

    # ------------------------------------------------------------------
    # Introspection (FlatCellDictionary parity)
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.cell_ids.shape[0]

    def __contains__(self, cell_id: CellId) -> bool:
        return self.index_map.get(cell_id) is not None

    @property
    def num_cells(self) -> int:
        """Number of non-empty cells."""
        return self.cell_ids.shape[0]

    @property
    def num_subcells(self) -> int:
        """Number of non-empty sub-cells across all cells."""
        return int(self.offsets[-1]) if self.offsets.shape[0] else 0

    @property
    def num_points(self) -> int:
        """Total density — must equal the data set size."""
        return int(self.cell_counts.sum())

    @property
    def num_shards(self) -> int:
        """Number of leaf shards."""
        return self.store.num_shards

    @property
    def index_map(self):
        """Mapping-style ``cell id -> dense row`` view (binary search)."""
        from repro.core.dictionary import _FlatIndexMap

        return _FlatIndexMap(self)

    def cell_at(self, row: int) -> CellId:
        """Cell id of dense ``row`` (inverse of :meth:`row_of`)."""
        return tuple(int(v) for v in self.cell_ids[row])

    def cell_ids_array(self) -> np.ndarray:
        """All cell ids as an ``(C, d)`` int64 array (lexicographic)."""
        return self.cell_ids

    # ------------------------------------------------------------------
    # Lookup (identical semantics to FlatCellDictionary)
    # ------------------------------------------------------------------

    def find_rows(self, query_ids: np.ndarray) -> np.ndarray:
        """Vectorized binary search: dense row per query id, ``-1`` when
        the cell is not in the dictionary.  ``query_ids`` is ``(m, d)``."""
        query = np.ascontiguousarray(query_ids, dtype=np.int64)
        if query.ndim != 2:
            raise ValueError("query_ids must be (m, d)")
        if query.shape[0] == 0 or self.num_cells == 0:
            return np.full(query.shape[0], -1, dtype=np.int64)
        pos = np.searchsorted(self._keys, lex_keys(query))
        pos_clipped = np.minimum(pos, self.num_cells - 1)
        hit = np.all(self.cell_ids[pos_clipped] == query, axis=1) & (
            pos < self.num_cells
        )
        return np.where(hit, pos_clipped, -1)

    def row_of(self, cell_id: CellId) -> int:
        """Dense row of ``cell_id``; raises ``KeyError`` when absent."""
        row = int(self.find_rows(np.asarray(cell_id, dtype=np.int64)[None, :])[0])
        if row < 0:
            raise KeyError(cell_id)
        return row

    def materialize_centers(self) -> None:
        """No-op: shard centers are materialized on attach."""

    # ------------------------------------------------------------------
    # Shard residency
    # ------------------------------------------------------------------

    def restrict(self, shard_indices: Iterable[int] | None) -> None:
        """Limit attachable shards to ``shard_indices`` (``None`` lifts).

        The engine sets this per task from the driver's reachability
        hint; an attach outside the set raises ``RuntimeError``.
        """
        self._allowed = (
            None if shard_indices is None else frozenset(int(s) for s in shard_indices)
        )

    def _shard(self, index: int) -> tuple[np.ndarray, np.ndarray]:
        """Resident block of shard ``index``, attaching under the budget."""
        block = self._resident.get(index)
        if block is not None:
            self._resident.move_to_end(index)
            return block
        if self._allowed is not None and index not in self._allowed:
            raise RuntimeError(
                f"shard {index} is outside the task's reachable set — the "
                "driver-side Lemma 5.10 skip test missed a demanded shard"
            )
        nbytes = self.store.nbytes(index)
        if self.budget_bytes is not None:
            while self._resident and self.resident_bytes + nbytes > self.budget_bytes:
                evicted, _ = self._resident.popitem(last=False)
                self.resident_bytes -= self.store.nbytes(evicted)
                self.store.release(evicted)
                self.shard_evictions += 1
            if nbytes > self.budget_bytes:
                raise RuntimeError(
                    f"shard {index} ({nbytes} B) exceeds the broadcast budget "
                    f"({self.budget_bytes} B); lower the defragment capacity"
                )
        block = self.store.load(index)
        self._resident[index] = block
        self.resident_bytes += nbytes
        self.peak_resident_bytes = max(self.peak_resident_bytes, self.resident_bytes)
        self.shard_attaches += 1
        return block

    def close(self) -> None:
        """Release every resident shard (worker epoch teardown)."""
        for index in list(self._resident):
            self.store.release(index)
        self._resident.clear()
        self.resident_bytes = 0

    # ------------------------------------------------------------------
    # Residency oracle
    # ------------------------------------------------------------------

    def record_rows_consulted(self, rows: np.ndarray) -> int:
        """Count the distinct shards a candidate-row set could demand.

        The region-query engine calls this with each batch's candidate
        rows, making it the residency oracle: it reports how many shards
        *would* have to be resident for the worst case of that query,
        mirroring ``FlatDefragmentedDictionary.record_rows_consulted``.
        """
        owners = self.shard_owner[np.asarray(rows, dtype=np.int64)]
        if owners.size == 0:
            touched = 0
        elif (owners == owners[0]).all():
            touched = 1
        else:
            touched = int(np.unique(owners).size)
        self.queries += 1
        self.shards_consulted += touched
        return touched

    def average_consulted(self) -> float:
        """Mean shards consulted per query (1.0 is ideal)."""
        if self.queries == 0:
            return 0.0
        return self.shards_consulted / self.queries

    def residency_stats(self) -> dict[str, int | float]:
        """Snapshot of the shard-cache ledger."""
        return {
            "num_shards": int(self.num_shards),
            "budget_bytes": int(self.budget_bytes) if self.budget_bytes else 0,
            "resident_bytes": int(self.resident_bytes),
            "peak_resident_bytes": int(self.peak_resident_bytes),
            "shard_attaches": int(self.shard_attaches),
            "shard_evictions": int(self.shard_evictions),
            "queries": int(self.queries),
            "shards_consulted": int(self.shards_consulted),
        }

    # ------------------------------------------------------------------
    # Query support (bit-identical to FlatCellDictionary)
    # ------------------------------------------------------------------

    def gather_subcells(
        self, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Concatenated sub-cell blocks of the given dense rows.

        Identical contract (and bit-identical output) to
        :meth:`FlatCellDictionary.gather_subcells`: blocks come back in
        the *requested* row order even when the rows span shards, via
        scatter through per-shard CSR gathers.
        """
        rows = np.asarray(rows, dtype=np.int64)
        sizes = self.offsets[rows + 1] - self.offsets[rows]
        total = int(sizes.sum())
        dim = self.cell_ids.shape[1]
        centers = np.empty((total, dim), dtype=np.float64)
        densities = np.empty(total, dtype=np.float64)
        if total == 0:
            return centers, densities, sizes
        owners = self.shard_owner[rows]
        first = int(owners[0])
        if (owners == first).all():
            # Single-owner fast path (the common case for local queries):
            # one CSR gather straight out of the shard block, no scatter.
            shard_centers, shard_counts = self._shard(first)
            src = csr_gather_indices(self.local_starts[rows], sizes)
            return (
                shard_centers[src],
                shard_counts[src].astype(np.float64),
                sizes,
            )
        out_starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
        for shard in np.unique(owners):
            shard_centers, shard_counts = self._shard(int(shard))
            sel = owners == shard
            src = csr_gather_indices(self.local_starts[rows[sel]], sizes[sel])
            dst = csr_gather_indices(out_starts[sel], sizes[sel])
            centers[dst] = shard_centers[src]
            densities[dst] = shard_counts[src]
        return centers, densities, sizes

    def sub_cell_centers(self, cell_id: CellId) -> np.ndarray:
        """``(k, d)`` sub-cell centers of one cell (attaches its shard)."""
        row = self.row_of(cell_id)
        size = int(self.offsets[row + 1] - self.offsets[row])
        shard_centers, _ = self._shard(int(self.shard_owner[row]))
        start = int(self.local_starts[row])
        return shard_centers[start : start + size]

    def densities(self, cell_id: CellId) -> np.ndarray:
        """Per-sub-cell densities of ``cell_id`` as float64 (for matmul)."""
        row = self.row_of(cell_id)
        size = int(self.offsets[row + 1] - self.offsets[row])
        _, shard_counts = self._shard(int(self.shard_owner[row]))
        start = int(self.local_starts[row])
        return shard_counts[start : start + size].astype(np.float64)

    # ------------------------------------------------------------------
    # Reachability (driver-side Lemma 5.10)
    # ------------------------------------------------------------------

    def reachable_shards(self, cell_rows: np.ndarray) -> np.ndarray:
        """Shards whose cell-box rectangle is within ``eps`` of at least
        one of the given cells' boxes — a superset of every shard any
        region query issued from those cells can gather.

        Uses the same box-distance slack as the candidate-cell finder,
        so the superset holds exactly where candidates do.
        """
        cell_rows = np.asarray(cell_rows, dtype=np.int64)
        if cell_rows.size == 0 or self.num_shards == 0:
            return np.empty(0, dtype=np.int64)
        side = self.geometry.side
        eps = self.geometry.eps
        lo = self.cell_ids[cell_rows].astype(np.float64) * side  # (m, d)
        hi = lo + side
        gap = np.maximum(
            np.maximum(
                self.shard_box_lo[None, :, :] - hi[:, None, :],
                lo[:, None, :] - self.shard_box_hi[None, :, :],
            ),
            0.0,
        )
        dist2 = np.einsum("msd,msd->ms", gap, gap)  # (m, S)
        reach = (dist2 <= (eps * _REACH_SLACK) ** 2).any(axis=0)
        return np.nonzero(reach)[0].astype(np.int64)


class ShardedFlatDictionary(PartialFlatDictionary):
    """Driver-side sharded view of a defragmented flat dictionary.

    Owns the materialized shard blocks (so the serial engine queries it
    directly, with the same budget accounting workers apply) and knows
    how to export them for segment packing
    (:meth:`export_shard_blocks`).
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)

    @classmethod
    def from_defragmented(
        cls,
        defrag: FlatDefragmentedDictionary,
        *,
        budget_bytes: int | None = None,
    ) -> "ShardedFlatDictionary":
        """Shard a defragmented flat dictionary into root + leaf blocks.

        Raises ``ValueError`` when a single shard exceeds the budget —
        the LRU cache can never satisfy such a budget, so it is rejected
        up front with actionable guidance.
        """
        flat = defrag.dictionary
        geometry = flat.geometry
        side = geometry.side
        num_cells = flat.num_cells
        dim = geometry.dim
        owner = np.full(num_cells, -1, dtype=np.int64)
        local_starts = np.zeros(num_cells, dtype=np.int64)
        num_shards = len(defrag.sub_dicts)
        box_lo = np.empty((num_shards, dim), dtype=np.float64)
        box_hi = np.empty((num_shards, dim), dtype=np.float64)
        blocks: list[tuple[np.ndarray, np.ndarray]] = []
        sizes_all = np.diff(flat.offsets)
        for index, sub in enumerate(defrag.sub_dicts):
            rows = sub.rows
            owner[rows] = index
            sizes = sizes_all[rows]
            starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
            local_starts[rows] = starts
            gather = csr_gather_indices(flat.offsets[rows], sizes)
            centers = np.ascontiguousarray(flat.sub_centers[gather])
            counts = np.ascontiguousarray(flat.sub_counts[gather])
            blocks.append((centers, counts))
            ids = flat.cell_ids[rows].astype(np.float64)
            box_lo[index] = ids.min(axis=0) * side
            box_hi[index] = (ids.max(axis=0) + 1.0) * side
            if budget_bytes is not None:
                nbytes = centers.nbytes + counts.nbytes
                if nbytes > budget_bytes:
                    raise ValueError(
                        f"shard {index} needs {nbytes} B but the broadcast "
                        f"budget is {budget_bytes} B; raise --broadcast-budget "
                        "or lower the defragment capacity so shards shrink"
                    )
        return cls(
            geometry,
            flat.cell_ids,
            flat.cell_counts,
            flat.offsets,
            owner,
            local_starts,
            box_lo,
            box_hi,
            InMemoryShardStore(blocks),
            budget_bytes=budget_bytes,
        )

    def export_shard_blocks(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """The materialized ``(centers, counts)`` block of every shard,
        for packing into per-shard shared-memory segments."""
        store = self.store
        if not isinstance(store, InMemoryShardStore):
            raise TypeError("only an in-memory-backed sharded dictionary exports")
        return [store.load(index) for index in range(store.num_shards)]

    def export_root_arrays(self) -> dict[str, np.ndarray]:
        """The always-resident root arrays, for the root segment."""
        return {
            "cell_ids": self.cell_ids,
            "cell_counts": self.cell_counts,
            "offsets": self.offsets,
            "shard_owner": self.shard_owner,
            "local_starts": self.local_starts,
            "shard_box_lo": self.shard_box_lo,
            "shard_box_hi": self.shard_box_hi,
        }


def live_residency_stats() -> dict[str, int | float]:
    """Aggregate residency ledger over this process's live partials.

    Workers report this through the engine's stat collection; counters
    are summed, byte gauges are summed over *live* dictionaries (one per
    broadcast epoch in steady state).
    """
    totals = {
        "num_shards": 0,
        "budget_bytes": 0,
        "resident_bytes": 0,
        "peak_resident_bytes": 0,
        "shard_attaches": 0,
        "shard_evictions": 0,
        "queries": 0,
        "shards_consulted": 0,
    }
    for partial in list(_LIVE):
        stats = partial.residency_stats()
        totals["num_shards"] = max(totals["num_shards"], stats["num_shards"])
        totals["budget_bytes"] = max(totals["budget_bytes"], stats["budget_bytes"])
        totals["resident_bytes"] += stats["resident_bytes"]
        totals["peak_resident_bytes"] = max(
            totals["peak_resident_bytes"], stats["peak_resident_bytes"]
        )
        totals["shard_attaches"] += stats["shard_attaches"]
        totals["shard_evictions"] += stats["shard_evictions"]
        totals["queries"] += stats["queries"]
        totals["shards_consulted"] += stats["shards_consulted"]
    return totals
