"""Bit-packed serialization of the two-level cell dictionary.

Implements the paper's encoding (Lemma 4.3) as actual bytes, not just a
size formula: per cell, the exact position as ``d`` float32 values and
the density as an int32; per sub-cell, the *local* position packed into
``d * (h-1)`` bits (the ordering of the sub-cell inside its cell) and
the density as an int32.  A small fixed header records the geometry so
the stream is self-describing.

This is what a Spark implementation would broadcast; round-tripping it
in tests proves the compact summary really carries everything Phase II
needs, and comparing ``len(bytes)`` against
:class:`~repro.core.dictionary.DictionarySizeModel` validates the
paper's size accounting against reality (the delta is the header plus
byte-alignment padding of the bit-packed positions).
"""

from __future__ import annotations

import io
import pickle
import struct

import numpy as np

from repro.core.cell_graph import CellGraph, FlatCellGraph
from repro.core.cells import CellGeometry, CellId
from repro.core.dictionary import CellDictionary, CellSummary, FlatCellDictionary
from repro.graph.union_find import ArrayUnionFind

__all__ = [
    "serialize_dictionary",
    "deserialize_dictionary",
    "deserialize_flat_dictionary",
    "serialize_cell_graph",
    "deserialize_cell_graph",
    "serialize_cluster_state",
    "deserialize_cluster_state",
    "save_cluster_state",
    "load_cluster_state",
    "HEADER_BYTES",
]

_MAGIC = b"RPD1"
# magic, eps, rho, dim, num_cells
_HEADER = struct.Struct("<4sddii")

#: Size of the fixed stream header in bytes.
HEADER_BYTES = _HEADER.size


def _pack_local_coords(coords: np.ndarray, bits_per_axis: int) -> bytes:
    """Pack ``(k, d)`` local sub-cell coordinates into a byte string,
    ``bits_per_axis`` bits per coordinate, row-major, LSB-first (bit
    position ``p`` lands in byte ``p >> 3``, bit ``p & 7``)."""
    if coords.size == 0:
        return b""
    flat = coords.astype(np.uint16).reshape(-1)
    bits = (flat[:, None] >> np.arange(bits_per_axis, dtype=np.uint16)) & 1
    bits = bits.reshape(-1).astype(np.uint8)
    pad = (-bits.size) % 8
    if pad:
        bits = np.concatenate([bits, np.zeros(pad, dtype=np.uint8)])
    return np.packbits(bits, bitorder="little").tobytes()


def _unpack_local_coords(
    data: bytes, count: int, dim: int, bits_per_axis: int
) -> np.ndarray:
    """Inverse of :func:`_pack_local_coords` for ``count`` sub-cells."""
    if count == 0:
        return np.zeros((0, dim), dtype=np.uint16)
    raw = np.frombuffer(data, dtype=np.uint8)
    total_bits = count * dim * bits_per_axis
    bits = np.unpackbits(raw, bitorder="little", count=total_bits)
    weights = np.int64(1) << np.arange(bits_per_axis, dtype=np.int64)
    values = bits.reshape(-1, bits_per_axis).astype(np.int64) @ weights
    return values.astype(np.uint16).reshape(count, dim)


def serialize_dictionary(
    dictionary: CellDictionary | FlatCellDictionary,
) -> bytes:
    """Encode ``dictionary`` into the paper's compact byte layout.

    Both layouts produce byte-identical streams: cells are written in
    lexicographic order, which is the columnar layout's native row
    order, so the flat encoder just walks CSR slices.
    """
    geometry = dictionary.geometry
    dim = geometry.dim
    bits_per_axis = geometry.h - 1
    parts = [
        _HEADER.pack(_MAGIC, geometry.eps, geometry.rho, dim, dictionary.num_cells)
    ]
    if isinstance(dictionary, FlatCellDictionary):
        origins = (dictionary.cell_ids.astype(np.float64) * geometry.side).astype(
            np.float32
        )
        offsets = dictionary.offsets
        for row in range(dictionary.num_cells):
            start, stop = int(offsets[row]), int(offsets[row + 1])
            parts.append(origins[row].tobytes())
            parts.append(
                struct.pack("<ii", int(dictionary.cell_counts[row]), stop - start)
            )
            parts.append(dictionary.sub_counts[start:stop].astype(np.int32).tobytes())
            if bits_per_axis:
                parts.append(
                    _pack_local_coords(
                        dictionary.sub_coords[start:stop], bits_per_axis
                    )
                )
        return b"".join(parts)
    for cell_id in sorted(dictionary.cells):
        summary = dictionary.cells[cell_id]
        # Root entry: exact cell position (d float32) + density (int32).
        origin = (np.asarray(cell_id, dtype=np.float64) * geometry.side).astype(
            np.float32
        )
        parts.append(origin.tobytes())
        parts.append(struct.pack("<ii", summary.count, summary.num_subcells))
        # Leaf entries: densities (int32 each) + bit-packed positions.
        parts.append(summary.sub_counts.astype(np.int32).tobytes())
        if bits_per_axis:
            parts.append(_pack_local_coords(summary.sub_coords, bits_per_axis))
    return b"".join(parts)


def deserialize_dictionary(data: bytes) -> CellDictionary:
    """Decode a byte stream produced by :func:`serialize_dictionary`."""
    magic, eps, rho, dim, num_cells = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise ValueError("not an RP-DBSCAN dictionary stream")
    geometry = CellGeometry(eps, dim, rho)
    bits_per_axis = geometry.h - 1
    side = geometry.side
    offset = _HEADER.size
    cells: dict[CellId, CellSummary] = {}
    for _ in range(num_cells):
        origin = np.frombuffer(data, dtype=np.float32, count=dim, offset=offset)
        offset += 4 * dim
        count, num_subcells = struct.unpack_from("<ii", data, offset)
        offset += 8
        sub_counts = np.frombuffer(
            data, dtype=np.int32, count=num_subcells, offset=offset
        ).astype(np.int64)
        offset += 4 * num_subcells
        if bits_per_axis:
            packed_bytes = (num_subcells * dim * bits_per_axis + 7) // 8
            sub_coords = _unpack_local_coords(
                data[offset : offset + packed_bytes], num_subcells, dim, bits_per_axis
            )
            offset += packed_bytes
        else:
            sub_coords = np.zeros((num_subcells, dim), dtype=np.uint16)
        # float32 origins carry rounding; snap to the nearest cell index.
        cell_id = tuple(
            int(v) for v in np.rint(origin.astype(np.float64) / side)
        )
        cells[cell_id] = CellSummary(
            count=count, sub_coords=sub_coords, sub_counts=sub_counts
        )
    return CellDictionary(geometry, cells)


def deserialize_flat_dictionary(data: bytes) -> FlatCellDictionary:
    """Decode a dictionary stream directly into the columnar layout.

    The stream stores cells in lexicographic order — exactly the flat
    layout's row order — so decoding is a single forward walk appending
    to the columnar arrays, no dict materialization.
    """
    magic, eps, rho, dim, num_cells = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise ValueError("not an RP-DBSCAN dictionary stream")
    geometry = CellGeometry(eps, dim, rho)
    bits_per_axis = geometry.h - 1
    side = geometry.side
    offset = _HEADER.size
    cell_ids = np.empty((num_cells, dim), dtype=np.int64)
    cell_counts = np.empty(num_cells, dtype=np.int64)
    sizes = np.empty(num_cells, dtype=np.int64)
    coord_blocks: list[np.ndarray] = []
    count_blocks: list[np.ndarray] = []
    for row in range(num_cells):
        origin = np.frombuffer(data, dtype=np.float32, count=dim, offset=offset)
        offset += 4 * dim
        count, num_subcells = struct.unpack_from("<ii", data, offset)
        offset += 8
        count_blocks.append(
            np.frombuffer(
                data, dtype=np.int32, count=num_subcells, offset=offset
            ).astype(np.int64)
        )
        offset += 4 * num_subcells
        if bits_per_axis:
            packed_bytes = (num_subcells * dim * bits_per_axis + 7) // 8
            coord_blocks.append(
                _unpack_local_coords(
                    data[offset : offset + packed_bytes],
                    num_subcells,
                    dim,
                    bits_per_axis,
                )
            )
            offset += packed_bytes
        else:
            coord_blocks.append(np.zeros((num_subcells, dim), dtype=np.uint16))
        # float32 origins carry rounding; snap to the nearest cell index.
        cell_ids[row] = np.rint(origin.astype(np.float64) / side).astype(np.int64)
        cell_counts[row] = count
        sizes[row] = num_subcells
    offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
    if num_cells:
        sub_coords = np.concatenate(coord_blocks)
        sub_counts = np.concatenate(count_blocks)
    else:
        sub_coords = np.empty((0, dim), dtype=np.uint16)
        sub_counts = np.empty(0, dtype=np.int64)
    return FlatCellDictionary(
        geometry,
        cell_ids,
        cell_counts,
        offsets,
        sub_coords,
        sub_counts,
        validate=False,
    )


# ----------------------------------------------------------------------
# Cell-graph payloads (Phase III-1 engine tournament)
# ----------------------------------------------------------------------

_GRAPH_MAGIC_FLAT = b"RPGF"
_GRAPH_MAGIC_DICT = b"RPGD"


def serialize_cell_graph(graph: CellGraph | FlatCellGraph) -> bytes:
    """Encode a cell (sub)graph for an engine merge-task payload.

    Flat graphs become a 4-byte magic plus an npz archive of their
    columns (status, edge list, pending indices, union-find parents) —
    compact, pickle-free, and exactly round-trippable.  Dict graphs fall
    back to a magic-prefixed pickle so both layouts flow through the
    same tournament plumbing.
    """
    if isinstance(graph, FlatCellGraph):
        buffer = io.BytesIO()
        np.savez(
            buffer,
            status=graph.status,
            src=graph.src,
            dst=graph.dst,
            etype=graph.etype,
            pending=np.asarray(graph._pending, dtype=np.int64),
            parent=graph._forest.to_array(),
        )
        return _GRAPH_MAGIC_FLAT + buffer.getvalue()
    return _GRAPH_MAGIC_DICT + pickle.dumps(
        graph, protocol=pickle.HIGHEST_PROTOCOL
    )


def deserialize_cell_graph(data: bytes) -> CellGraph | FlatCellGraph:
    """Inverse of :func:`serialize_cell_graph` (dispatches on magic)."""
    magic = data[:4]
    if magic == _GRAPH_MAGIC_FLAT:
        with np.load(io.BytesIO(data[4:]), allow_pickle=False) as archive:
            return FlatCellGraph.from_arrays(
                archive["status"],
                archive["src"],
                archive["dst"],
                archive["etype"],
                pending=archive["pending"].tolist(),
                forest=ArrayUnionFind.from_array(archive["parent"]),
            )
    if magic == _GRAPH_MAGIC_DICT:
        return pickle.loads(data[4:])
    raise ValueError(f"unknown cell-graph stream magic {magic!r}")


# ----------------------------------------------------------------------
# Model-plane state (`RPST`): the persistent ClusterState
# ----------------------------------------------------------------------

_STATE_MAGIC = b"RPST"
_STATE_VERSION = 1
# magic, version, eps, rho, dim, min_pts, num_tasks
_STATE_HEADER = struct.Struct("<4sHddiii")


def _write_str(out: io.BytesIO, text: str) -> None:
    raw = text.encode("utf-8")
    out.write(struct.pack("<H", len(raw)))
    out.write(raw)


def _read_str(data: bytes, offset: int) -> tuple[str, int]:
    (length,) = struct.unpack_from("<H", data, offset)
    offset += 2
    return data[offset : offset + length].decode("utf-8"), offset + length


def _write_array(out: io.BytesIO, array: np.ndarray) -> None:
    """Deterministic raw-array framing: dtype string, shape, C-order
    little-endian bytes.  No pickle, no archive container, no
    timestamps — identical arrays always produce identical bytes, which
    is what makes a saved state byte-stable across processes."""
    contiguous = np.ascontiguousarray(array)
    dtype = contiguous.dtype.newbyteorder("<")
    _write_str(out, dtype.str)
    out.write(struct.pack("<B", contiguous.ndim))
    for extent in contiguous.shape:
        out.write(struct.pack("<q", extent))
    out.write(contiguous.astype(dtype, copy=False).tobytes())


def _read_array(data: bytes, offset: int) -> tuple[np.ndarray, int]:
    dtype_str, offset = _read_str(data, offset)
    dtype = np.dtype(dtype_str)
    (ndim,) = struct.unpack_from("<B", data, offset)
    offset += 1
    shape = []
    for _ in range(ndim):
        (extent,) = struct.unpack_from("<q", data, offset)
        shape.append(extent)
        offset += 8
    count = int(np.prod(shape, dtype=np.int64)) if shape else 1
    nbytes = count * dtype.itemsize
    array = (
        np.frombuffer(data, dtype=dtype, count=count, offset=offset)
        .reshape(shape)
        .copy()
    )
    return array, offset + nbytes


def serialize_cluster_state(state) -> bytes:
    """Encode a :class:`~repro.core.cluster_state.ClusterState` as the
    magic-dispatched ``RPST`` stream.

    The stream is **byte-stable**: serializing the same state twice (or
    a loaded copy of it) yields identical bytes, so model artifacts can
    be content-addressed and diffed.  Layout: fixed header (geometry +
    fit parameters), three length-prefixed config strings, then every
    state array in a fixed order through the raw deterministic framing
    of :func:`_write_array` — dictionary columns, graph columns
    (including the union-find forest and pending-edge worklist, so a
    loaded state resumes ingest exactly where the saved one would),
    cell labels, and the per-point arrays.
    """
    geometry = state.geometry
    out = io.BytesIO()
    out.write(
        _STATE_HEADER.pack(
            _STATE_MAGIC,
            _STATE_VERSION,
            geometry.eps,
            geometry.rho,
            geometry.dim,
            state.min_pts,
            state.num_tasks,
        )
    )
    _write_str(out, state.kernel)
    _write_str(out, state.candidate_strategy)
    _write_str(out, state.merge_mode)
    dictionary = state.dictionary
    graph = state.graph
    for array in (
        dictionary.cell_ids,
        dictionary.cell_counts,
        dictionary.offsets,
        dictionary.sub_coords,
        dictionary.sub_counts,
        graph.status,
        graph.src,
        graph.dst,
        graph.etype,
        np.asarray(graph._pending, dtype=np.int64),
        graph._forest.to_array(),
        state.cell_labels,
        state.points,
        state.point_cell_rows,
        state.labels,
        state.core_mask,
    ):
        _write_array(out, array)
    return out.getvalue()


def deserialize_cluster_state(data: bytes):
    """Inverse of :func:`serialize_cluster_state` (validates on load)."""
    from repro.core.cluster_state import ClusterState

    magic, version, eps, rho, dim, min_pts, num_tasks = (
        _STATE_HEADER.unpack_from(data, 0)
    )
    if magic != _STATE_MAGIC:
        raise ValueError("not an RP-DBSCAN model-state stream")
    if version != _STATE_VERSION:
        raise ValueError(f"unsupported RPST version {version}")
    offset = _STATE_HEADER.size
    kernel, offset = _read_str(data, offset)
    candidate_strategy, offset = _read_str(data, offset)
    merge_mode, offset = _read_str(data, offset)
    arrays = []
    for _ in range(16):
        array, offset = _read_array(data, offset)
        arrays.append(array)
    (
        cell_ids, cell_counts, offsets, sub_coords, sub_counts,
        status, src, dst, etype, pending, parent,
        cell_labels, points, point_cell_rows, labels, core_mask,
    ) = arrays
    geometry = CellGeometry(eps, dim, rho)
    dictionary = FlatCellDictionary(
        geometry, cell_ids, cell_counts, offsets, sub_coords, sub_counts,
        validate=False,
    )
    graph = FlatCellGraph.from_arrays(
        status, src, dst, etype,
        pending=pending.tolist(),
        forest=ArrayUnionFind.from_array(parent),
    )
    state = ClusterState(
        geometry=geometry,
        min_pts=min_pts,
        dictionary=dictionary,
        graph=graph,
        cell_labels=cell_labels,
        points=points,
        point_cell_rows=point_cell_rows,
        labels=labels,
        core_mask=core_mask,
        kernel=kernel,
        candidate_strategy=candidate_strategy,
        merge_mode=merge_mode,
        num_tasks=num_tasks,
    )
    state.validate()
    return state


def save_cluster_state(state, path) -> None:
    """Write ``state`` to ``path`` as an ``RPST`` stream."""
    with open(path, "wb") as handle:
        handle.write(serialize_cluster_state(state))


def load_cluster_state(path):
    """Load a :class:`~repro.core.cluster_state.ClusterState` from an
    ``RPST`` file written by :func:`save_cluster_state`."""
    with open(path, "rb") as handle:
        return deserialize_cluster_state(handle.read())
