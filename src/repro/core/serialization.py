"""Bit-packed serialization of the two-level cell dictionary.

Implements the paper's encoding (Lemma 4.3) as actual bytes, not just a
size formula: per cell, the exact position as ``d`` float32 values and
the density as an int32; per sub-cell, the *local* position packed into
``d * (h-1)`` bits (the ordering of the sub-cell inside its cell) and
the density as an int32.  A small fixed header records the geometry so
the stream is self-describing.

This is what a Spark implementation would broadcast; round-tripping it
in tests proves the compact summary really carries everything Phase II
needs, and comparing ``len(bytes)`` against
:class:`~repro.core.dictionary.DictionarySizeModel` validates the
paper's size accounting against reality (the delta is the header plus
byte-alignment padding of the bit-packed positions).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.cells import CellGeometry, CellId
from repro.core.dictionary import CellDictionary, CellSummary

__all__ = ["serialize_dictionary", "deserialize_dictionary", "HEADER_BYTES"]

_MAGIC = b"RPD1"
# magic, eps, rho, dim, num_cells
_HEADER = struct.Struct("<4sddii")

#: Size of the fixed stream header in bytes.
HEADER_BYTES = _HEADER.size


def _pack_local_coords(coords: np.ndarray, bits_per_axis: int) -> bytes:
    """Pack ``(k, d)`` local sub-cell coordinates into a byte string,
    ``bits_per_axis`` bits per coordinate, row-major."""
    if coords.size == 0:
        return b""
    flat = coords.astype(np.uint64).reshape(-1)
    total_bits = flat.size * bits_per_axis
    out = np.zeros((total_bits + 7) // 8, dtype=np.uint8)
    bit = 0
    for value in flat:
        value = int(value)
        for offset in range(bits_per_axis):
            if value >> offset & 1:
                position = bit + offset
                out[position >> 3] |= 1 << (position & 7)
        bit += bits_per_axis
    return out.tobytes()


def _unpack_local_coords(
    data: bytes, count: int, dim: int, bits_per_axis: int
) -> np.ndarray:
    """Inverse of :func:`_pack_local_coords` for ``count`` sub-cells."""
    coords = np.zeros(count * dim, dtype=np.uint16)
    if count == 0:
        return coords.reshape(0, dim)
    raw = np.frombuffer(data, dtype=np.uint8)
    bit = 0
    for i in range(coords.size):
        value = 0
        for offset in range(bits_per_axis):
            position = bit + offset
            if raw[position >> 3] >> (position & 7) & 1:
                value |= 1 << offset
        coords[i] = value
        bit += bits_per_axis
    return coords.reshape(count, dim)


def serialize_dictionary(dictionary: CellDictionary) -> bytes:
    """Encode ``dictionary`` into the paper's compact byte layout."""
    geometry = dictionary.geometry
    dim = geometry.dim
    bits_per_axis = geometry.h - 1
    parts = [
        _HEADER.pack(_MAGIC, geometry.eps, geometry.rho, dim, dictionary.num_cells)
    ]
    for cell_id in sorted(dictionary.cells):
        summary = dictionary.cells[cell_id]
        # Root entry: exact cell position (d float32) + density (int32).
        origin = (np.asarray(cell_id, dtype=np.float64) * geometry.side).astype(
            np.float32
        )
        parts.append(origin.tobytes())
        parts.append(struct.pack("<ii", summary.count, summary.num_subcells))
        # Leaf entries: densities (int32 each) + bit-packed positions.
        parts.append(summary.sub_counts.astype(np.int32).tobytes())
        if bits_per_axis:
            parts.append(_pack_local_coords(summary.sub_coords, bits_per_axis))
    return b"".join(parts)


def deserialize_dictionary(data: bytes) -> CellDictionary:
    """Decode a byte stream produced by :func:`serialize_dictionary`."""
    magic, eps, rho, dim, num_cells = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise ValueError("not an RP-DBSCAN dictionary stream")
    geometry = CellGeometry(eps, dim, rho)
    bits_per_axis = geometry.h - 1
    side = geometry.side
    offset = _HEADER.size
    cells: dict[CellId, CellSummary] = {}
    for _ in range(num_cells):
        origin = np.frombuffer(data, dtype=np.float32, count=dim, offset=offset)
        offset += 4 * dim
        count, num_subcells = struct.unpack_from("<ii", data, offset)
        offset += 8
        sub_counts = np.frombuffer(
            data, dtype=np.int32, count=num_subcells, offset=offset
        ).astype(np.int64)
        offset += 4 * num_subcells
        if bits_per_axis:
            packed_bytes = (num_subcells * dim * bits_per_axis + 7) // 8
            sub_coords = _unpack_local_coords(
                data[offset : offset + packed_bytes], num_subcells, dim, bits_per_axis
            )
            offset += packed_bytes
        else:
            sub_coords = np.zeros((num_subcells, dim), dtype=np.uint16)
        # float32 origins carry rounding; snap to the nearest cell index.
        cell_id = tuple(
            int(v) for v in np.rint(origin.astype(np.float64) / side)
        )
        cells[cell_id] = CellSummary(
            count=count, sub_coords=sub_coords, sub_counts=sub_counts
        )
    return CellDictionary(geometry, cells)
