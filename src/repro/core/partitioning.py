"""Pseudo random partitioning (paper Section 4.1, Algorithm 2 part 1).

Points are first bucketed into cells; then whole *cells* are randomly
distributed to ``k`` partitions.  Because the cell is tiny relative to
the data space, this behaves like true random partitioning for load
balance while keeping each cell's points together — the property that
makes cell-level merging possible.

Two assignment methods are provided:

* ``"random_key"`` — each cell independently draws a uniform partition
  key, exactly as Algorithm 2 line 7 ("Pick a random key from 1..k").
* ``"shuffle"`` — cells are randomly shuffled and dealt round-robin,
  which equalizes cell counts exactly; useful as an ablation.

For the naive-random-split baselines (Sec 2.2.1) and ablations,
:func:`true_random_partition` splits the *points* instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cells import CellGeometry, CellId
from repro.spatial.grid import group_points_by_cell

__all__ = ["Partition", "pseudo_random_partition", "true_random_partition"]


@dataclass
class Partition:
    """One pseudo random partition: a bag of whole cells and their points.

    Attributes
    ----------
    pid:
        Partition index in ``[0, k)``.
    points:
        ``(m, d)`` float64 array of the partition's points, stored
        contiguously grouped by cell.
    global_indices:
        ``(m,)`` int64 row indices of ``points`` in the original data
        set, used to write labels back in Phase III-2.
    cell_slices:
        Mapping from cell id to the ``(start, stop)`` row range of that
        cell's points within ``points``.
    """

    pid: int
    points: np.ndarray
    global_indices: np.ndarray
    cell_slices: dict[CellId, tuple[int, int]]

    @property
    def num_points(self) -> int:
        """Number of points in this partition."""
        return self.points.shape[0]

    @property
    def num_cells(self) -> int:
        """Number of cells in this partition."""
        return len(self.cell_slices)

    def cell_points(self, cell_id: CellId) -> np.ndarray:
        """The ``(n_c, d)`` points of one cell."""
        start, stop = self.cell_slices[cell_id]
        return self.points[start:stop]

    def cell_global_indices(self, cell_id: CellId) -> np.ndarray:
        """Global data-set indices of one cell's points."""
        start, stop = self.cell_slices[cell_id]
        return self.global_indices[start:stop]


def pseudo_random_partition(
    points: np.ndarray,
    geometry: CellGeometry,
    num_partitions: int,
    *,
    seed: int | None = 0,
    method: str = "random_key",
) -> list[Partition]:
    """Split ``points`` into ``num_partitions`` cell-level random splits.

    Parameters
    ----------
    points:
        ``(n, d)`` data set.
    geometry:
        Cell geometry fixing the grid.
    num_partitions:
        Number of splits ``k``; partitions may be empty when there are
        fewer non-empty cells than ``k`` (only possible on tiny inputs).
    seed:
        Seed for the partition-key RNG (``None`` for nondeterministic).
    method:
        ``"random_key"`` (paper's Algorithm 2) or ``"shuffle"``.

    Returns
    -------
    list[Partition]
        Exactly ``num_partitions`` partitions whose points are pairwise
        disjoint and jointly cover the input.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError("points must be (n, d)")
    if pts.shape[1] != geometry.dim:
        raise ValueError(
            f"points have dim {pts.shape[1]} but geometry has dim {geometry.dim}"
        )
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    groups = group_points_by_cell(pts, geometry.side)
    cell_ids = list(groups.keys())
    rng = np.random.default_rng(seed)
    if method == "random_key":
        keys = rng.integers(0, num_partitions, size=len(cell_ids))
    elif method == "shuffle":
        order = rng.permutation(len(cell_ids))
        keys = np.empty(len(cell_ids), dtype=np.int64)
        keys[order] = np.arange(len(cell_ids)) % num_partitions
    else:
        raise ValueError(f"unknown partitioning method {method!r}")

    per_partition_cells: list[list[CellId]] = [[] for _ in range(num_partitions)]
    for cell_id, key in zip(cell_ids, keys):
        per_partition_cells[int(key)].append(cell_id)

    partitions: list[Partition] = []
    for pid, cells in enumerate(per_partition_cells):
        index_chunks = [groups[cell_id] for cell_id in cells]
        if index_chunks:
            indices = np.concatenate(index_chunks)
        else:
            indices = np.empty(0, dtype=np.int64)
        slices: dict[CellId, tuple[int, int]] = {}
        cursor = 0
        for cell_id, chunk in zip(cells, index_chunks):
            slices[cell_id] = (cursor, cursor + chunk.shape[0])
            cursor += chunk.shape[0]
        partitions.append(
            Partition(
                pid=pid,
                points=pts[indices],
                global_indices=indices,
                cell_slices=slices,
            )
        )
    return partitions


def true_random_partition(
    points: np.ndarray,
    geometry: CellGeometry,
    num_partitions: int,
    *,
    seed: int | None = 0,
) -> list[Partition]:
    """Point-level random split (the naive strategy of Sec 2.2.1).

    Points are shuffled and dealt round-robin, so a cell's points can be
    scattered over many partitions.  Partitions are still organized by
    cell internally so the same Phase II code can run on them — which is
    exactly how the ablation quantifies the accuracy loss of naive
    random split without a global dictionary.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError("points must be (n, d)")
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    rng = np.random.default_rng(seed)
    order = rng.permutation(pts.shape[0])
    partitions: list[Partition] = []
    for pid in range(num_partitions):
        indices = order[pid::num_partitions]
        sub = pts[indices]
        groups = group_points_by_cell(sub, geometry.side)
        local_order_chunks = list(groups.values())
        if local_order_chunks:
            local_order = np.concatenate(local_order_chunks)
        else:
            local_order = np.empty(0, dtype=np.int64)
        slices: dict[CellId, tuple[int, int]] = {}
        cursor = 0
        for cell_id, chunk in groups.items():
            slices[cell_id] = (cursor, cursor + chunk.shape[0])
            cursor += chunk.shape[0]
        partitions.append(
            Partition(
                pid=pid,
                points=sub[local_order],
                global_indices=indices[local_order],
                cell_slices=slices,
            )
        )
    return partitions
