"""Pseudo random partitioning (paper Section 4.1, Algorithm 2 part 1).

Points are first bucketed into cells; then whole *cells* are randomly
distributed to ``k`` partitions.  Because the cell is tiny relative to
the data space, this behaves like true random partitioning for load
balance while keeping each cell's points together — the property that
makes cell-level merging possible.

Two assignment methods are provided:

* ``"random_key"`` — each cell independently draws a uniform partition
  key, exactly as Algorithm 2 line 7 ("Pick a random key from 1..k").
* ``"shuffle"`` — cells are randomly shuffled and dealt round-robin,
  which equalizes cell counts exactly; useful as an ablation.

For the naive-random-split baselines (Sec 2.2.1) and ablations,
:func:`true_random_partition` splits the *points* instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cells import CellGeometry, CellId
from repro.data.streaming import PointSource
from repro.spatial.grid import cell_ids_for_points, group_points_by_cell

__all__ = [
    "Partition",
    "LazyPartition",
    "pseudo_random_partition",
    "true_random_partition",
]


@dataclass
class Partition:
    """One pseudo random partition: a bag of whole cells and their points.

    Attributes
    ----------
    pid:
        Partition index in ``[0, k)``.
    points:
        ``(m, d)`` float64 array of the partition's points, stored
        contiguously grouped by cell.
    global_indices:
        ``(m,)`` int64 row indices of ``points`` in the original data
        set, used to write labels back in Phase III-2.
    cell_slices:
        Mapping from cell id to the ``(start, stop)`` row range of that
        cell's points within ``points``.
    """

    pid: int
    points: np.ndarray
    global_indices: np.ndarray
    cell_slices: dict[CellId, tuple[int, int]]

    @property
    def num_points(self) -> int:
        """Number of points in this partition."""
        return self.points.shape[0]

    @property
    def num_cells(self) -> int:
        """Number of cells in this partition."""
        return len(self.cell_slices)

    def cell_points(self, cell_id: CellId) -> np.ndarray:
        """The ``(n_c, d)`` points of one cell."""
        start, stop = self.cell_slices[cell_id]
        return self.points[start:stop]

    def cell_global_indices(self, cell_id: CellId) -> np.ndarray:
        """Global data-set indices of one cell's points."""
        start, stop = self.cell_slices[cell_id]
        return self.global_indices[start:stop]

    def gather_rows(self, start: int, stop: int, mask: np.ndarray | None = None) -> np.ndarray:
        """The points of local rows ``start:stop`` (optionally masked).

        On a :class:`LazyPartition` this reads just those rows from the
        backing source instead of materializing the whole partition —
        the driver-side access path of Phase III-2.
        """
        block = self.points[start:stop]
        return block if mask is None else block[mask]

    def release(self) -> None:
        """Drop any materialized point block (no-op for eager layouts)."""


class LazyPartition(Partition):
    """A partition whose point block materializes on demand.

    Pickling ships only the partition's *indices* plus the source
    descriptor, so a worker task pays for exactly its own rows —
    the out-of-core half of ROADMAP item 1.  The block is cached after
    first access (a Phase II task touches every cell of its partition);
    :meth:`release` drops the cache between phases.
    """

    def __init__(
        self,
        pid: int,
        global_indices: np.ndarray,
        cell_slices: dict[CellId, tuple[int, int]],
        source: PointSource,
    ) -> None:
        self.pid = pid
        self.global_indices = global_indices
        self.cell_slices = cell_slices
        self.source = source
        self._points: np.ndarray | None = None

    @property
    def points(self) -> np.ndarray:  # type: ignore[override]
        """The ``(m, d)`` point block, materialized from the source."""
        if self._points is None:
            self._points = self.source.take(self.global_indices)
        return self._points

    @property
    def num_points(self) -> int:
        """Number of points (known without materializing)."""
        return int(self.global_indices.shape[0])

    def gather_rows(self, start: int, stop: int, mask: np.ndarray | None = None) -> np.ndarray:
        if self._points is not None:
            block = self._points[start:stop]
            return block if mask is None else block[mask]
        indices = self.global_indices[start:stop]
        if mask is not None:
            indices = indices[mask]
        return self.source.take(indices)

    def release(self) -> None:
        self._points = None

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_points"] = None  # never ship a materialized block
        return state


def _group_source_by_cell(
    source: PointSource, side: float
) -> dict[CellId, np.ndarray]:
    """Streaming twin of :func:`group_points_by_cell`.

    Buckets a :class:`PointSource` chunk by chunk while reproducing the
    eager grouping *exactly*: cells come out in lexicographic id order
    (chunk groups are merged through a final key sort) and each cell's
    indices ascend (chunks arrive in order; within a chunk the stable
    lexsort keeps equal keys in row order).  Both properties feed the
    partition-key RNG, so eager and streamed runs draw identical keys.
    """
    buckets: dict[CellId, list[np.ndarray]] = {}
    for chunk_start, chunk in source.iter_chunks():
        ids = cell_ids_for_points(chunk, side)
        order = np.lexsort(ids.T[::-1])
        sorted_ids = ids[order]
        change = np.any(sorted_ids[1:] != sorted_ids[:-1], axis=1)
        boundaries = np.concatenate(
            ([0], np.nonzero(change)[0] + 1, [ids.shape[0]])
        )
        for start, stop in zip(boundaries[:-1], boundaries[1:]):
            key = tuple(int(v) for v in sorted_ids[start])
            buckets.setdefault(key, []).append(order[start:stop] + chunk_start)
    return {
        key: (
            np.concatenate(buckets[key])
            if len(buckets[key]) > 1
            else buckets[key][0]
        )
        for key in sorted(buckets)
    }


def pseudo_random_partition(
    points: np.ndarray | PointSource,
    geometry: CellGeometry,
    num_partitions: int,
    *,
    seed: int | None = 0,
    method: str = "random_key",
) -> list[Partition]:
    """Split ``points`` into ``num_partitions`` cell-level random splits.

    Parameters
    ----------
    points:
        ``(n, d)`` data set.
    geometry:
        Cell geometry fixing the grid.
    num_partitions:
        Number of splits ``k``; partitions may be empty when there are
        fewer non-empty cells than ``k`` (only possible on tiny inputs).
    seed:
        Seed for the partition-key RNG (``None`` for nondeterministic).
    method:
        ``"random_key"`` (paper's Algorithm 2) or ``"shuffle"``.

    Returns
    -------
    list[Partition]
        Exactly ``num_partitions`` partitions whose points are pairwise
        disjoint and jointly cover the input.
    """
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    source: PointSource | None = None
    if isinstance(points, PointSource):
        source = points
        if source.dim != geometry.dim:
            raise ValueError(
                f"points have dim {source.dim} but geometry has dim {geometry.dim}"
            )
        pts = None
        groups = _group_source_by_cell(source, geometry.side)
    else:
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError("points must be (n, d)")
        if pts.shape[1] != geometry.dim:
            raise ValueError(
                f"points have dim {pts.shape[1]} but geometry has dim {geometry.dim}"
            )
        groups = group_points_by_cell(pts, geometry.side)
    cell_ids = list(groups.keys())
    rng = np.random.default_rng(seed)
    if method == "random_key":
        keys = rng.integers(0, num_partitions, size=len(cell_ids))
    elif method == "shuffle":
        order = rng.permutation(len(cell_ids))
        keys = np.empty(len(cell_ids), dtype=np.int64)
        keys[order] = np.arange(len(cell_ids)) % num_partitions
    else:
        raise ValueError(f"unknown partitioning method {method!r}")

    per_partition_cells: list[list[CellId]] = [[] for _ in range(num_partitions)]
    for cell_id, key in zip(cell_ids, keys):
        per_partition_cells[int(key)].append(cell_id)

    partitions: list[Partition] = []
    for pid, cells in enumerate(per_partition_cells):
        index_chunks = [groups[cell_id] for cell_id in cells]
        if index_chunks:
            indices = np.concatenate(index_chunks)
        else:
            indices = np.empty(0, dtype=np.int64)
        slices: dict[CellId, tuple[int, int]] = {}
        cursor = 0
        for cell_id, chunk in zip(cells, index_chunks):
            slices[cell_id] = (cursor, cursor + chunk.shape[0])
            cursor += chunk.shape[0]
        if source is not None:
            partitions.append(
                LazyPartition(
                    pid=pid,
                    global_indices=indices,
                    cell_slices=slices,
                    source=source,
                )
            )
        else:
            partitions.append(
                Partition(
                    pid=pid,
                    points=pts[indices],
                    global_indices=indices,
                    cell_slices=slices,
                )
            )
    return partitions


def true_random_partition(
    points: np.ndarray,
    geometry: CellGeometry,
    num_partitions: int,
    *,
    seed: int | None = 0,
) -> list[Partition]:
    """Point-level random split (the naive strategy of Sec 2.2.1).

    Points are shuffled and dealt round-robin, so a cell's points can be
    scattered over many partitions.  Partitions are still organized by
    cell internally so the same Phase II code can run on them — which is
    exactly how the ablation quantifies the accuracy loss of naive
    random split without a global dictionary.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError("points must be (n, d)")
    if num_partitions < 1:
        raise ValueError("num_partitions must be >= 1")
    rng = np.random.default_rng(seed)
    order = rng.permutation(pts.shape[0])
    partitions: list[Partition] = []
    for pid in range(num_partitions):
        indices = order[pid::num_partitions]
        sub = pts[indices]
        groups = group_points_by_cell(sub, geometry.side)
        local_order_chunks = list(groups.values())
        if local_order_chunks:
            local_order = np.concatenate(local_order_chunks)
        else:
            local_order = np.empty(0, dtype=np.int64)
        slices: dict[CellId, tuple[int, int]] = {}
        cursor = 0
        for cell_id, chunk in groups.items():
            slices[cell_id] = (cursor, cursor + chunk.shape[0])
            cursor += chunk.shape[0]
        partitions.append(
            Partition(
                pid=pid,
                points=sub[local_order],
                global_indices=indices[local_order],
                cell_slices=slices,
            )
        )
    return partitions
