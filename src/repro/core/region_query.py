"""(eps, rho)-region queries against the two-level cell dictionary.

Definition 5.1: a sub-cell is an *(eps, rho)-neighbor* of a point ``p``
when the sub-cell's center is within ``eps`` of ``p``.  The query runs
entirely against the broadcast dictionary, so a worker can measure the
density around any of its points without talking to other workers.

Processing follows Example 5.5: candidate cells near the query are found
first (offset enumeration in low dimensions, kd-tree over non-empty cell
centers in high dimensions — Lemma 5.6); a candidate *fully contained*
in the query ball contributes all of its sub-cells at once, a *partially
contained* candidate contributes the sub-cells whose centers pass the
distance test, and candidates outside the ball are dropped.

Queries are batched per cell: every point of a cell shares the same
candidate-cell set, so one ``(n_points x n_centers)`` distance matrix
answers all of a cell's queries — this is the Phase II hot path.

The batch is answered by one of two interchangeable backends behind the
``kernel`` switch: the vectorized ``numpy`` path below, or the compiled
:mod:`repro.kernels` loop (``numba``; ``python`` runs the same loop
uncompiled).  Candidate search and candidate-box classification are
shared by every backend — the kernel seam starts *after* the candidate
set is fixed, which is what keeps it strategy-agnostic (a sampled or
kNN-graph region-query strategy plugs in above the seam, the kernels
below it).  All backends are bit-identical; see
:mod:`repro.kernels.phase2` for the floating-point contract.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cells import CellGeometry, CellId
from repro.core.defragmentation import (
    DefragmentedDictionary,
    FlatDefragmentedDictionary,
)
from repro.core.dictionary import CellDictionary, FlatCellDictionary
from repro.core.sharding import PartialFlatDictionary
from repro.kernels import get_impls, resolve_kernel
from repro.kernels import warmup as warmup_kernels
from repro.spatial.cell_index import NeighborCellFinder
from repro.spatial.distance import seq_squared_distances

__all__ = ["CellBatchQueryResult", "RegionQueryEngine"]


@dataclass
class CellBatchQueryResult:
    """Answers for all points of one cell.

    Attributes
    ----------
    candidate_ids:
        The non-empty cells that could hold (eps, rho)-neighbors, in
        lexicographic order.
    counts:
        ``(n,)`` float64: for each query point, the sum of densities of
        its (eps, rho)-neighbor sub-cells — the approximate
        ``|N_eps(p)|`` used for core marking (Algorithm 3 line 8).
    touch:
        ``(n, len(candidate_ids))`` bool: ``touch[i, j]`` is ``True``
        when point ``i`` has at least one neighbor sub-cell inside
        candidate cell ``j`` — the reachability used for edge building
        (Algorithm 3 line 13).
    candidate_rows:
        ``(len(candidate_ids),)`` int64: the candidates' dense rows in
        the dictionary's sorted cell order — directly usable as cell
        graph vertex ids, no per-tuple ``index_map`` lookups.
    """

    candidate_ids: list[CellId]
    counts: np.ndarray
    touch: np.ndarray
    candidate_rows: np.ndarray | None = None


class RegionQueryEngine:
    """Executes (eps, rho)-region queries over a cell dictionary.

    Parameters
    ----------
    dictionary:
        A :class:`CellDictionary` or :class:`FlatCellDictionary`, their
        defragmented wrappers (enables sub-dictionary-skipping
        accounting), or a :class:`PartialFlatDictionary` (budgeted shard
        residency); results are identical in every case.
    strategy:
        Candidate-cell search: ``"enumerate"`` (integer offsets),
        ``"kdtree"`` (tree over non-empty cell centers), or ``"auto"``
        (enumerate while the offset table stays small).
    kernel:
        Batch-query backend: ``"numpy"`` (vectorized reference,
        default), ``"numba"`` (compiled :mod:`repro.kernels` loops;
        raises :class:`~repro.kernels.KernelUnavailableError` when numba
        is absent), ``"python"`` (the kernel source uncompiled — the
        conformance suite's reference), or ``"auto"`` (numba when
        importable, else numpy).  Results are bit-identical across
        backends.
    """

    def __init__(
        self,
        dictionary: (
            CellDictionary
            | FlatCellDictionary
            | DefragmentedDictionary
            | FlatDefragmentedDictionary
            | PartialFlatDictionary
        ),
        *,
        strategy: str = "auto",
        kernel: str = "numpy",
    ) -> None:
        if isinstance(dictionary, (DefragmentedDictionary, FlatDefragmentedDictionary)):
            self._defrag = dictionary
            inner = dictionary.dictionary
        else:
            self._defrag = None
            inner = dictionary
        # A partial dictionary exposes the flat columnar query surface
        # (cell_counts + gather_subcells) over its bounded shard cache,
        # so it rides the flat hot path unchanged; its per-batch
        # record_rows_consulted doubles as the residency oracle.
        self._flat = (
            inner
            if isinstance(inner, (FlatCellDictionary, PartialFlatDictionary))
            else None
        )
        self._partial = inner if isinstance(inner, PartialFlatDictionary) else None
        # Monolithic CSR arrays (flat layout, incl. its defragmented
        # wrapper) admit the fused kernel; the partial (sharded) and
        # dict layouts go through the gathered kernel instead.
        self._csr = inner if isinstance(inner, FlatCellDictionary) else None
        self._dict = inner
        self.kernel = resolve_kernel(kernel)
        self._impls = get_impls(self.kernel) if self.kernel != "numpy" else None
        self.geometry: CellGeometry = inner.geometry
        # The finder consumes the lexicographically sorted id array, so
        # its rows are the dictionary's dense indices and every candidate
        # list comes back in a deterministic (lexicographic) order.
        ids = inner.cell_ids if self._flat is not None else inner.cell_ids_array()
        self._finder = NeighborCellFinder(
            ids,
            self.geometry.side,
            self.geometry.eps,
            strategy=strategy,
        )
        self.strategy = self._finder.strategy

    # ------------------------------------------------------------------
    # Candidate cells
    # ------------------------------------------------------------------

    def candidate_cells(self, cell_id: CellId) -> list[CellId]:
        """Non-empty cells whose box lies within ``eps`` of ``cell_id``'s
        box — a superset of every point-level candidate set for points in
        that cell.  Lexicographically ordered."""
        return self._finder.candidates(cell_id)

    # ------------------------------------------------------------------
    # Kernel warm-up
    # ------------------------------------------------------------------

    def warmup_kernel(self) -> float:
        """Compile the numba kernels for this engine's dimensionality.

        Invoked from the Phase II warm-up hook during broadcast
        installation, so JIT compilation is charged to the
        ``engine.setup`` bucket and never to a phase timing.  Returns
        the seconds spent compiling (0.0 for non-numba backends or when
        the signatures are already warm).
        """
        if self.kernel != "numba":
            return 0.0
        return warmup_kernels(self.geometry.dim)

    # ------------------------------------------------------------------
    # Batched query (Phase II hot path)
    # ------------------------------------------------------------------

    def query_cell_batch(self, cell_id: CellId, points: np.ndarray) -> CellBatchQueryResult:
        """Run the (eps, rho)-region query for every point of one cell.

        ``points`` must all lie in ``cell_id``; the result aligns with
        the row order of ``points``.
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError("points must be (n, d)")
        eps = self.geometry.eps
        eps2 = eps * eps
        side = self.geometry.side
        rows = self._finder.candidate_rows(cell_id)
        candidate_array = self._finder.cell_ids[rows]
        candidates = [tuple(row) for row in candidate_array.tolist()]
        if self._defrag is not None:
            if isinstance(self._defrag, FlatDefragmentedDictionary):
                self._defrag.record_rows_consulted(rows)
            else:
                self._defrag.record_cells_consulted(candidates)
        elif self._partial is not None:
            self._partial.record_rows_consulted(rows)
        n = pts.shape[0]
        m = len(candidates)
        counts = np.zeros(n, dtype=np.float64)
        touch = np.zeros((n, m), dtype=bool)
        if n == 0 or m == 0:
            return CellBatchQueryResult(
                candidate_ids=candidates,
                counts=counts,
                touch=touch,
                candidate_rows=rows,
            )

        # Candidate-box classification (shared by every backend): the
        # point-to-box min/max distances split candidates into
        # fully-contained (Example 5.5 case 1: every sub-cell center is
        # a neighbor), partially-contained (case 2: test the centers),
        # and out-of-reach.
        near, full = self._classify_boxes(pts, candidate_array, side, eps2)
        if self._flat is not None:
            cell_counts = self._flat.cell_counts[rows].astype(np.float64)
        else:
            cell_counts = np.array(
                [self._dict.cells[c].count for c in candidates], dtype=np.float64
            )
        if self._impls is not None:
            self._query_kernel(
                pts, rows, candidates, near, full, cell_counts, eps2, counts, touch
            )
        else:
            self._query_numpy(
                pts, rows, candidates, near, full, cell_counts, eps2, counts, touch
            )
        return CellBatchQueryResult(
            candidate_ids=candidates,
            counts=counts,
            touch=touch,
            candidate_rows=rows,
        )

    @staticmethod
    def _classify_boxes(
        pts: np.ndarray, candidate_array: np.ndarray, side: float, eps2: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(near, full)`` bool masks: point-to-box distances for all
        candidates at once via ``(n, m, d)`` broadcasting."""
        los = candidate_array.astype(np.float64) * side  # (m, d)
        diff_lo = los[None, :, :] - pts[:, None, :]
        diff_hi = -diff_lo - side  # pts - (los + side)
        gap = np.maximum(np.maximum(diff_lo, diff_hi), 0.0)
        min_d2 = np.einsum("ijk,ijk->ij", gap, gap)  # (n, m)
        corner = np.maximum(np.abs(diff_lo), np.abs(diff_hi))
        max_d2 = np.einsum("ijk,ijk->ij", corner, corner)
        return min_d2 <= eps2, max_d2 <= eps2

    def _gather_partial(
        self,
        rows: np.ndarray,
        partial_cols: np.ndarray,
        candidates: list[CellId],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(centers, densities, sizes)`` of the partial candidates'
        sub-cells, concatenated in candidate order."""
        if self._flat is not None:
            # One vectorized CSR gather over the columnar arrays.
            return self._flat.gather_subcells(rows[partial_cols])
        center_blocks = [
            self._dict.sub_cell_centers(candidates[j]) for j in partial_cols
        ]
        density_blocks = [self._dict.densities(candidates[j]) for j in partial_cols]
        sizes = np.array([block.shape[0] for block in center_blocks])
        centers = np.concatenate(center_blocks)  # (M, d)
        densities = np.concatenate(density_blocks)  # (M,)
        return centers, densities, sizes

    def _query_numpy(
        self, pts, rows, candidates, near, full, cell_counts, eps2, counts, touch
    ) -> None:
        """The vectorized reference backend (``kernel="numpy"``)."""
        counts += full @ cell_counts
        touch |= full

        # Partially-contained candidates: test their sub-cell centers,
        # concatenated into a single distance computation (case 2).
        partial = near & ~full  # (n, m)
        partial_cols = np.nonzero(partial.any(axis=0))[0]
        if partial_cols.size:
            centers, densities, sizes = self._gather_partial(
                rows, partial_cols, candidates
            )
            starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
            col_of = np.repeat(np.arange(partial_cols.size), sizes)
            within = seq_squared_distances(pts, centers) <= eps2  # (n, M)
            # A fully-contained candidate was already counted wholesale;
            # mask its columns so nothing is counted twice.
            within &= partial[:, partial_cols][:, col_of]
            counts += within @ densities
            seg_hits = np.add.reduceat(within, starts, axis=1) > 0
            touch[:, partial_cols] |= seg_hits

    def _query_kernel(
        self, pts, rows, candidates, near, full, cell_counts, eps2, counts, touch
    ) -> None:
        """The compiled backend (``kernel="numba"``; ``"python"`` runs
        the same source uncompiled).  Bit-identical to ``_query_numpy``:
        the within decision shares the sequential per-dimension
        accumulation and density sums are exact integer arithmetic in
        float64 (see :mod:`repro.kernels.phase2`)."""
        fused, gathered = self._impls
        if self._csr is not None:
            # Fused path: the CSR slice is the loop bound — the
            # candidate gather never materializes.
            fused(
                pts,
                rows,
                near,
                full,
                cell_counts,
                self._csr.offsets,
                self._csr.sub_centers,
                self._csr.sub_counts,
                eps2,
                counts,
                touch,
            )
            return
        # Gathered path (dict layout, sharded partial dictionary): the
        # layout's own gather produces the center block, the kernel
        # fuses filter + accumulate over it.
        partial = near & ~full
        partial_cols = np.nonzero(partial.any(axis=0))[0]
        if partial_cols.size:
            centers, densities, sizes = self._gather_partial(
                rows, partial_cols, candidates
            )
            seg_offsets = np.concatenate(([0], np.cumsum(sizes))).astype(np.int64)
        else:
            d = pts.shape[1]
            centers = np.empty((0, d), dtype=np.float64)
            densities = np.empty(0, dtype=np.float64)
            seg_offsets = np.zeros(1, dtype=np.int64)
        gathered(
            pts,
            near,
            full,
            cell_counts,
            partial_cols.astype(np.int64),
            seg_offsets,
            centers,
            densities,
            eps2,
            counts,
            touch,
        )

    # ------------------------------------------------------------------
    # Single-point query (tests, exploration)
    # ------------------------------------------------------------------

    def query_point(self, point: np.ndarray) -> tuple[float, list[CellId]]:
        """Approximate neighbor count and touched cells for one point.

        Returns ``(count, cells)`` where ``count`` is the density sum of
        the point's (eps, rho)-neighbor sub-cells and ``cells`` are the
        cells contributing at least one neighbor sub-cell.
        """
        p = np.asarray(point, dtype=np.float64)
        cell_id = self.geometry.grid.cell_id_of(p)
        result = self.query_cell_batch(cell_id, p[None, :])
        touched = [
            cid for j, cid in enumerate(result.candidate_ids) if result.touch[0, j]
        ]
        return float(result.counts[0]), touched

    def neighbor_subcells(self, point: np.ndarray) -> list[tuple[CellId, np.ndarray]]:
        """The (eps, rho)-neighbor sub-cells of ``point`` (Def 5.1).

        Returns ``(cell_id, mask)`` pairs where ``mask`` flags the
        cell's sub-cells whose centers are within ``eps``.  This is the
        literal ``NSC`` set of Algorithm 3; the batched query is the
        optimized equivalent.
        """
        p = np.asarray(point, dtype=np.float64)
        eps = self.geometry.eps
        cell_id = self.geometry.grid.cell_id_of(p)
        out: list[tuple[CellId, np.ndarray]] = []
        for candidate in self.candidate_cells(cell_id):
            centers = self._dict.sub_cell_centers(candidate)
            diff = centers - p
            mask = np.einsum("ij,ij->i", diff, diff) <= eps * eps
            if mask.any():
                out.append((candidate, mask))
        return out
