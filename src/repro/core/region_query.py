"""(eps, rho)-region queries against the two-level cell dictionary.

Definition 5.1: a sub-cell is an *(eps, rho)-neighbor* of a point ``p``
when the sub-cell's center is within ``eps`` of ``p``.  The query runs
entirely against the broadcast dictionary, so a worker can measure the
density around any of its points without talking to other workers.

Processing follows Example 5.5: candidate cells near the query are found
first (offset enumeration in low dimensions, kd-tree over non-empty cell
centers in high dimensions — Lemma 5.6); a candidate *fully contained*
in the query ball contributes all of its sub-cells at once, a *partially
contained* candidate contributes the sub-cells whose centers pass the
distance test, and candidates outside the ball are dropped.

Queries are batched per cell: every point of a cell shares the same
candidate-cell set, so one ``(n_points x n_centers)`` distance matrix
answers all of a cell's queries — this is the Phase II hot path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cells import CellGeometry, CellId
from repro.core.defragmentation import (
    DefragmentedDictionary,
    FlatDefragmentedDictionary,
)
from repro.core.dictionary import CellDictionary, FlatCellDictionary
from repro.core.sharding import PartialFlatDictionary
from repro.spatial.cell_index import NeighborCellFinder
from repro.spatial.distance import pairwise_distances

__all__ = ["CellBatchQueryResult", "RegionQueryEngine"]


@dataclass
class CellBatchQueryResult:
    """Answers for all points of one cell.

    Attributes
    ----------
    candidate_ids:
        The non-empty cells that could hold (eps, rho)-neighbors, in
        lexicographic order.
    counts:
        ``(n,)`` float64: for each query point, the sum of densities of
        its (eps, rho)-neighbor sub-cells — the approximate
        ``|N_eps(p)|`` used for core marking (Algorithm 3 line 8).
    touch:
        ``(n, len(candidate_ids))`` bool: ``touch[i, j]`` is ``True``
        when point ``i`` has at least one neighbor sub-cell inside
        candidate cell ``j`` — the reachability used for edge building
        (Algorithm 3 line 13).
    candidate_rows:
        ``(len(candidate_ids),)`` int64: the candidates' dense rows in
        the dictionary's sorted cell order — directly usable as cell
        graph vertex ids, no per-tuple ``index_map`` lookups.
    """

    candidate_ids: list[CellId]
    counts: np.ndarray
    touch: np.ndarray
    candidate_rows: np.ndarray | None = None


class RegionQueryEngine:
    """Executes (eps, rho)-region queries over a cell dictionary.

    Parameters
    ----------
    dictionary:
        A :class:`CellDictionary` or :class:`FlatCellDictionary`, their
        defragmented wrappers (enables sub-dictionary-skipping
        accounting), or a :class:`PartialFlatDictionary` (budgeted shard
        residency); results are identical in every case.
    strategy:
        Candidate-cell search: ``"enumerate"`` (integer offsets),
        ``"kdtree"`` (tree over non-empty cell centers), or ``"auto"``
        (enumerate while the offset table stays small).
    """

    def __init__(
        self,
        dictionary: (
            CellDictionary
            | FlatCellDictionary
            | DefragmentedDictionary
            | FlatDefragmentedDictionary
            | PartialFlatDictionary
        ),
        *,
        strategy: str = "auto",
    ) -> None:
        if isinstance(dictionary, (DefragmentedDictionary, FlatDefragmentedDictionary)):
            self._defrag = dictionary
            inner = dictionary.dictionary
        else:
            self._defrag = None
            inner = dictionary
        # A partial dictionary exposes the flat columnar query surface
        # (cell_counts + gather_subcells) over its bounded shard cache,
        # so it rides the flat hot path unchanged; its per-batch
        # record_rows_consulted doubles as the residency oracle.
        self._flat = (
            inner
            if isinstance(inner, (FlatCellDictionary, PartialFlatDictionary))
            else None
        )
        self._partial = inner if isinstance(inner, PartialFlatDictionary) else None
        self._dict = inner
        self.geometry: CellGeometry = inner.geometry
        # The finder consumes the lexicographically sorted id array, so
        # its rows are the dictionary's dense indices and every candidate
        # list comes back in a deterministic (lexicographic) order.
        ids = inner.cell_ids if self._flat is not None else inner.cell_ids_array()
        self._finder = NeighborCellFinder(
            ids,
            self.geometry.side,
            self.geometry.eps,
            strategy=strategy,
        )
        self.strategy = self._finder.strategy

    # ------------------------------------------------------------------
    # Candidate cells
    # ------------------------------------------------------------------

    def candidate_cells(self, cell_id: CellId) -> list[CellId]:
        """Non-empty cells whose box lies within ``eps`` of ``cell_id``'s
        box — a superset of every point-level candidate set for points in
        that cell.  Lexicographically ordered."""
        return self._finder.candidates(cell_id)

    # ------------------------------------------------------------------
    # Batched query (Phase II hot path)
    # ------------------------------------------------------------------

    def query_cell_batch(self, cell_id: CellId, points: np.ndarray) -> CellBatchQueryResult:
        """Run the (eps, rho)-region query for every point of one cell.

        ``points`` must all lie in ``cell_id``; the result aligns with
        the row order of ``points``.
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError("points must be (n, d)")
        eps = self.geometry.eps
        eps2 = eps * eps
        side = self.geometry.side
        rows = self._finder.candidate_rows(cell_id)
        candidate_array = self._finder.cell_ids[rows]
        candidates = [tuple(row) for row in candidate_array.tolist()]
        if self._defrag is not None:
            if isinstance(self._defrag, FlatDefragmentedDictionary):
                self._defrag.record_rows_consulted(rows)
            else:
                self._defrag.record_cells_consulted(candidates)
        elif self._partial is not None:
            self._partial.record_rows_consulted(rows)
        n = pts.shape[0]
        m = len(candidates)
        counts = np.zeros(n, dtype=np.float64)
        touch = np.zeros((n, m), dtype=bool)
        if n == 0 or m == 0:
            return CellBatchQueryResult(
                candidate_ids=candidates,
                counts=counts,
                touch=touch,
                candidate_rows=rows,
            )

        # Point-to-box distances for all candidates at once: (n, m, d).
        los = candidate_array.astype(np.float64) * side  # (m, d)
        diff_lo = los[None, :, :] - pts[:, None, :]
        diff_hi = -diff_lo - side  # pts - (los + side)
        gap = np.maximum(np.maximum(diff_lo, diff_hi), 0.0)
        min_d2 = np.einsum("ijk,ijk->ij", gap, gap)  # (n, m)
        corner = np.maximum(np.abs(diff_lo), np.abs(diff_hi))
        max_d2 = np.einsum("ijk,ijk->ij", corner, corner)
        near = min_d2 <= eps2
        # Fully-contained fast path (Example 5.5 case 1): the whole
        # candidate box is inside the query ball, so every sub-cell
        # center is a neighbor.
        full = max_d2 <= eps2
        if self._flat is not None:
            cell_counts = self._flat.cell_counts[rows].astype(np.float64)
        else:
            cell_counts = np.array(
                [self._dict.cells[c].count for c in candidates], dtype=np.float64
            )
        counts += full @ cell_counts
        touch |= full

        # Partially-contained candidates: test their sub-cell centers,
        # concatenated into a single distance computation (case 2).
        partial = near & ~full  # (n, m)
        partial_cols = np.nonzero(partial.any(axis=0))[0]
        if partial_cols.size:
            if self._flat is not None:
                # One vectorized CSR gather over the columnar arrays.
                centers, densities, sizes = self._flat.gather_subcells(
                    rows[partial_cols]
                )
            else:
                center_blocks = [
                    self._dict.sub_cell_centers(candidates[j]) for j in partial_cols
                ]
                density_blocks = [
                    self._dict.densities(candidates[j]) for j in partial_cols
                ]
                sizes = np.array([block.shape[0] for block in center_blocks])
                centers = np.concatenate(center_blocks)  # (M, d)
                densities = np.concatenate(density_blocks)  # (M,)
            starts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
            col_of = np.repeat(np.arange(partial_cols.size), sizes)
            within = pairwise_distances(pts, centers) <= eps  # (n, M)
            # A fully-contained candidate was already counted wholesale;
            # mask its columns so nothing is counted twice.
            within &= partial[:, partial_cols][:, col_of]
            counts += within @ densities
            seg_hits = np.add.reduceat(within, starts, axis=1) > 0
            touch[:, partial_cols] |= seg_hits
        return CellBatchQueryResult(
            candidate_ids=candidates,
            counts=counts,
            touch=touch,
            candidate_rows=rows,
        )

    # ------------------------------------------------------------------
    # Single-point query (tests, exploration)
    # ------------------------------------------------------------------

    def query_point(self, point: np.ndarray) -> tuple[float, list[CellId]]:
        """Approximate neighbor count and touched cells for one point.

        Returns ``(count, cells)`` where ``count`` is the density sum of
        the point's (eps, rho)-neighbor sub-cells and ``cells`` are the
        cells contributing at least one neighbor sub-cell.
        """
        p = np.asarray(point, dtype=np.float64)
        cell_id = self.geometry.grid.cell_id_of(p)
        result = self.query_cell_batch(cell_id, p[None, :])
        touched = [
            cid for j, cid in enumerate(result.candidate_ids) if result.touch[0, j]
        ]
        return float(result.counts[0]), touched

    def neighbor_subcells(self, point: np.ndarray) -> list[tuple[CellId, np.ndarray]]:
        """The (eps, rho)-neighbor sub-cells of ``point`` (Def 5.1).

        Returns ``(cell_id, mask)`` pairs where ``mask`` flags the
        cell's sub-cells whose centers are within ``eps``.  This is the
        literal ``NSC`` set of Algorithm 3; the batched query is the
        optimized equivalent.
        """
        p = np.asarray(point, dtype=np.float64)
        eps = self.geometry.eps
        cell_id = self.geometry.grid.cell_id_of(p)
        out: list[tuple[CellId, np.ndarray]] = []
        for candidate in self.candidate_cells(cell_id):
            centers = self._dict.sub_cell_centers(candidate)
            diff = centers - p
            mask = np.einsum("ij,ij->i", diff, diff) <= eps * eps
            if mask.any():
                out.append((candidate, mask))
        return out
