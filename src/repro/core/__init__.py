"""The RP-DBSCAN core: the paper's primary contribution.

Public surface:

* :class:`~repro.core.rp_dbscan.RPDBSCAN` — the parallel clustering
  algorithm (Algorithm 1).
* :class:`~repro.core.cells.CellGeometry` — cell / sub-cell geometry.
* :class:`~repro.core.dictionary.CellDictionary` — the two-level cell
  dictionary broadcast to workers.
* :class:`~repro.core.region_query.RegionQueryEngine` — (eps, rho)-region
  queries, usable standalone for approximate density estimation.

The phase modules (:mod:`partitioning`, :mod:`construction`,
:mod:`merging`, :mod:`labeling`) are public too; the orchestrator is a
thin composition of them, so each phase can be driven and tested on its
own.
"""

from repro.core.cell_graph import CellGraph, EdgeType, FlatCellGraph
from repro.core.cells import CellGeometry, h_for_rho
from repro.core.cluster_state import ClusterState, IngestReport
from repro.core.construction import QueryContext, SubgraphResult, build_cell_subgraph
from repro.core.defragmentation import (
    DefragmentedDictionary,
    FlatDefragmentedDictionary,
    FlatSubDictionary,
    SubDictionary,
    defragment,
)
from repro.core.dictionary import (
    CellDictionary,
    CellSummary,
    DictionarySizeModel,
    FlatCellDictionary,
    summarize_cell,
)
from repro.core.labeling import (
    NOISE,
    LabelingContext,
    build_labeling_context,
    label_partition,
)
from repro.core.merging import (
    MERGE_MODES,
    MergeStats,
    merge_match,
    merge_pair,
    progressive_merge,
    resolve_merge_mode,
)
from repro.core.partitioning import (
    Partition,
    pseudo_random_partition,
    true_random_partition,
)
from repro.core.prediction import ClusterModel
from repro.core.region_query import CellBatchQueryResult, RegionQueryEngine
from repro.core.serialization import (
    deserialize_cell_graph,
    deserialize_cluster_state,
    deserialize_dictionary,
    deserialize_flat_dictionary,
    load_cluster_state,
    save_cluster_state,
    serialize_cell_graph,
    serialize_cluster_state,
    serialize_dictionary,
)
from repro.core.rp_dbscan import (
    EXACT_RHO,
    PHASE_CELL_GRAPH,
    PHASE_DICTIONARY,
    PHASE_LABEL,
    PHASE_MERGE,
    PHASE_PARTITION,
    PHASES,
    RPDBSCAN,
    RPDBSCANResult,
)

__all__ = [
    "RPDBSCAN",
    "RPDBSCANResult",
    "EXACT_RHO",
    "CellGeometry",
    "h_for_rho",
    "CellDictionary",
    "CellSummary",
    "DictionarySizeModel",
    "FlatCellDictionary",
    "summarize_cell",
    "CellGraph",
    "EdgeType",
    "FlatCellGraph",
    "QueryContext",
    "SubgraphResult",
    "build_cell_subgraph",
    "DefragmentedDictionary",
    "FlatDefragmentedDictionary",
    "SubDictionary",
    "FlatSubDictionary",
    "defragment",
    "LabelingContext",
    "build_labeling_context",
    "label_partition",
    "NOISE",
    "MergeStats",
    "MERGE_MODES",
    "merge_match",
    "merge_pair",
    "progressive_merge",
    "resolve_merge_mode",
    "Partition",
    "pseudo_random_partition",
    "true_random_partition",
    "CellBatchQueryResult",
    "RegionQueryEngine",
    "ClusterModel",
    "ClusterState",
    "IngestReport",
    "serialize_dictionary",
    "deserialize_dictionary",
    "deserialize_flat_dictionary",
    "serialize_cell_graph",
    "deserialize_cell_graph",
    "serialize_cluster_state",
    "deserialize_cluster_state",
    "save_cluster_state",
    "load_cluster_state",
    "PHASES",
    "PHASE_PARTITION",
    "PHASE_DICTIONARY",
    "PHASE_CELL_GRAPH",
    "PHASE_MERGE",
    "PHASE_LABEL",
]
