"""The persistent model plane: :class:`ClusterState` + incremental refit.

A fit used to be a one-shot pipeline: the flat dictionary, the global
cell graph, and the union-find component labels were all discarded once
the per-point label array existed.  This module makes that intermediate
world a first-class, serializable product — the **model plane** —
so it can be

* **served**: :class:`~repro.core.prediction.ClusterModel` is a thin
  view over the state answering batch label queries;
* **persisted**: ``core/serialization.py`` round-trips the state through
  the magic-dispatched ``RPST`` stream (byte-stable);
* **refit incrementally**: :meth:`ClusterState.ingest` appends points,
  dirty-marks the eps-neighborhood of every touched cell, re-runs
  Phases II/III *only on the dirty subgraph* through the engine, and
  splices the result back under canonical component renumbering.

Bit-identity contract
---------------------
``state.ingest(new)`` leaves the state **bit-identical** (dictionary
arrays, vertex statuses, cell labels, per-point labels and core flags)
to a from-scratch ``fit`` on the concatenated points.  Three facts carry
the proof:

1. *Partition invariance.*  Pseudo random partitioning assigns whole
   cells, so a Phase II batch is always "one cell's points in ascending
   global-index order against the global dictionary" — which partition
   the cell landed in never reaches the arithmetic.  The ingest path may
   therefore regroup dirty cells into fresh partitions without
   reproducing the fit's RNG.
2. *Monotonicity.*  Ingest only adds points: densities grow, core
   status only promotes, per-cell touch sets only grow.  A **clean**
   cell (no dirty cell among its candidates) sees exactly the candidate
   contents it saw before, so its counts, core flags, and out-edges are
   already the union's — they are retained verbatim.  Dirty cells are
   recomputed against the union dictionary, so they are exact too.
3. *Canonical renumbering.*  Cluster ids are a pure function of the
   core set and full-edge connectivity
   (:func:`~repro.core.labeling.core_cell_labels`, shared with the fit
   path), and Phase III-2 labels each cell from state-level data only —
   so identical connectivity yields identical labels.

The dirty rule itself is sound because the candidate relation (box-to-
box gap <= eps) is symmetric: if a touched cell could influence ``c``,
then ``c`` is in the touched cell's candidate set, hence dirty.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.cell_graph import EdgeType, FlatCellGraph, V_CORE
from repro.core.cells import CellGeometry
from repro.core.construction import QueryContext
from repro.core.dictionary import FlatCellDictionary
from repro.core.labeling import (
    NOISE,
    build_labeling_context,
    core_cell_labels,
)
from repro.core.merging import progressive_merge
from repro.core.partitioning import Partition
from repro.spatial.cell_index import NeighborCellFinder

__all__ = [
    "ClusterState",
    "IngestReport",
    "PHASE_INGEST_GRAPH",
    "PHASE_INGEST_MERGE",
    "PHASE_INGEST_LABEL",
]

#: Counter/span buckets of the incremental-refit pipeline.  Distinct
#: from the fit-phase names so a shared engine's fit breakdown (Fig 12)
#: is never polluted by refit work.
PHASE_INGEST_GRAPH = "ingest II dirty cells"
PHASE_INGEST_MERGE = "ingest III-1 merging"
PHASE_INGEST_LABEL = "ingest III-2 relabel"


@dataclass
class IngestReport:
    """The dirty-cell ledger of one :meth:`ClusterState.ingest` call."""

    #: Points appended by this ingest.
    num_new_points: int
    #: Cells in the union dictionary after the ingest.
    cells_total: int
    #: Cells whose Phase II answers were recomputed (the eps-
    #: neighborhood of every touched cell).
    cells_dirty: int
    #: Cells that did not exist before this ingest.
    cells_new: int
    #: Edges produced by the dirty re-run (before splice reduction).
    edges_recomputed: int
    #: Clean-source edges retained verbatim from the previous graph.
    edges_retained: int
    #: Wall seconds of the driver-side splice (status merge, edge
    #: re-typing, reduction, canonical renumbering).
    splice_seconds: float
    #: Wall seconds of the whole ingest call.
    total_seconds: float
    #: Cluster count after the ingest.
    n_clusters: int


@dataclass
class ClusterState:
    """Everything a fitted clustering *is*, in columnar form.

    Attributes
    ----------
    geometry:
        Cell geometry (eps, dim, rho) shared by every component.
    min_pts:
        Core threshold the state was fitted with.
    dictionary:
        The flat two-level cell dictionary of all fitted points.
    graph:
        The global cell graph (Definition 6.1) over the dictionary's
        dense rows: int8 vertex statuses (core/noncore) and the reduced
        FULL/PARTIAL edge list, union-find forest included.
    cell_labels:
        ``(C,)`` int64 canonical cluster id per cell row; ``-1`` for
        non-core cells.
    points:
        ``(n, d)`` float64 fitted points, in ingestion order.
    point_cell_rows:
        ``(n,)`` int64 dictionary row of each point's cell.
    labels:
        ``(n,)`` int64 per-point cluster labels (``-1`` noise).
    core_mask:
        ``(n,)`` bool per-point core flags.
    kernel:
        Resolved Phase II backend (``"numpy"``/``"numba"``/``"python"``)
        used for queries — ingest reuses it so recomputed answers stay
        bit-identical.
    candidate_strategy:
        Candidate-cell search strategy, likewise reused.
    merge_mode:
        Phase III-1 scheduling for ingest's dirty-subgraph tournament.
    num_tasks:
        Task fan-out for ingest's engine-mapped phases.
    """

    geometry: CellGeometry
    min_pts: int
    dictionary: FlatCellDictionary
    graph: FlatCellGraph
    cell_labels: np.ndarray
    points: np.ndarray
    point_cell_rows: np.ndarray
    labels: np.ndarray
    core_mask: np.ndarray
    kernel: str = "numpy"
    candidate_strategy: str = "auto"
    merge_mode: str = "auto"
    num_tasks: int = 8

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def eps(self) -> float:
        """The DBSCAN radius."""
        return self.geometry.eps

    @property
    def num_points(self) -> int:
        """Number of fitted points."""
        return int(self.points.shape[0])

    @property
    def num_cells(self) -> int:
        """Number of non-empty cells."""
        return int(self.dictionary.num_cells)

    @property
    def n_clusters(self) -> int:
        """Number of clusters."""
        mask = self.cell_labels >= 0
        if not mask.any():
            return 0
        return int(np.unique(self.cell_labels[mask]).size)

    @classmethod
    def empty(
        cls,
        geometry: CellGeometry,
        min_pts: int,
        *,
        kernel: str = "numpy",
        candidate_strategy: str = "auto",
        merge_mode: str = "auto",
        num_tasks: int = 8,
    ) -> "ClusterState":
        """The state of a fit on zero points (everything empty)."""
        d = geometry.dim
        return cls(
            geometry=geometry,
            min_pts=int(min_pts),
            dictionary=FlatCellDictionary._empty(geometry),
            graph=FlatCellGraph(0),
            cell_labels=np.empty(0, dtype=np.int64),
            points=np.empty((0, d), dtype=np.float64),
            point_cell_rows=np.empty(0, dtype=np.int64),
            labels=np.empty(0, dtype=np.int64),
            core_mask=np.empty(0, dtype=bool),
            kernel=kernel,
            candidate_strategy=candidate_strategy,
            merge_mode=merge_mode,
            num_tasks=num_tasks,
        )

    def validate(self) -> None:
        """Cheap structural invariants (tests and load-time checks)."""
        n = self.points.shape[0]
        C = self.dictionary.num_cells
        if self.graph.n_slots != C:
            raise ValueError("graph universe must match the dictionary")
        if self.cell_labels.shape != (C,):
            raise ValueError("cell_labels must be (C,)")
        for name in ("point_cell_rows", "labels"):
            if getattr(self, name).shape != (n,):
                raise ValueError(f"{name} must be (n,)")
        if self.core_mask.shape != (n,):
            raise ValueError("core_mask must be (n,)")
        if n and (
            self.point_cell_rows.min() < 0 or self.point_cell_rows.max() >= C
        ):
            raise ValueError("point_cell_rows outside the dictionary")
        if int(self.dictionary.cell_counts.sum()) != n:
            raise ValueError("dictionary counts disagree with points")

    # ------------------------------------------------------------------
    # Incremental refit
    # ------------------------------------------------------------------

    def ingest(
        self,
        new_points: np.ndarray,
        *,
        engine=None,
        num_tasks: int | None = None,
        merge_mode: str | None = None,
    ) -> IngestReport:
        """Append ``new_points`` and refit only what they can affect.

        The state is updated in place; the result is bit-identical to a
        from-scratch fit on ``concatenate([self.points, new_points])``
        (see the module docstring for why).  Engine-mapped phases ride
        the given engine's recovery loop, so worker crashes, delays, and
        chaos injection mid-refit recover to the same answer.

        Parameters
        ----------
        new_points:
            ``(m, d)`` points to append.
        engine:
            An :class:`~repro.engine.executors.Engine` for the dirty
            Phase II / III work; a fresh serial engine when ``None``.
        num_tasks:
            Fan-out for the mapped phases (default: the state's).
        merge_mode:
            Tournament scheduling for the dirty-subgraph merge
            (default: the state's).
        """
        # Local imports: rp_dbscan imports this module for state
        # assembly, so the shared phase workers must resolve lazily.
        from repro.core.rp_dbscan import (
            _phase2_warmup,
            _phase2_worker,
            _phase3_worker,
        )
        from repro.engine.executors import Engine

        pts = np.asarray(new_points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError(
                f"points must be a 2-d array of shape (n, d), got shape "
                f"{pts.shape}"
            )
        if pts.shape[1] != self.geometry.dim:
            raise ValueError(
                f"points have dim {pts.shape[1]} but the state has dim "
                f"{self.geometry.dim}"
            )
        if pts.size and not np.isfinite(pts).all():
            bad = int(np.count_nonzero(~np.isfinite(pts).all(axis=1)))
            raise ValueError(
                f"points contain NaN/inf coordinates in {bad} row(s); the "
                "cell grid requires finite coordinates"
            )
        if pts.shape[0] == 0:
            return IngestReport(
                num_new_points=0,
                cells_total=self.num_cells,
                cells_dirty=0,
                cells_new=0,
                edges_recomputed=0,
                edges_retained=self.graph.num_edges,
                splice_seconds=0.0,
                total_seconds=0.0,
                n_clusters=self.n_clusters,
            )
        engine = engine if engine is not None else Engine("serial")
        tasks = int(num_tasks) if num_tasks is not None else self.num_tasks
        mode = merge_mode if merge_mode is not None else self.merge_mode
        start_total = time.perf_counter()
        with engine.tracer.span("ingest", "driver"):
            report = self._ingest_traced(
                pts, engine, tasks, mode,
                _phase2_worker, _phase2_warmup, _phase3_worker,
            )
        report.total_seconds = time.perf_counter() - start_total
        spans = engine.tracer.find(kind="driver", name="ingest")
        if spans:
            spans[-1].annotations.update(
                num_new_points=report.num_new_points,
                cells_total=report.cells_total,
                cells_dirty=report.cells_dirty,
                cells_new=report.cells_new,
                edges_recomputed=report.edges_recomputed,
                edges_retained=report.edges_retained,
                splice_seconds=report.splice_seconds,
            )
        return report

    def _ingest_traced(
        self, pts, engine, num_tasks, merge_mode, phase2, warmup, phase3
    ) -> IngestReport:
        geometry = self.geometry
        old_dict = self.dictionary
        n1 = self.points.shape[0]
        n2 = pts.shape[0]
        n = n1 + n2

        # ---- Dictionary union (bit-identical to from_points on it) ----
        new_dict = old_dict.add_points(pts)
        C_new = new_dict.num_cells
        cells_new = C_new - old_dict.num_cells
        new_point_rows = new_dict.find_rows(geometry.cell_ids(pts))
        rowmap_old = new_dict.find_rows(old_dict.cell_ids)
        point_cell_rows = np.concatenate(
            [
                rowmap_old[self.point_cell_rows]
                if n1
                else np.empty(0, dtype=np.int64),
                new_point_rows,
            ]
        )
        points_all = np.concatenate([self.points, pts])

        # ---- Dirty marking: eps-neighborhood of every touched cell ----
        # candidate_rows is computed on the union dictionary; symmetry
        # of the box-gap relation makes this a sound invalidation set.
        touched = np.unique(new_point_rows)
        finder = NeighborCellFinder(
            new_dict.cell_ids,
            geometry.side,
            geometry.eps,
            strategy=self.candidate_strategy,
        )
        dirty = np.unique(
            np.concatenate(
                [
                    finder.candidate_rows(
                        tuple(int(v) for v in new_dict.cell_ids[row])
                    )
                    for row in touched.tolist()
                ]
            )
        )

        # ---- Phase II, dirty cells only (through the engine) ----------
        dirty_partitions = _partitions_over_cells(
            points_all, point_cell_rows, new_dict, dirty, num_tasks
        )
        context = QueryContext(
            new_dict, strategy=self.candidate_strategy, kernel=self.kernel
        )
        subgraph_results = engine.map_tasks(
            phase2,
            [(p, None) for p in dirty_partitions],
            broadcast=(context, self.min_pts, "flat"),
            phase=PHASE_INGEST_GRAPH,
            item_counter=lambda t: t[0].num_points,
            warmup=warmup,
        )

        # ---- Phase III-1 on the dirty subgraphs -----------------------
        dirty_graphs = [r.graph for r in subgraph_results]
        edges_recomputed = sum(g.num_edges for g in dirty_graphs)
        dirty_graph, _ = progressive_merge(
            dirty_graphs,
            merge_mode=merge_mode,
            engine=engine,
            phase=PHASE_INGEST_MERGE,
        )

        # ---- Splice: retained clean world + recomputed dirty world ----
        splice_start = time.perf_counter()
        status = np.zeros(C_new, dtype=np.int8)
        if n1:
            remapped = self.graph.remap_vertices(rowmap_old, C_new)
            status[rowmap_old] = self.graph.status
            # A clean source's edge set is already the union's; a dirty
            # source's edges were recomputed above and supersede its
            # old ones.
            clean = ~np.isin(remapped.src, dirty)
            keep_src = remapped.src[clean]
            keep_dst = remapped.dst[clean]
        else:
            keep_src = np.empty(0, dtype=np.int32)
            keep_dst = np.empty(0, dtype=np.int32)
        np.maximum(status, dirty_graph.status, out=status)
        edges_retained = int(keep_src.size)
        src = np.concatenate([keep_src, dirty_graph.src]).astype(np.int32)
        dst = np.concatenate([keep_dst, dirty_graph.dst]).astype(np.int32)
        # Every destination is a real (owned-somewhere) cell, so its
        # final status is core or noncore — one vectorized re-type
        # replaces Section 6.1.3's detection for the whole union,
        # promoting stale clean->dirty PARTIAL edges whose destination
        # just became core.
        etype = np.where(
            status[dst] == V_CORE, int(EdgeType.FULL), int(EdgeType.PARTIAL)
        ).astype(np.int8)
        spliced = FlatCellGraph.from_arrays(status, src, dst, etype)
        spliced.reduce_all_full_edges()
        labels_by_cell = core_cell_labels(spliced)
        cell_labels = np.full(C_new, -1, dtype=np.int64)
        if labels_by_cell:
            cell_labels[np.fromiter(labels_by_cell.keys(), dtype=np.int64)] = (
                np.fromiter(labels_by_cell.values(), dtype=np.int64)
            )
        splice_seconds = time.perf_counter() - splice_start

        # ---- Per-point core flags: clean retained, dirty recomputed ---
        core_mask = np.concatenate([self.core_mask, np.zeros(n2, dtype=bool)])
        for partition, result in zip(
            dirty_partitions, subgraph_results, strict=True
        ):
            core_mask[partition.global_indices] = result.core_mask

        # ---- Phase III-2: relabel everything under the new numbering --
        union_partitions = _partitions_over_cells(
            points_all,
            point_cell_rows,
            new_dict,
            np.arange(C_new, dtype=np.int64),
            num_tasks,
        )
        core_masks = {
            p.pid: core_mask[p.global_indices] for p in union_partitions
        }
        labeling_context = build_labeling_context(
            spliced,
            union_partitions,
            core_masks,
            geometry.eps,
            new_dict.index_map,
        )
        labels = np.full(n, NOISE, dtype=np.int64)
        label_chunks = engine.map_tasks(
            phase3,
            union_partitions,
            broadcast=labeling_context,
            phase=PHASE_INGEST_LABEL,
            item_counter=lambda p: p.num_points,
        )
        for global_indices, chunk_labels in label_chunks:
            labels[global_indices] = chunk_labels

        # ---- Commit ---------------------------------------------------
        self.dictionary = new_dict
        self.graph = spliced
        self.cell_labels = cell_labels
        self.points = points_all
        self.point_cell_rows = point_cell_rows
        self.labels = labels
        self.core_mask = core_mask
        return IngestReport(
            num_new_points=n2,
            cells_total=C_new,
            cells_dirty=int(dirty.size),
            cells_new=int(cells_new),
            edges_recomputed=edges_recomputed,
            edges_retained=edges_retained,
            splice_seconds=splice_seconds,
            total_seconds=0.0,
            n_clusters=self.n_clusters,
        )


def _partitions_over_cells(
    points: np.ndarray,
    point_cell_rows: np.ndarray,
    dictionary: FlatCellDictionary,
    cell_rows: np.ndarray,
    num_tasks: int,
) -> list[Partition]:
    """Fresh whole-cell partitions over a subset of dictionary rows.

    Each returned partition holds whole cells, every cell's points in
    ascending global-index order — exactly the per-cell batch
    composition pseudo random partitioning produces, which is what keeps
    recomputed Phase II answers bit-identical regardless of how cells
    are regrouped here (partition invariance).
    """
    selected = np.nonzero(np.isin(point_cell_rows, cell_rows))[0]
    if selected.size == 0:
        return []
    # Stable sort by cell row: grouped by cell, ascending global index
    # within each cell.
    order = selected[np.argsort(point_cell_rows[selected], kind="stable")]
    sorted_rows = point_cell_rows[order]
    cells, starts, counts = np.unique(
        sorted_rows, return_index=True, return_counts=True
    )
    groups = [
        g for g in np.array_split(np.arange(cells.size), max(1, num_tasks))
        if g.size
    ]
    partitions: list[Partition] = []
    for pid, group in enumerate(groups):
        lo = int(starts[group[0]])
        hi = int(starts[group[-1]] + counts[group[-1]])
        sel = order[lo:hi]
        slices: dict[tuple, tuple[int, int]] = {}
        for g in group.tolist():
            cell_id = tuple(int(v) for v in dictionary.cell_ids[cells[g]])
            slices[cell_id] = (
                int(starts[g]) - lo,
                int(starts[g] + counts[g]) - lo,
            )
        partitions.append(
            Partition(
                pid=pid,
                points=np.ascontiguousarray(points[sel]),
                global_indices=sel.astype(np.int64),
                cell_slices=slices,
            )
        )
    return partitions
