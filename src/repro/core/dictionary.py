"""The two-level cell dictionary (paper Definition 4.2, Lemma 4.3).

The dictionary is the compact global summary broadcast to every worker.
Its root level has one entry per non-empty *cell* (exact position +
density); each root entry points to a leaf holding the cell's non-empty
*sub-cells* (local position encoded in ``d(h-1)`` bits + density).

This module provides:

* :class:`CellSummary` — one cell's leaf: sub-cell coordinates, densities.
* :class:`CellDictionary` — the full two-level structure with vectorized
  construction from points, the merge step of Algorithm 2 (Phase I-2
  ``Reduce``), the Lemma 4.3 size model, and a per-cell cache of sub-cell
  centers used by region queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cells import CellGeometry, CellId
from repro.spatial.grid import group_points_by_cell

__all__ = ["CellSummary", "CellDictionary", "DictionarySizeModel", "summarize_cell"]


@dataclass
class CellSummary:
    """Summary of one cell: its total density and its non-empty sub-cells.

    Attributes
    ----------
    count:
        Number of points in the cell (the root-entry density).
    sub_coords:
        ``(k, d)`` uint16 array of local sub-cell coordinates.
    sub_counts:
        ``(k,)`` int64 array of per-sub-cell densities.
    """

    count: int
    sub_coords: np.ndarray
    sub_counts: np.ndarray

    def __post_init__(self) -> None:
        if self.sub_coords.ndim != 2 or self.sub_counts.ndim != 1:
            raise ValueError("sub_coords must be (k, d), sub_counts (k,)")
        if self.sub_coords.shape[0] != self.sub_counts.shape[0]:
            raise ValueError("sub_coords and sub_counts disagree on k")
        if int(self.sub_counts.sum()) != self.count:
            raise ValueError("sub-cell densities must sum to the cell density")

    @property
    def num_subcells(self) -> int:
        """Number of non-empty sub-cells in this cell."""
        return self.sub_coords.shape[0]


@dataclass(frozen=True)
class DictionarySizeModel:
    """Size of a dictionary per Lemma 4.3, in bits.

    ``size = 32(|cell| + |sub-cell|) + 32 d |cell| + d(h-1)|sub-cell|``
    (densities as 32-bit ints, cell positions as ``d`` 32-bit floats,
    sub-cell positions as ``d(h-1)``-bit local orderings).
    """

    num_cells: int
    num_subcells: int
    dim: int
    h: int

    @property
    def density_bits(self) -> int:
        """Bits spent on (sub-)cell densities."""
        return 32 * (self.num_cells + self.num_subcells)

    @property
    def position_bits(self) -> int:
        """Bits spent on (sub-)cell positions."""
        return 32 * self.dim * self.num_cells + self.dim * (self.h - 1) * self.num_subcells

    @property
    def total_bits(self) -> int:
        """Total dictionary size in bits."""
        return self.density_bits + self.position_bits

    @property
    def total_bytes(self) -> float:
        """Total dictionary size in bytes."""
        return self.total_bits / 8.0

    def ratio_to_data(self, num_points: int, *, bytes_per_point: float | None = None) -> float:
        """Dictionary size as a fraction of the raw data set size.

        The paper stores points as ``d`` 32-bit floats (Table 3 lists all
        data sets as ``float``), so the data set occupies
        ``32 * d * N`` bits unless ``bytes_per_point`` overrides it.
        """
        if num_points <= 0:
            raise ValueError("num_points must be positive")
        if bytes_per_point is None:
            data_bits = 32 * self.dim * num_points
        else:
            data_bits = 8.0 * bytes_per_point * num_points
        return self.total_bits / data_bits


class CellDictionary:
    """Two-level cell dictionary over a set of points.

    Parameters
    ----------
    geometry:
        The cell/sub-cell geometry (fixes ``eps``, ``d``, ``rho``).
    cells:
        Mapping from cell id to :class:`CellSummary`.

    Notes
    -----
    Construction cost is ``O(n log n)`` (one grouping sort); lookups are
    hash lookups.  Sub-cell centers are materialized lazily per cell and
    cached because a cell's centers are consulted by region queries from
    every neighboring cell.
    """

    def __init__(self, geometry: CellGeometry, cells: dict[CellId, CellSummary]) -> None:
        self.geometry = geometry
        self.cells = cells
        self._center_cache: dict[CellId, np.ndarray] = {}
        self._index: dict[CellId, int] | None = None
        self._cells_in_order: list[CellId] | None = None

    # ------------------------------------------------------------------
    # Construction (Algorithm 2, Phase I-2)
    # ------------------------------------------------------------------

    @classmethod
    def from_points(cls, points: np.ndarray, geometry: CellGeometry) -> "CellDictionary":
        """Build the dictionary for ``points`` in one pass.

        Equivalent to running ``Cell_Dictionary_Building`` over a single
        partition holding all cells.
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError("points must be (n, d)")
        if pts.shape[1] != geometry.dim:
            raise ValueError(
                f"points have dim {pts.shape[1]} but geometry has dim {geometry.dim}"
            )
        groups = group_points_by_cell(pts, geometry.side)
        cells: dict[CellId, CellSummary] = {}
        for cell_id, indices in groups.items():
            cells[cell_id] = summarize_cell(pts[indices], cell_id, geometry)
        return cls(geometry, cells)

    @classmethod
    def merge(cls, dictionaries: list["CellDictionary"]) -> "CellDictionary":
        """Union of per-partition dictionaries (Algorithm 2, lines 18-20).

        Pseudo random partitioning assigns each cell to exactly one
        partition, so the per-partition dictionaries are disjoint; a
        shared cell id is a programming error and raises.
        """
        if not dictionaries:
            raise ValueError("merge requires at least one dictionary")
        geometry = dictionaries[0].geometry
        merged: dict[CellId, CellSummary] = {}
        for dictionary in dictionaries:
            if dictionary.geometry != geometry:
                raise ValueError("cannot merge dictionaries with different geometry")
            overlap = merged.keys() & dictionary.cells.keys()
            if overlap:
                raise ValueError(f"partitions share cells: {sorted(overlap)[:3]}...")
            merged.update(dictionary.cells)
        return cls(geometry, merged)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.cells)

    def __contains__(self, cell_id: CellId) -> bool:
        return cell_id in self.cells

    @property
    def num_cells(self) -> int:
        """Number of non-empty cells."""
        return len(self.cells)

    @property
    def num_subcells(self) -> int:
        """Number of non-empty sub-cells across all cells."""
        return sum(summary.num_subcells for summary in self.cells.values())

    @property
    def num_points(self) -> int:
        """Total density — must equal the data set size."""
        return sum(summary.count for summary in self.cells.values())

    def size_model(self) -> DictionarySizeModel:
        """Lemma 4.3 size accounting for this dictionary."""
        return DictionarySizeModel(
            num_cells=self.num_cells,
            num_subcells=self.num_subcells,
            dim=self.geometry.dim,
            h=self.geometry.h,
        )

    @property
    def index_map(self) -> dict[CellId, int]:
        """Dense index per cell (sorted order), built lazily.

        Cell graphs use these int indices as vertices: every vertex of
        every subgraph is a dictionary cell, and small-int keys make the
        tournament's set/dict operations several times cheaper than
        tuple-of-int keys.
        """
        if self._index is None:
            self._cells_in_order = sorted(self.cells)
            self._index = {cid: i for i, cid in enumerate(self._cells_in_order)}
        return self._index

    def cell_at(self, index: int) -> CellId:
        """Inverse of :attr:`index_map`."""
        self.index_map  # ensure built
        assert self._cells_in_order is not None
        return self._cells_in_order[index]

    def cell_ids_array(self) -> np.ndarray:
        """All cell ids as an ``(m, d)`` int64 array (stable order)."""
        if not self.cells:
            return np.empty((0, self.geometry.dim), dtype=np.int64)
        return np.array(sorted(self.cells.keys()), dtype=np.int64)

    # ------------------------------------------------------------------
    # Query support
    # ------------------------------------------------------------------

    def sub_cell_centers(self, cell_id: CellId) -> np.ndarray:
        """Cached ``(k, d)`` array of the cell's sub-cell centers."""
        centers = self._center_cache.get(cell_id)
        if centers is None:
            summary = self.cells[cell_id]
            centers = self.geometry.sub_cell_centers(cell_id, summary.sub_coords)
            self._center_cache[cell_id] = centers
        return centers

    def add_points(self, points: np.ndarray) -> None:
        """Fold new points into the summary (incremental maintenance).

        The two-level cell dictionary is a pure additive sketch —
        densities per (sub-)cell — so appending data never requires the
        old points: new cells and sub-cells are created, existing
        densities increase.  After an update the dictionary equals the
        one built from scratch on the union (tested), which is what
        makes periodic re-clustering of a growing data set cheap: Phase
        I-2 becomes O(batch) instead of O(total).
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError("points must be (n, d)")
        if pts.shape[1] != self.geometry.dim:
            raise ValueError(
                f"points have dim {pts.shape[1]} but geometry has dim "
                f"{self.geometry.dim}"
            )
        groups = group_points_by_cell(pts, self.geometry.side)
        for cell_id, indices in groups.items():
            fresh = summarize_cell(pts[indices], cell_id, self.geometry)
            current = self.cells.get(cell_id)
            if current is None:
                self.cells[cell_id] = fresh
            else:
                merged_coords = np.concatenate(
                    [current.sub_coords, fresh.sub_coords]
                )
                merged_counts = np.concatenate(
                    [current.sub_counts, fresh.sub_counts]
                )
                coords, inverse = np.unique(
                    merged_coords, axis=0, return_inverse=True
                )
                counts = np.zeros(coords.shape[0], dtype=np.int64)
                np.add.at(counts, inverse, merged_counts)
                self.cells[cell_id] = CellSummary(
                    count=current.count + fresh.count,
                    sub_coords=coords.astype(np.uint16),
                    sub_counts=counts,
                )
            self._center_cache.pop(cell_id, None)
        # New cells invalidate the dense index.
        self._index = None
        self._cells_in_order = None

    def materialize_centers(self) -> None:
        """Precompute every cell's sub-cell centers into the cache.

        On a real cluster each worker materializes centers while loading
        the broadcast dictionary (Phase I); doing it eagerly here keeps
        per-task Phase II timings uniform instead of charging the whole
        warm-up to whichever task runs first.
        """
        for cell_id in self.cells:
            self.sub_cell_centers(cell_id)

    def densities(self, cell_id: CellId) -> np.ndarray:
        """Per-sub-cell densities of ``cell_id`` as float64 (for matmul)."""
        return self.cells[cell_id].sub_counts.astype(np.float64)


def summarize_cell(
    cell_points: np.ndarray, cell_id: CellId, geometry: CellGeometry
) -> CellSummary:
    """Build a :class:`CellSummary` from the points of one cell."""
    ids = np.tile(np.asarray(cell_id, dtype=np.int64), (cell_points.shape[0], 1))
    local = geometry.sub_cell_coords(cell_points, ids)
    coords, counts = np.unique(local, axis=0, return_counts=True)
    return CellSummary(
        count=cell_points.shape[0],
        sub_coords=coords.astype(np.uint16),
        sub_counts=counts.astype(np.int64),
    )
