"""The two-level cell dictionary (paper Definition 4.2, Lemma 4.3).

The dictionary is the compact global summary broadcast to every worker.
Its root level has one entry per non-empty *cell* (exact position +
density); each root entry points to a leaf holding the cell's non-empty
*sub-cells* (local position encoded in ``d(h-1)`` bits + density).

This module provides two physical layouts of the same logical structure:

* :class:`CellSummary` / :class:`CellDictionary` — the dict-of-dataclass
  layout: a python mapping from cell id tuples to per-cell summaries.
  Convenient for incremental maintenance (:meth:`CellDictionary.add_points`)
  and as the reference implementation the columnar layout is tested
  against.
* :class:`FlatCellDictionary` — the columnar structure-of-arrays data
  plane: lexicographically sorted ``(C, d)`` cell ids, ``(C,)``
  densities, and a CSR layout (``offsets (C+1,)`` into ``(S, d)``
  sub-coordinates, ``(S,)`` sub-densities, precomputed ``(S, d)``
  sub-centers).  Lookups are binary searches, multi-cell gathers are
  vectorized CSR slices, and the whole structure is six contiguous
  arrays — which is what makes zero-copy shared-memory broadcast
  (:mod:`repro.engine.shm`) and near-free serialization possible.

Both layouts share the merge step of Algorithm 2 (Phase I-2 ``Reduce``)
and the Lemma 4.3 size model; :meth:`FlatCellDictionary.merge` performs
the union directly over arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cells import CellGeometry, CellId
from repro.spatial.grid import group_points_by_cell

__all__ = [
    "CellSummary",
    "CellDictionary",
    "FlatCellDictionary",
    "DictionarySizeModel",
    "summarize_cell",
    "lex_keys",
    "csr_gather_indices",
]


def lex_keys(ids: np.ndarray) -> np.ndarray:
    """A 1-D structured view of an ``(m, d)`` int64 array whose element
    comparison order is the rows' lexicographic order.

    ``np.searchsorted`` over such a view is a vectorized binary search
    for whole rows — the flat dictionary's lookup primitive.
    """
    ids = np.ascontiguousarray(ids, dtype=np.int64)
    if ids.ndim != 2:
        raise ValueError("ids must be (m, d)")
    return ids.view([("", ids.dtype)] * ids.shape[1]).reshape(ids.shape[0])


def csr_gather_indices(starts: np.ndarray, sizes: np.ndarray) -> np.ndarray:
    """Row indices selecting ``m`` variable-length runs from a CSR pool.

    Given run ``j`` starting at ``starts[j]`` with ``sizes[j]`` rows,
    returns the ``sizes.sum()`` indices enumerating every run in order —
    without a python-level loop.  Empty runs are allowed.
    """
    starts = np.asarray(starts, dtype=np.int64)
    sizes = np.asarray(sizes, dtype=np.int64)
    nonzero = sizes > 0
    if not nonzero.all():
        starts, sizes = starts[nonzero], sizes[nonzero]
    total = int(sizes.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    # Within a run the index advances by 1; at each run boundary it jumps
    # to the next run's start.  Encode the deltas, then prefix-sum.
    deltas = np.ones(total, dtype=np.int64)
    deltas[0] = starts[0]
    boundaries = np.cumsum(sizes)[:-1]
    deltas[boundaries] = starts[1:] - (starts[:-1] + sizes[:-1] - 1)
    return np.cumsum(deltas)


@dataclass
class CellSummary:
    """Summary of one cell: its total density and its non-empty sub-cells.

    Attributes
    ----------
    count:
        Number of points in the cell (the root-entry density).
    sub_coords:
        ``(k, d)`` uint16 array of local sub-cell coordinates.
    sub_counts:
        ``(k,)`` int64 array of per-sub-cell densities.
    """

    count: int
    sub_coords: np.ndarray
    sub_counts: np.ndarray

    def __post_init__(self) -> None:
        if self.sub_coords.ndim != 2 or self.sub_counts.ndim != 1:
            raise ValueError("sub_coords must be (k, d), sub_counts (k,)")
        if self.sub_coords.shape[0] != self.sub_counts.shape[0]:
            raise ValueError("sub_coords and sub_counts disagree on k")
        if int(self.sub_counts.sum()) != self.count:
            raise ValueError("sub-cell densities must sum to the cell density")

    @property
    def num_subcells(self) -> int:
        """Number of non-empty sub-cells in this cell."""
        return self.sub_coords.shape[0]


@dataclass(frozen=True)
class DictionarySizeModel:
    """Size of a dictionary per Lemma 4.3, in bits.

    ``size = 32(|cell| + |sub-cell|) + 32 d |cell| + d(h-1)|sub-cell|``
    (densities as 32-bit ints, cell positions as ``d`` 32-bit floats,
    sub-cell positions as ``d(h-1)``-bit local orderings).
    """

    num_cells: int
    num_subcells: int
    dim: int
    h: int

    @property
    def density_bits(self) -> int:
        """Bits spent on (sub-)cell densities."""
        return 32 * (self.num_cells + self.num_subcells)

    @property
    def position_bits(self) -> int:
        """Bits spent on (sub-)cell positions."""
        return 32 * self.dim * self.num_cells + self.dim * (self.h - 1) * self.num_subcells

    @property
    def total_bits(self) -> int:
        """Total dictionary size in bits."""
        return self.density_bits + self.position_bits

    @property
    def total_bytes(self) -> float:
        """Total dictionary size in bytes."""
        return self.total_bits / 8.0

    def ratio_to_data(self, num_points: int, *, bytes_per_point: float | None = None) -> float:
        """Dictionary size as a fraction of the raw data set size.

        The paper stores points as ``d`` 32-bit floats (Table 3 lists all
        data sets as ``float``), so the data set occupies
        ``32 * d * N`` bits unless ``bytes_per_point`` overrides it.
        """
        if num_points <= 0:
            raise ValueError("num_points must be positive")
        if bytes_per_point is None:
            data_bits = 32 * self.dim * num_points
        else:
            data_bits = 8.0 * bytes_per_point * num_points
        return self.total_bits / data_bits


class CellDictionary:
    """Two-level cell dictionary over a set of points.

    Parameters
    ----------
    geometry:
        The cell/sub-cell geometry (fixes ``eps``, ``d``, ``rho``).
    cells:
        Mapping from cell id to :class:`CellSummary`.

    Notes
    -----
    Construction cost is ``O(n log n)`` (one grouping sort); lookups are
    hash lookups.  Sub-cell centers are materialized lazily per cell and
    cached because a cell's centers are consulted by region queries from
    every neighboring cell.
    """

    def __init__(self, geometry: CellGeometry, cells: dict[CellId, CellSummary]) -> None:
        self.geometry = geometry
        self.cells = cells
        self._center_cache: dict[CellId, np.ndarray] = {}
        self._index: dict[CellId, int] | None = None
        self._cells_in_order: list[CellId] | None = None

    # ------------------------------------------------------------------
    # Construction (Algorithm 2, Phase I-2)
    # ------------------------------------------------------------------

    @classmethod
    def from_points(cls, points: np.ndarray, geometry: CellGeometry) -> "CellDictionary":
        """Build the dictionary for ``points`` in one pass.

        Equivalent to running ``Cell_Dictionary_Building`` over a single
        partition holding all cells.
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError("points must be (n, d)")
        if pts.shape[1] != geometry.dim:
            raise ValueError(
                f"points have dim {pts.shape[1]} but geometry has dim {geometry.dim}"
            )
        groups = group_points_by_cell(pts, geometry.side)
        cells: dict[CellId, CellSummary] = {}
        for cell_id, indices in groups.items():
            cells[cell_id] = summarize_cell(pts[indices], cell_id, geometry)
        return cls(geometry, cells)

    @classmethod
    def merge(cls, dictionaries: list["CellDictionary"]) -> "CellDictionary":
        """Union of per-partition dictionaries (Algorithm 2, lines 18-20).

        Pseudo random partitioning assigns each cell to exactly one
        partition, so the per-partition dictionaries are disjoint; a
        shared cell id is a programming error and raises.
        """
        if not dictionaries:
            raise ValueError("merge requires at least one dictionary")
        geometry = dictionaries[0].geometry
        merged: dict[CellId, CellSummary] = {}
        for dictionary in dictionaries:
            if dictionary.geometry != geometry:
                raise ValueError("cannot merge dictionaries with different geometry")
            overlap = merged.keys() & dictionary.cells.keys()
            if overlap:
                raise ValueError(f"partitions share cells: {sorted(overlap)[:3]}...")
            merged.update(dictionary.cells)
        return cls(geometry, merged)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.cells)

    def __contains__(self, cell_id: CellId) -> bool:
        return cell_id in self.cells

    @property
    def num_cells(self) -> int:
        """Number of non-empty cells."""
        return len(self.cells)

    @property
    def num_subcells(self) -> int:
        """Number of non-empty sub-cells across all cells."""
        return sum(summary.num_subcells for summary in self.cells.values())

    @property
    def num_points(self) -> int:
        """Total density — must equal the data set size."""
        return sum(summary.count for summary in self.cells.values())

    def size_model(self) -> DictionarySizeModel:
        """Lemma 4.3 size accounting for this dictionary."""
        return DictionarySizeModel(
            num_cells=self.num_cells,
            num_subcells=self.num_subcells,
            dim=self.geometry.dim,
            h=self.geometry.h,
        )

    @property
    def index_map(self) -> dict[CellId, int]:
        """Dense index per cell (sorted order), built lazily.

        Cell graphs use these int indices as vertices: every vertex of
        every subgraph is a dictionary cell, and small-int keys make the
        tournament's set/dict operations several times cheaper than
        tuple-of-int keys.
        """
        if self._index is None:
            self._cells_in_order = sorted(self.cells)
            self._index = {cid: i for i, cid in enumerate(self._cells_in_order)}
        return self._index

    def cell_at(self, index: int) -> CellId:
        """Inverse of :attr:`index_map`."""
        self.index_map  # ensure built
        assert self._cells_in_order is not None
        return self._cells_in_order[index]

    def cell_ids_array(self) -> np.ndarray:
        """All cell ids as an ``(m, d)`` int64 array (stable order)."""
        if not self.cells:
            return np.empty((0, self.geometry.dim), dtype=np.int64)
        return np.array(sorted(self.cells.keys()), dtype=np.int64)

    # ------------------------------------------------------------------
    # Query support
    # ------------------------------------------------------------------

    def sub_cell_centers(self, cell_id: CellId) -> np.ndarray:
        """Cached ``(k, d)`` array of the cell's sub-cell centers."""
        centers = self._center_cache.get(cell_id)
        if centers is None:
            summary = self.cells[cell_id]
            centers = self.geometry.sub_cell_centers(cell_id, summary.sub_coords)
            self._center_cache[cell_id] = centers
        return centers

    def add_points(self, points: np.ndarray) -> None:
        """Fold new points into the summary (incremental maintenance).

        The two-level cell dictionary is a pure additive sketch —
        densities per (sub-)cell — so appending data never requires the
        old points: new cells and sub-cells are created, existing
        densities increase.  After an update the dictionary equals the
        one built from scratch on the union (tested), which is what
        makes periodic re-clustering of a growing data set cheap: Phase
        I-2 becomes O(batch) instead of O(total).
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError("points must be (n, d)")
        if pts.shape[1] != self.geometry.dim:
            raise ValueError(
                f"points have dim {pts.shape[1]} but geometry has dim "
                f"{self.geometry.dim}"
            )
        groups = group_points_by_cell(pts, self.geometry.side)
        for cell_id, indices in groups.items():
            fresh = summarize_cell(pts[indices], cell_id, self.geometry)
            current = self.cells.get(cell_id)
            if current is None:
                self.cells[cell_id] = fresh
            else:
                merged_coords = np.concatenate(
                    [current.sub_coords, fresh.sub_coords]
                )
                merged_counts = np.concatenate(
                    [current.sub_counts, fresh.sub_counts]
                )
                coords, inverse = np.unique(
                    merged_coords, axis=0, return_inverse=True
                )
                counts = np.zeros(coords.shape[0], dtype=np.int64)
                np.add.at(counts, inverse, merged_counts)
                self.cells[cell_id] = CellSummary(
                    count=current.count + fresh.count,
                    sub_coords=coords.astype(np.uint16),
                    sub_counts=counts,
                )
            self._center_cache.pop(cell_id, None)
        # New cells invalidate the dense index.
        self._index = None
        self._cells_in_order = None

    def materialize_centers(self) -> None:
        """Precompute every cell's sub-cell centers into the cache.

        On a real cluster each worker materializes centers while loading
        the broadcast dictionary (Phase I); doing it eagerly here keeps
        per-task Phase II timings uniform instead of charging the whole
        warm-up to whichever task runs first.
        """
        for cell_id in self.cells:
            self.sub_cell_centers(cell_id)

    def densities(self, cell_id: CellId) -> np.ndarray:
        """Per-sub-cell densities of ``cell_id`` as float64 (for matmul)."""
        return self.cells[cell_id].sub_counts.astype(np.float64)


class _FlatIndexMap:
    """Mapping-style facade over a flat dictionary's dense cell index.

    ``index_map[cell_id]`` on the dict-backed layout is a hash lookup
    into a materialized dict; here it is a binary search into the sorted
    id array — same dense indices (both orders are lexicographic), no
    per-worker dict to build or ship.
    """

    __slots__ = ("flat",)

    def __init__(self, flat: "FlatCellDictionary") -> None:
        self.flat = flat

    def __getitem__(self, cell_id: CellId) -> int:
        return self.flat.row_of(cell_id)

    def get(self, cell_id: CellId, default: int | None = None) -> int | None:
        try:
            return self.flat.row_of(cell_id)
        except KeyError:
            return default

    def __contains__(self, cell_id: CellId) -> bool:
        return self.get(cell_id) is not None

    def __len__(self) -> int:
        return self.flat.num_cells


class FlatCellDictionary:
    """Columnar (structure-of-arrays) two-level cell dictionary.

    The same logical structure as :class:`CellDictionary`, stored as six
    contiguous arrays.  Cells are kept in lexicographic id order, so a
    cell's *row* equals its dense index in
    :attr:`CellDictionary.index_map` — the two layouts agree on every
    vertex id a cell graph can mention.

    Attributes
    ----------
    cell_ids:
        ``(C, d)`` int64, rows sorted lexicographically.
    cell_counts:
        ``(C,)`` int64 root-entry densities.
    offsets:
        ``(C + 1,)`` int64 CSR offsets: cell ``i`` owns sub-cell rows
        ``offsets[i]:offsets[i + 1]``.
    sub_coords:
        ``(S, d)`` uint16 local sub-cell coordinates, lexicographically
        sorted within each cell.
    sub_counts:
        ``(S,)`` int64 sub-cell densities.
    sub_centers:
        ``(S, d)`` float64 precomputed sub-cell centers — the approximate
        point positions consulted by every (eps, rho)-region query.

    Notes
    -----
    The structure is frozen after construction (arrays may be read-only
    shared-memory views); :meth:`add_points` returns a *new* dictionary
    for the union rather than mutating in place, bit-identical to
    :meth:`from_points` on the concatenated points — the model plane's
    incremental-ingest contract rests on that equivalence.
    """

    __slots__ = (
        "geometry",
        "cell_ids",
        "cell_counts",
        "offsets",
        "sub_coords",
        "sub_counts",
        "sub_centers",
        "_keys",
    )

    def __init__(
        self,
        geometry: CellGeometry,
        cell_ids: np.ndarray,
        cell_counts: np.ndarray,
        offsets: np.ndarray,
        sub_coords: np.ndarray,
        sub_counts: np.ndarray,
        sub_centers: np.ndarray | None = None,
        *,
        validate: bool = True,
    ) -> None:
        self.geometry = geometry
        self.cell_ids = np.ascontiguousarray(cell_ids, dtype=np.int64)
        self.cell_counts = np.ascontiguousarray(cell_counts, dtype=np.int64)
        self.offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        self.sub_coords = np.ascontiguousarray(sub_coords, dtype=np.uint16)
        self.sub_counts = np.ascontiguousarray(sub_counts, dtype=np.int64)
        if sub_centers is None:
            sub_centers = self._compute_centers()
        self.sub_centers = np.ascontiguousarray(sub_centers, dtype=np.float64)
        self._keys = lex_keys(self.cell_ids)
        if validate:
            self._validate()

    def _compute_centers(self) -> np.ndarray:
        reps = np.diff(self.offsets)
        origins = (
            np.repeat(self.cell_ids, reps, axis=0).astype(np.float64)
            * self.geometry.side
        )
        return origins + (
            self.sub_coords.astype(np.float64) + 0.5
        ) * self.geometry.sub_side

    def _validate(self) -> None:
        C = self.cell_ids.shape[0]
        if self.cell_ids.ndim != 2 or self.cell_ids.shape[1] != self.geometry.dim:
            raise ValueError("cell_ids must be (C, d) matching the geometry")
        if self.cell_counts.shape != (C,):
            raise ValueError("cell_counts must be (C,)")
        if self.offsets.shape != (C + 1,) or (C == 0 and self.offsets[0] != 0):
            raise ValueError("offsets must be (C + 1,) starting at 0")
        S = self.sub_coords.shape[0]
        if self.offsets[0] != 0 or self.offsets[-1] != S:
            raise ValueError("offsets must span the sub-cell arrays")
        if np.any(np.diff(self.offsets) < 1) and C:
            raise ValueError("every cell must own at least one sub-cell")
        if self.sub_counts.shape != (S,) or self.sub_centers.shape != (
            S,
            self.geometry.dim,
        ):
            raise ValueError("sub arrays disagree on S")
        if C > 1:
            a, b = self.cell_ids[:-1], self.cell_ids[1:]
            neq = a != b
            rows = np.arange(C - 1)
            first = neq.argmax(axis=1)
            if not (
                neq.any(axis=1).all() and np.all(a[rows, first] < b[rows, first])
            ):
                raise ValueError(
                    "cell_ids must be lexicographically sorted and unique"
                )

    # ------------------------------------------------------------------
    # Construction (Algorithm 2, Phase I-2 — over arrays)
    # ------------------------------------------------------------------

    @classmethod
    def from_points(
        cls, points: np.ndarray, geometry: CellGeometry
    ) -> "FlatCellDictionary":
        """Build the columnar dictionary for ``points`` in one pass.

        One ``np.unique`` over the combined ``(cell, sub-cell)`` rows
        replaces the dict layout's per-cell python loop: ``O(n log n)``
        with no per-cell interpreter work.
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError("points must be (n, d)")
        if pts.shape[1] != geometry.dim:
            raise ValueError(
                f"points have dim {pts.shape[1]} but geometry has dim {geometry.dim}"
            )
        d = geometry.dim
        if pts.shape[0] == 0:
            return cls._empty(geometry)
        cids = geometry.cell_ids(pts)
        subs = geometry.sub_cell_coords(pts, cids).astype(np.int64)
        combined = np.concatenate([cids, subs], axis=1)
        uniq, counts = np.unique(combined, axis=0, return_counts=True)
        cell_part = uniq[:, :d]
        new_cell = np.empty(uniq.shape[0], dtype=bool)
        new_cell[0] = True
        np.any(cell_part[1:] != cell_part[:-1], axis=1, out=new_cell[1:])
        starts = np.nonzero(new_cell)[0]
        offsets = np.concatenate([starts, [uniq.shape[0]]]).astype(np.int64)
        return cls(
            geometry,
            cell_part[starts],
            np.add.reduceat(counts, starts).astype(np.int64),
            offsets,
            uniq[:, d:].astype(np.uint16),
            counts.astype(np.int64),
            validate=False,
        )

    def add_points(self, points: np.ndarray) -> "FlatCellDictionary":
        """A new dictionary summarizing this one's points plus ``points``.

        The union-with-sum counterpart of :meth:`merge` (which requires
        disjoint cells): existing ``(cell, sub-cell)`` rows have the new
        points' counts added, new rows are spliced into lexicographic
        position.  The result is **bit-identical** to
        :meth:`from_points` on the concatenated point set — the existing
        rows are expanded back into weighted ``(cell, sub-cell)``
        occurrence rows and pushed through the same ``np.unique`` tail,
        and :meth:`_compute_centers` is a per-row formula, so grouping
        history cannot leak into any array.  ``self`` is not mutated.
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError("points must be (n, d)")
        if pts.shape[1] != self.geometry.dim:
            raise ValueError(
                f"points have dim {pts.shape[1]} but geometry has dim "
                f"{self.geometry.dim}"
            )
        if pts.shape[0] == 0:
            return self
        geometry = self.geometry
        d = geometry.dim
        cids = geometry.cell_ids(pts)
        subs = geometry.sub_cell_coords(pts, cids).astype(np.int64)
        fresh = np.concatenate([cids, subs], axis=1)
        reps = np.diff(self.offsets)
        existing = np.concatenate(
            [
                np.repeat(self.cell_ids, reps, axis=0),
                self.sub_coords.astype(np.int64),
            ],
            axis=1,
        )
        combined = np.concatenate([existing, fresh])
        weights = np.concatenate(
            [self.sub_counts, np.ones(fresh.shape[0], dtype=np.int64)]
        )
        uniq, inverse = np.unique(combined, axis=0, return_inverse=True)
        counts = np.zeros(uniq.shape[0], dtype=np.int64)
        np.add.at(counts, inverse.reshape(-1), weights)
        cell_part = uniq[:, :d]
        new_cell = np.empty(uniq.shape[0], dtype=bool)
        new_cell[0] = True
        np.any(cell_part[1:] != cell_part[:-1], axis=1, out=new_cell[1:])
        starts = np.nonzero(new_cell)[0]
        offsets = np.concatenate([starts, [uniq.shape[0]]]).astype(np.int64)
        return type(self)(
            geometry,
            cell_part[starts],
            np.add.reduceat(counts, starts).astype(np.int64),
            offsets,
            uniq[:, d:].astype(np.uint16),
            counts.astype(np.int64),
            validate=False,
        )

    @classmethod
    def _empty(cls, geometry: CellGeometry) -> "FlatCellDictionary":
        d = geometry.dim
        return cls(
            geometry,
            np.empty((0, d), dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
            np.empty((0, d), dtype=np.uint16),
            np.empty(0, dtype=np.int64),
            np.empty((0, d), dtype=np.float64),
            validate=False,
        )

    @classmethod
    def from_cell_dictionary(cls, dictionary: CellDictionary) -> "FlatCellDictionary":
        """Flatten a dict-backed dictionary (same cells, same order)."""
        geometry = dictionary.geometry
        if not dictionary.cells:
            return cls._empty(geometry)
        items = sorted(dictionary.cells.items())
        sizes = np.array([s.num_subcells for _, s in items], dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        return cls(
            geometry,
            np.array([cid for cid, _ in items], dtype=np.int64),
            np.array([s.count for _, s in items], dtype=np.int64),
            offsets,
            np.concatenate([s.sub_coords for _, s in items]),
            np.concatenate([s.sub_counts for _, s in items]),
            validate=False,
        )

    def to_cell_dictionary(self) -> CellDictionary:
        """Materialize the dict-backed layout (copies the leaf arrays)."""
        cells: dict[CellId, CellSummary] = {}
        for row in range(self.num_cells):
            start, stop = self.offsets[row], self.offsets[row + 1]
            cells[self.cell_at(row)] = CellSummary(
                count=int(self.cell_counts[row]),
                sub_coords=self.sub_coords[start:stop].copy(),
                sub_counts=self.sub_counts[start:stop].copy(),
            )
        return CellDictionary(self.geometry, cells)

    @classmethod
    def merge(cls, dictionaries: list["FlatCellDictionary"]) -> "FlatCellDictionary":
        """Union of disjoint per-partition dictionaries, over arrays.

        Algorithm 2 lines 18-20: concatenate the partials, lexsort the
        cell rows, and gather each cell's sub-cell block into its sorted
        slot — no per-cell python objects.  A shared cell id is a
        programming error (pseudo random partitioning assigns each cell
        to exactly one partition) and raises.
        """
        if not dictionaries:
            raise ValueError("merge requires at least one dictionary")
        geometry = dictionaries[0].geometry
        for dictionary in dictionaries:
            if dictionary.geometry != geometry:
                raise ValueError("cannot merge dictionaries with different geometry")
        if len(dictionaries) == 1:
            return dictionaries[0]
        ids = np.concatenate([d.cell_ids for d in dictionaries])
        if ids.shape[0] == 0:
            return cls._empty(geometry)
        counts = np.concatenate([d.cell_counts for d in dictionaries])
        sizes = np.concatenate([np.diff(d.offsets) for d in dictionaries])
        # Sub-block starts within the concatenated sub arrays.
        base = 0
        starts_parts = []
        for d in dictionaries:
            starts_parts.append(d.offsets[:-1] + base)
            base += d.offsets[-1]
        starts = np.concatenate(starts_parts)
        order = np.lexsort(ids.T[::-1])
        sorted_keys = lex_keys(ids[order])
        if sorted_keys.shape[0] > 1 and np.any(
            sorted_keys[:-1] == sorted_keys[1:]
        ):
            dupe = ids[order][
                np.nonzero(sorted_keys[:-1] == sorted_keys[1:])[0][0]
            ]
            raise ValueError(
                f"partitions share cells: {tuple(int(v) for v in dupe)}..."
            )
        gather = csr_gather_indices(starts[order], sizes[order])
        sub_coords = np.concatenate([d.sub_coords for d in dictionaries])[gather]
        sub_counts = np.concatenate([d.sub_counts for d in dictionaries])[gather]
        sub_centers = np.concatenate([d.sub_centers for d in dictionaries])[gather]
        offsets = np.concatenate([[0], np.cumsum(sizes[order])]).astype(np.int64)
        return cls(
            geometry,
            ids[order],
            counts[order],
            offsets,
            sub_coords,
            sub_counts,
            sub_centers,
            validate=False,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.cell_ids.shape[0]

    def __contains__(self, cell_id: CellId) -> bool:
        return self.index_map.get(cell_id) is not None

    @property
    def num_cells(self) -> int:
        """Number of non-empty cells."""
        return self.cell_ids.shape[0]

    @property
    def num_subcells(self) -> int:
        """Number of non-empty sub-cells across all cells."""
        return self.sub_coords.shape[0]

    @property
    def num_points(self) -> int:
        """Total density — must equal the data set size."""
        return int(self.cell_counts.sum())

    def size_model(self) -> DictionarySizeModel:
        """Lemma 4.3 size accounting for this dictionary."""
        return DictionarySizeModel(
            num_cells=self.num_cells,
            num_subcells=self.num_subcells,
            dim=self.geometry.dim,
            h=self.geometry.h,
        )

    @property
    def index_map(self) -> _FlatIndexMap:
        """Mapping-style ``cell id -> dense row`` view (binary search)."""
        return _FlatIndexMap(self)

    def cell_at(self, row: int) -> CellId:
        """Cell id of dense ``row`` (inverse of :meth:`row_of`)."""
        return tuple(int(v) for v in self.cell_ids[row])

    def cell_ids_array(self) -> np.ndarray:
        """All cell ids as an ``(C, d)`` int64 array (lexicographic)."""
        return self.cell_ids

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def find_rows(self, query_ids: np.ndarray) -> np.ndarray:
        """Vectorized binary search: dense row per query id, ``-1`` when
        the cell is not in the dictionary.  ``query_ids`` is ``(m, d)``."""
        query = np.ascontiguousarray(query_ids, dtype=np.int64)
        if query.ndim != 2:
            raise ValueError("query_ids must be (m, d)")
        if query.shape[0] == 0 or self.num_cells == 0:
            return np.full(query.shape[0], -1, dtype=np.int64)
        pos = np.searchsorted(self._keys, lex_keys(query))
        pos_clipped = np.minimum(pos, self.num_cells - 1)
        hit = np.all(self.cell_ids[pos_clipped] == query, axis=1) & (
            pos < self.num_cells
        )
        return np.where(hit, pos_clipped, -1)

    def row_of(self, cell_id: CellId) -> int:
        """Dense row of ``cell_id``; raises ``KeyError`` when absent."""
        row = int(self.find_rows(np.asarray(cell_id, dtype=np.int64)[None, :])[0])
        if row < 0:
            raise KeyError(cell_id)
        return row

    # ------------------------------------------------------------------
    # Query support
    # ------------------------------------------------------------------

    def sub_cell_centers(self, cell_id: CellId) -> np.ndarray:
        """``(k, d)`` view of the cell's precomputed sub-cell centers."""
        row = self.row_of(cell_id)
        return self.sub_centers[self.offsets[row] : self.offsets[row + 1]]

    def densities(self, cell_id: CellId) -> np.ndarray:
        """Per-sub-cell densities of ``cell_id`` as float64 (for matmul)."""
        row = self.row_of(cell_id)
        return self.sub_counts[self.offsets[row] : self.offsets[row + 1]].astype(
            np.float64
        )

    def materialize_centers(self) -> None:
        """No-op: the columnar layout ships centers precomputed."""

    def gather_subcells(
        self, rows: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Concatenated sub-cell blocks of the given dense rows.

        Returns ``(centers, densities, sizes)``: the ``(M, d)`` centers
        and ``(M,)`` float64 densities of every sub-cell of every
        requested cell, in row order, plus the ``(m,)`` per-cell block
        sizes — one vectorized CSR gather instead of a python loop of
        per-cell array concatenations.
        """
        rows = np.asarray(rows, dtype=np.int64)
        sizes = self.offsets[rows + 1] - self.offsets[rows]
        gather = csr_gather_indices(self.offsets[rows], sizes)
        return (
            self.sub_centers[gather],
            self.sub_counts[gather].astype(np.float64),
            sizes,
        )


def summarize_cell(
    cell_points: np.ndarray, cell_id: CellId, geometry: CellGeometry
) -> CellSummary:
    """Build a :class:`CellSummary` from the points of one cell."""
    ids = np.tile(np.asarray(cell_id, dtype=np.int64), (cell_points.shape[0], 1))
    local = geometry.sub_cell_coords(cell_points, ids)
    coords, counts = np.unique(local, axis=0, return_counts=True)
    return CellSummary(
        count=cell_points.shape[0],
        sub_coords=coords.astype(np.uint16),
        sub_counts=counts.astype(np.int64),
    )
