"""Phase II: core marking and cell-subgraph building (Algorithm 3).

Each worker receives one pseudo random partition plus the broadcast
two-level cell dictionary and, without any communication:

1. runs an (eps, rho)-region query for every point of every cell it
   owns, summing neighbor sub-cell densities to mark **core points**
   (line 8-10) and thereby **core cells** (line 11-12);
2. for each core cell, adds a directed edge to every cell that contains
   at least one neighbor sub-cell of one of its core points
   (line 13-16).

Edge types are determined locally where possible: a target cell owned by
the same partition is known to be core or non-core (full/partial edge);
a target in another partition yields an *undetermined* edge resolved
during Phase III.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.cell_graph import (
    V_CORE,
    V_NONCORE,
    V_UNDETERMINED,
    CellGraph,
    EdgeType,
    FlatCellGraph,
)
from repro.core.cells import CellGeometry
from repro.core.defragmentation import (
    DefragmentedDictionary,
    FlatDefragmentedDictionary,
    defragment,
)
from repro.core.dictionary import CellDictionary, FlatCellDictionary
from repro.core.partitioning import Partition
from repro.core.region_query import RegionQueryEngine
from repro.core.sharding import PartialFlatDictionary

__all__ = ["QueryContext", "SubgraphResult", "build_cell_subgraph"]


@dataclass
class QueryContext:
    """Broadcast payload for Phase II: dictionary + query configuration.

    The :class:`RegionQueryEngine` is excluded from the pickled state
    (``__getstate__``), so each ``process``-mode worker constructs its
    own engine (kd-tree, offset table, center caches) from the
    one-time-shipped dictionary — mirroring Spark, where the broadcast
    is deserialized per executor.  The orchestrator triggers that build
    through the engine's *warm-up hook* during broadcast installation
    (worker initialization), so the construction cost lands in the
    ``engine.setup`` counter bucket rather than in the first Phase II
    task's timing; the lazy :attr:`engine` property remains as a
    fallback for direct/driver-side use.
    """

    dictionary: CellDictionary | FlatCellDictionary | PartialFlatDictionary
    strategy: str = "auto"
    defragment_capacity: int | None = None
    kernel: str = "numpy"
    _engine: RegionQueryEngine | None = field(default=None, repr=False, compare=False)
    _defrag: DefragmentedDictionary | FlatDefragmentedDictionary | None = field(
        default=None, repr=False, compare=False
    )

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_engine"] = None
        state["_defrag"] = None
        return state

    @property
    def engine(self) -> RegionQueryEngine:
        """The (lazily built) region-query engine."""
        if self._engine is None:
            if isinstance(self.dictionary, PartialFlatDictionary):
                # Sharded broadcast: the dictionary *is* the defragmented
                # layout (one shard per sub-dictionary), so wrapping it
                # again would be redundant — residency accounting lives
                # on the partial dictionary itself.
                self._engine = RegionQueryEngine(
                    self.dictionary, strategy=self.strategy, kernel=self.kernel
                )
            elif self.defragment_capacity is not None:
                self._defrag = defragment(
                    self.dictionary, capacity=self.defragment_capacity
                )
                self._engine = RegionQueryEngine(
                    self._defrag, strategy=self.strategy, kernel=self.kernel
                )
            else:
                self._engine = RegionQueryEngine(
                    self.dictionary, strategy=self.strategy, kernel=self.kernel
                )
            # Broadcast-load warm-up: see CellDictionary.materialize_centers.
            self.dictionary.materialize_centers()
        return self._engine

    @property
    def defragmented(
        self,
    ) -> DefragmentedDictionary | FlatDefragmentedDictionary | None:
        """The defragmented dictionary, when enabled (for stats)."""
        self.engine  # ensure built
        return self._defrag

    @property
    def geometry(self) -> CellGeometry:
        """Shared cell geometry."""
        return self.dictionary.geometry


@dataclass
class SubgraphResult:
    """Output of Phase II for one partition.

    Attributes
    ----------
    pid:
        Partition id.
    graph:
        The partition's cell subgraph (Definition 5.8) in the requested
        layout (columnar :class:`FlatCellGraph` or dict
        :class:`CellGraph`).  Vertices are dense cell *indices* into the
        broadcast dictionary's
        :attr:`~repro.core.dictionary.CellDictionary.index_map`.
    core_mask:
        Boolean per partition row: is the point core?  Aligned with
        ``partition.points``.
    num_queries:
        Number of (eps, rho)-region queries executed (one per point).
    """

    pid: int
    graph: CellGraph | FlatCellGraph
    core_mask: np.ndarray
    num_queries: int


def build_cell_subgraph(
    partition: Partition,
    context: QueryContext,
    min_pts: int,
    *,
    graph_layout: str = "dict",
) -> SubgraphResult:
    """Run Algorithm 3 for one partition.

    Parameters
    ----------
    partition:
        The pseudo random partition to process.
    context:
        Broadcast :class:`QueryContext` with the global dictionary.
    min_pts:
        DBSCAN ``minPts``; a point is core when the density sum of its
        (eps, rho)-neighbor sub-cells reaches it (the count includes the
        point's own sub-cell, matching ``|N_eps(p)| >= minPts``).
    graph_layout:
        ``"flat"`` emits a columnar :class:`FlatCellGraph` directly (the
        merge plane's hot path — no dict graph is ever materialized);
        ``"dict"`` emits the reference :class:`CellGraph`.  Both layouts
        carry the identical vertex classes and edge multiset.

    Returns
    -------
    SubgraphResult
    """
    if min_pts < 1:
        raise ValueError("min_pts must be >= 1")
    if graph_layout not in ("flat", "dict"):
        raise ValueError(f"unknown graph_layout {graph_layout!r}")
    engine = context.engine
    index_map = context.dictionary.index_map
    owned = {index_map[cid] for cid in partition.cell_slices}
    core_mask = np.zeros(partition.num_points, dtype=bool)
    num_queries = 0

    # First pass: mark core points and core cells.  Graph vertices are
    # the dictionary's dense cell indices (every referenced cell is a
    # dictionary cell), which keeps Phase III's set/dict work cheap.
    core_cells: set[int] = set()
    touch_by_cell: dict[int, list[int]] = {}
    for cell_id, (start, stop) in partition.cell_slices.items():
        pts = partition.points[start:stop]
        result = engine.query_cell_batch(cell_id, pts)
        num_queries += pts.shape[0]
        is_core = result.counts >= float(min_pts)
        core_mask[start:stop] = is_core
        if bool(is_core.any()):
            core_cells.add(index_map[cell_id])
            # Cells reachable from this cell = union over its core
            # points of the cells holding their neighbor sub-cells.
            # Candidate rows *are* the dictionary's dense indices, so no
            # per-tuple index_map lookups are needed on the hot path.
            touched = result.touch[is_core].any(axis=0)
            if result.candidate_rows is not None:
                touch_by_cell[index_map[cell_id]] = result.candidate_rows[
                    touched
                ].tolist()
            else:
                touch_by_cell[index_map[cell_id]] = [
                    index_map[cid]
                    for j, cid in enumerate(result.candidate_ids)
                    if touched[j]
                ]

    # Second pass: classify owned cells and emit edges.
    if graph_layout == "flat":
        graph: CellGraph | FlatCellGraph = _assemble_flat_subgraph(
            context.dictionary.num_cells, owned, core_cells, touch_by_cell
        )
    else:
        graph = CellGraph()
        for cell_id in partition.cell_slices:
            idx = index_map[cell_id]
            if idx in core_cells:
                graph.add_core_cell(idx)
            else:
                graph.add_noncore_cell(idx)
        for src, targets in touch_by_cell.items():
            for dst in targets:
                if dst == src:
                    continue
                if dst in owned:
                    edge_type = (
                        EdgeType.FULL if dst in core_cells else EdgeType.PARTIAL
                    )
                else:
                    graph.add_undetermined_cell(dst)
                    edge_type = EdgeType.UNDETERMINED
                graph.add_edge(src, dst, edge_type)
    return SubgraphResult(
        pid=partition.pid,
        graph=graph,
        core_mask=core_mask,
        num_queries=num_queries,
    )


def _assemble_flat_subgraph(
    n_slots: int,
    owned: set[int],
    core_cells: set[int],
    touch_by_cell: dict[int, list[int]],
) -> FlatCellGraph:
    """Assemble the columnar subgraph from pass-1 results.

    Vectorized second pass of Algorithm 3: vertex classes land in one
    int8 status array and edge types come from a single gather of
    destination ownership/core-ness — the same classification rules as
    the dict branch, so both layouts carry identical edges.
    """
    status = np.zeros(n_slots, dtype=np.int8)
    owned_rows = np.fromiter(owned, dtype=np.int64, count=len(owned))
    status[owned_rows] = V_NONCORE
    if core_cells:
        status[np.fromiter(core_cells, dtype=np.int64, count=len(core_cells))] = (
            V_CORE
        )
    src_blocks: list[np.ndarray] = []
    dst_blocks: list[np.ndarray] = []
    for src, targets in touch_by_cell.items():
        dst = np.asarray(targets, dtype=np.int64)
        dst = dst[dst != src]
        if dst.size:
            src_blocks.append(np.full(dst.size, src, dtype=np.int32))
            dst_blocks.append(dst.astype(np.int32))
    if src_blocks:
        src = np.concatenate(src_blocks)
        dst = np.concatenate(dst_blocks)
    else:
        src = np.empty(0, dtype=np.int32)
        dst = np.empty(0, dtype=np.int32)
    owned_mask = np.zeros(n_slots, dtype=bool)
    owned_mask[owned_rows] = True
    dst_owned = owned_mask[dst]
    dst_core = status[dst] == V_CORE
    etype = np.where(
        dst_owned,
        np.where(dst_core, int(EdgeType.FULL), int(EdgeType.PARTIAL)),
        int(EdgeType.UNDETERMINED),
    ).astype(np.int8)
    status[dst[~dst_owned]] = V_UNDETERMINED
    return FlatCellGraph.from_arrays(status, src, dst, etype)
