"""Cell and sub-cell geometry (paper Definitions 3.1 and 4.1).

A *cell* is a ``d``-dimensional hypercube whose **diagonal** is ``eps``,
so any two points inside one cell are within ``eps`` of each other —
the property that lets RP-DBSCAN reason about whole cells instead of
points (Figure 3a).

A *sub-cell* refines a cell for the two-level cell dictionary: with the
approximation parameter ``rho`` and ``h = 1 + ceil(log2(1/rho))``, each
cell splits into ``2^(h-1)`` sub-cells per dimension, each a hypercube
with diagonal ``eps / 2^(h-1) <= rho * eps``.  A point is approximated by
the center of its sub-cell, so the approximation error per point is at
most ``rho * eps / 2`` (the premise of Lemma 5.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.spatial.grid import GridSpec

__all__ = ["CellGeometry", "h_for_rho", "CellId"]

#: A cell identifier: the integer grid coordinates of the cell.
CellId = tuple[int, ...]


def h_for_rho(rho: float) -> int:
    """Dictionary height ``h = 1 + ceil(log2(1/rho))`` (Definition 4.1)."""
    if not 0 < rho <= 1:
        raise ValueError(f"rho must be in (0, 1], got {rho}")
    return 1 + math.ceil(math.log2(1.0 / rho))


@dataclass(frozen=True)
class CellGeometry:
    """Joint geometry of the cell grid and its sub-cell refinement.

    Attributes
    ----------
    eps:
        DBSCAN radius; equals the cell diagonal.
    dim:
        Dimensionality of the data space.
    rho:
        Approximation parameter in ``(0, 1]``; determines the sub-cell
        size (Definition 4.1).
    """

    eps: float
    dim: int
    rho: float = 0.01
    grid: GridSpec = field(init=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "grid", GridSpec(self.eps, self.dim))
        h_for_rho(self.rho)  # validates rho

    @property
    def side(self) -> float:
        """Cell side length ``eps / sqrt(d)``."""
        return self.grid.side

    @property
    def h(self) -> int:
        """Tree height parameter ``h`` (Definition 4.1)."""
        return h_for_rho(self.rho)

    @property
    def splits_per_dim(self) -> int:
        """Number of sub-cells per dimension, ``2^(h-1)``."""
        return 1 << (self.h - 1)

    @property
    def sub_side(self) -> float:
        """Sub-cell side length."""
        return self.side / self.splits_per_dim

    @property
    def sub_diagonal(self) -> float:
        """Sub-cell diagonal, ``eps / 2^(h-1)``; at most ``rho * eps``."""
        return self.eps / self.splits_per_dim

    @property
    def subcells_per_cell(self) -> int:
        """Total sub-cells per cell, ``2^(d(h-1))`` (may be astronomically
        large for high ``d``; only non-empty sub-cells are ever stored)."""
        return self.splits_per_dim**self.dim

    # ------------------------------------------------------------------
    # Point -> (cell, sub-cell) assignment
    # ------------------------------------------------------------------

    def cell_ids(self, points: np.ndarray) -> np.ndarray:
        """Integer cell coordinates for each row of ``points`` — ``(n, d)``."""
        pts = np.asarray(points, dtype=np.float64)
        return np.floor(pts / self.side).astype(np.int64)

    def sub_cell_coords(self, points: np.ndarray, cell_ids: np.ndarray) -> np.ndarray:
        """Local sub-cell coordinates of each point within its cell.

        Returns an ``(n, d)`` uint16 array with entries in
        ``[0, splits_per_dim)``.  Points sitting exactly on the upper cell
        border (possible through floating-point rounding) are clamped
        into the last sub-cell.
        """
        pts = np.asarray(points, dtype=np.float64)
        origins = np.asarray(cell_ids, dtype=np.float64) * self.side
        local = np.floor((pts - origins) / self.sub_side).astype(np.int64)
        np.clip(local, 0, self.splits_per_dim - 1, out=local)
        return local.astype(np.uint16)

    def sub_cell_centers(self, cell_id: CellId, local_coords: np.ndarray) -> np.ndarray:
        """Centers of the sub-cells ``local_coords`` inside ``cell_id``.

        ``local_coords`` is ``(k, d)`` (uint16); the result is ``(k, d)``
        float64.  These centers are the approximate point positions used
        by ``(eps, rho)``-region queries.
        """
        origin = np.asarray(cell_id, dtype=np.float64) * self.side
        coords = np.asarray(local_coords, dtype=np.float64)
        return origin + (coords + 0.5) * self.sub_side

    def cell_box(self, cell_id: CellId) -> tuple[np.ndarray, np.ndarray]:
        """Lower and upper corners of the cell's bounding box."""
        lo = np.asarray(cell_id, dtype=np.float64) * self.side
        return lo, lo + self.side

    # ------------------------------------------------------------------
    # Cell-to-cell geometry
    # ------------------------------------------------------------------

    def cell_box_min_distance(self, a: CellId, b: CellId) -> float:
        """Minimum distance between the boxes of cells ``a`` and ``b``.

        Two cells can contain mutually ``eps``-reachable points only when
        this distance is at most ``eps``.
        """
        delta = np.abs(np.asarray(a, dtype=np.int64) - np.asarray(b, dtype=np.int64))
        gap = np.maximum(delta - 1, 0).astype(np.float64) * self.side
        return float(np.sqrt(np.dot(gap, gap)))

    def max_reach_in_cells(self) -> int:
        """Max per-axis cell-index offset that can hold an ``eps``-neighbor."""
        return 1 + int(math.isqrt(self.dim))
