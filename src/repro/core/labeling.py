"""Phase III-2: point labeling (Algorithm 4 part 2, Lemma 3.5).

Once the global cell graph exists, cluster membership is translated from
the cell level to the point level:

* Every spanning tree over **full** edges is one cluster of core cells;
  all points of a core cell inherit its tree's cluster id (Figure 10b —
  all points of a core cell are within ``eps`` of one of its core
  points because the cell diagonal is ``eps``).
* A **non-core** cell's points join the cluster of a predecessor core
  cell ``C1`` (a partial edge ``C1 ~> C2``) only if they lie within
  ``eps`` of an actual core point of ``C1`` — an *exact* distance check
  against real points, which is why border handling loses no accuracy.
* Everything else is noise (label ``-1``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cell_graph import CellGraph, EdgeType
from repro.core.cells import CellId
from repro.core.partitioning import Partition
from repro.graph.spanning_forest import connected_components
from repro.spatial.distance import pairwise_distances

__all__ = [
    "LabelingContext",
    "build_labeling_context",
    "core_cell_labels",
    "label_partition",
    "NOISE",
]

#: Label assigned to noise/outlier points.
NOISE = -1


@dataclass
class LabelingContext:
    """Broadcast payload for Phase III-2.

    Cells are addressed by their dense dictionary *index*
    (:attr:`~repro.core.dictionary.CellDictionary.index_map`), matching
    the vertices of the global cell graph.

    Attributes
    ----------
    eps:
        DBSCAN radius for the exact border checks.
    index_map:
        Cell id -> dense index, shared with Phase II.
    cell_labels:
        Cluster id for every core cell index (dense ints from 0).
    predecessors:
        For each non-core cell index, its predecessor core cell indices
        via partial edges, sorted for deterministic tie-breaking.
    predecessor_core_points:
        The actual core points of every cell that appears as a partial-
        edge source, gathered across partitions by the driver.
    """

    eps: float
    index_map: dict[CellId, int]
    cell_labels: dict[int, int]
    predecessors: dict[int, list[int]]
    predecessor_core_points: dict[int, np.ndarray]

    @property
    def n_clusters(self) -> int:
        """Number of distinct clusters."""
        if not self.cell_labels:
            return 0
        return len(set(self.cell_labels.values()))


def core_cell_labels(graph: CellGraph) -> dict[int, int]:
    """Canonical cluster id for every core cell of ``graph``.

    One spanning tree over **full** edges is one cluster (Lemma 3.5);
    :func:`~repro.graph.spanning_forest.connected_components` numbers the
    components canonically (by their smallest member), so the mapping is
    a pure function of the graph's core set and full-edge connectivity —
    *not* of edge order, merge history, or how the graph was produced.
    The from-scratch fit and the incremental ingest splice both route
    through this helper; identical connectivity therefore yields
    bit-identical cluster numbering, which is what makes an incremental
    refit indistinguishable from a full one.
    """
    return connected_components(
        sorted(graph.core), graph.edges_of_type(EdgeType.FULL)
    )


def build_labeling_context(
    graph: CellGraph,
    partitions: list[Partition],
    core_masks: dict[int, np.ndarray],
    eps: float,
    index_map: dict[CellId, int],
) -> LabelingContext:
    """Driver-side assembly of the labeling broadcast.

    Parameters
    ----------
    graph:
        The global cell graph (Definition 6.1), vertexed by cell index.
    partitions:
        All pseudo random partitions (to gather core points of
        partial-edge source cells).
    core_masks:
        Per-partition boolean core masks from Phase II, keyed by pid.
    eps:
        DBSCAN radius.
    index_map:
        Cell id -> dense index (the dictionary's
        :attr:`~repro.core.dictionary.CellDictionary.index_map`).
    """
    cell_labels = core_cell_labels(graph)

    predecessors: dict[int, list[int]] = {}
    needed_sources: set[int] = set()
    for src, dst in graph.edges_of_type(EdgeType.PARTIAL):
        predecessors.setdefault(dst, []).append(src)
        needed_sources.add(src)
    for dst in predecessors:
        predecessors[dst].sort()

    predecessor_core_points: dict[int, np.ndarray] = {}
    for partition in partitions:
        mask = core_masks[partition.pid]
        for cell_id, (start, stop) in partition.cell_slices.items():
            idx = index_map[cell_id]
            if idx not in needed_sources:
                continue
            # gather_rows reads just these rows from an out-of-core
            # partition instead of materializing the whole point block.
            core_points = partition.gather_rows(start, stop, mask[start:stop])
            predecessor_core_points[idx] = core_points
    return LabelingContext(
        eps=eps,
        index_map=index_map,
        cell_labels=cell_labels,
        predecessors=predecessors,
        predecessor_core_points=predecessor_core_points,
    )


def label_partition(
    partition: Partition, context: LabelingContext
) -> tuple[np.ndarray, np.ndarray]:
    """Label one partition's points (Algorithm 4, ``Point_Labeling``).

    Returns ``(global_indices, labels)``; the driver scatters ``labels``
    into the full label array at ``global_indices``.
    """
    labels = np.full(partition.num_points, NOISE, dtype=np.int64)
    eps = context.eps
    for cell_id, (start, stop) in partition.cell_slices.items():
        cluster = context.cell_labels.get(context.index_map[cell_id])
        if cluster is not None:
            # Core cell: every point joins the cell's spanning tree.
            labels[start:stop] = cluster
            continue
        preds = context.predecessors.get(context.index_map[cell_id])
        if not preds:
            continue  # Non-core cell with no core predecessor: noise.
        # Only non-core cells with core predecessors ever need their
        # points here; gather_rows keeps an out-of-core partition from
        # materializing wholesale just to label its (mostly core) cells.
        pts = partition.gather_rows(start, stop)
        assigned = np.zeros(pts.shape[0], dtype=bool)
        for pred in preds:
            if assigned.all():
                break
            core_points = context.predecessor_core_points.get(pred)
            if core_points is None or core_points.shape[0] == 0:
                continue
            pending = ~assigned
            dist = pairwise_distances(pts[pending], core_points)
            reachable = (dist <= eps).any(axis=1)
            if not reachable.any():
                continue
            rows = np.nonzero(pending)[0][reachable]
            labels[start + rows] = context.cell_labels[pred]
            assigned[rows] = True
    return partition.global_indices, labels
