"""Phase III-1: progressive graph merging (Algorithm 4, Figure 9).

Cell subgraphs are merged pairwise in a *tournament*: each round halves
the number of graphs; every match (a) unions the two subgraphs
(Definition 6.2, promoting undetermined cells), (b) re-detects edge
types now that more cells are determined (Section 6.1.3), and
(c) removes redundant full edges with a spanning forest (Section 6.1.4).

The per-round edge counts — the measurements behind Figure 17 and
Table 7 — show why the tournament matters: edge reduction after every
match keeps any single merger small enough for one machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.cell_graph import CellGraph

__all__ = ["MergeStats", "merge_pair", "progressive_merge"]


@dataclass
class MergeStats:
    """Per-round accounting of the tournament.

    Attributes
    ----------
    edges_per_round:
        ``edges_per_round[0]`` is the total number of edges across all
        subgraphs before the tournament (paper's "Round 0"); entry ``i``
        is the total after round ``i`` completes.
    resolved_per_round:
        Undetermined edges whose type was detected in each round.
    removed_per_round:
        Redundant full edges removed in each round.
    match_seconds_per_round:
        Wall time of each match, per round.  The matches of one round
        are independent ("multiple parallel rounds", Sec 6.1.1), so the
        parallel span of the whole tournament is the sum over rounds of
        each round's slowest match — see :meth:`critical_path_seconds`.
    """

    edges_per_round: list[int] = field(default_factory=list)
    resolved_per_round: list[int] = field(default_factory=list)
    removed_per_round: list[int] = field(default_factory=list)
    match_seconds_per_round: list[list[float]] = field(default_factory=list)

    @property
    def num_rounds(self) -> int:
        """Number of tournament rounds run."""
        return max(0, len(self.edges_per_round) - 1)

    def critical_path_seconds(self) -> float:
        """Parallel span of the tournament: sum of per-round maxima."""
        return sum(max(round_times, default=0.0) for round_times in
                   self.match_seconds_per_round)


def merge_pair(a: CellGraph, b: CellGraph, *, reduce_edges: bool = True) -> tuple[CellGraph, int, int]:
    """One tournament match: merge, detect types, reduce.

    Returns ``(merged_graph, resolved_edges, removed_edges)``.
    ``reduce_edges=False`` disables the spanning-forest reduction (used
    by the ablation bench; the final clustering is unaffected, only the
    intermediate graph sizes grow).
    """
    merged = CellGraph.merge(a, b)
    resolved = merged.detect_edge_types()
    removed = merged.reduce_full_edges() if reduce_edges else 0
    return merged, resolved, removed


def progressive_merge(
    subgraphs: list[CellGraph], *, reduce_edges: bool = True
) -> tuple[CellGraph, MergeStats]:
    """Merge all cell subgraphs into the global cell graph.

    Parameters
    ----------
    subgraphs:
        One cell subgraph per partition (Phase II output).
    reduce_edges:
        Toggle the Section 6.1.4 edge reduction.

    Returns
    -------
    tuple
        ``(global_graph, stats)``.  The returned graph satisfies
        Definition 6.1: every vertex and edge is determined — pseudo
        random partitioning guarantees every cell is owned by exactly
        one partition, so the union over all partitions determines all.
    """
    if not subgraphs:
        return CellGraph(), MergeStats(edges_per_round=[0])
    stats = MergeStats()
    stats.edges_per_round.append(sum(g.num_edges for g in subgraphs))
    # Copy once at entry (callers keep their subgraphs); matches then
    # absorb in place, which is what keeps a match linear in the edge
    # count rather than paying a fresh copy per round.
    current = [g.copy() for g in subgraphs]
    while len(current) > 1:
        next_round: list[CellGraph] = []
        resolved_total = 0
        removed_total = 0
        match_times: list[float] = []
        for i in range(0, len(current) - 1, 2):
            start = time.perf_counter()
            a, b = current[i], current[i + 1]
            if a.num_edges < b.num_edges:
                a, b = b, a
            merged = a
            resolved = merged.absorb_resolving(b)
            removed = merged.reduce_full_edges() if reduce_edges else 0
            match_times.append(time.perf_counter() - start)
            next_round.append(merged)
            resolved_total += resolved
            removed_total += removed
        if len(current) % 2 == 1:
            next_round.append(current[-1])
        current = next_round
        stats.edges_per_round.append(sum(g.num_edges for g in current))
        stats.resolved_per_round.append(resolved_total)
        stats.removed_per_round.append(removed_total)
        stats.match_seconds_per_round.append(match_times)
    final = current[0]
    # Finalize: a lone subgraph (k = 1) never went through a match, and
    # cross-branch duplicate full edges need one full-scan reduction.
    final.detect_edge_types()
    if reduce_edges:
        final.reduce_all_full_edges()
        if stats.edges_per_round:
            stats.edges_per_round[-1] = final.num_edges
    return final, stats
