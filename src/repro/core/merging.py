"""Phase III-1: progressive graph merging (Algorithm 4, Figure 9).

Cell subgraphs are merged pairwise in a *tournament*: each round halves
the number of graphs; every match (a) unions the two subgraphs
(Definition 6.2, promoting undetermined cells), (b) re-detects edge
types now that more cells are determined (Section 6.1.3), and
(c) removes redundant full edges with a spanning forest (Section 6.1.4).

The per-round edge counts — the measurements behind Figure 17 and
Table 7 — show why the tournament matters: edge reduction after every
match keeps any single merger small enough for one machine.

The tournament can run in two *modes* sharing one match implementation
(:func:`merge_match`):

* ``driver`` — every match executes sequentially on the driver; the
  parallel span of the paper's "multiple parallel rounds" (Sec 6.1.1)
  is then *modeled* from the serially-measured match times
  (:meth:`MergeStats.critical_path_seconds`).
* ``engine`` — each round's matches dispatch through
  ``Engine.map_tasks`` with compact serialized subgraph payloads
  (:func:`~repro.core.serialization.serialize_cell_graph`), so round
  wall times are *measured*, not modeled.  Blobs are the inter-round
  currency: the driver never deserializes between rounds.
* ``auto`` — a cost model picks per run (:func:`resolve_merge_mode`):
  small workloads stay on the driver where payload shipping would
  dominate the matches.

Labels, ``n_clusters``, and per-round MergeStats accounting are
bit-identical across modes and graph layouts: the pairing is identical,
resolved/removed counts are order-invariant (an edge's resolution
depends only on its destination's final class; removals are the
pending-count minus the graphic-matroid rank), and component numbering
is canonical under connectivity.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Union

from repro.core.cell_graph import CellGraph, FlatCellGraph
from repro.core.serialization import (
    deserialize_cell_graph,
    serialize_cell_graph,
)

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.engine.executors import Engine

__all__ = [
    "MergeStats",
    "merge_match",
    "merge_pair",
    "progressive_merge",
    "resolve_merge_mode",
    "MERGE_MODES",
    "PHASE_MERGE",
    "AUTO_MIN_GRAPHS",
    "AUTO_MIN_EDGES",
]

AnyCellGraph = Union[CellGraph, FlatCellGraph]

#: Counter/phase bucket for Phase III-1 (re-exported by ``rp_dbscan``).
PHASE_MERGE = "III-1 merging"

#: Valid tournament scheduling modes.
MERGE_MODES = ("driver", "engine", "auto")

#: ``auto`` dispatches to the engine only from this many subgraphs up —
#: below it a tournament is one or two matches and shipping dominates.
AUTO_MIN_GRAPHS = 4

#: ... and only when the subgraphs carry at least this many edges in
#: total; tiny graphs merge in microseconds on the driver.
AUTO_MIN_EDGES = 20_000


@dataclass
class MergeStats:
    """Per-round accounting of the tournament.

    Attributes
    ----------
    edges_per_round:
        ``edges_per_round[0]`` is the total number of edges across all
        subgraphs before the tournament (paper's "Round 0"); entry ``i``
        is the total after round ``i`` completes.
    resolved_per_round:
        Undetermined edges whose type was detected in each round.
    removed_per_round:
        Redundant full edges removed in each round.
    match_seconds_per_round:
        Compute time of each match, per round (worker-measured in
        engine mode, driver-measured otherwise).  The matches of one
        round are independent ("multiple parallel rounds", Sec 6.1.1),
        so the *modeled* parallel span of the tournament is the sum over
        rounds of each round's slowest match — see
        :meth:`critical_path_seconds`.
    round_wall_seconds:
        Measured wall-clock of each round.  In engine mode this is the
        true parallel round time (dispatch to last result); in driver
        mode it is the serial execution of the round's matches.
    bytes_shipped_per_round:
        Serialized payload bytes dispatched to engine workers per round
        (0 in driver mode — nothing leaves the driver).
    mode:
        How matches actually executed after ``auto`` resolution:
        ``"driver"`` or ``"engine"``.
    """

    edges_per_round: list[int] = field(default_factory=list)
    resolved_per_round: list[int] = field(default_factory=list)
    removed_per_round: list[int] = field(default_factory=list)
    match_seconds_per_round: list[list[float]] = field(default_factory=list)
    round_wall_seconds: list[float] = field(default_factory=list)
    bytes_shipped_per_round: list[int] = field(default_factory=list)
    mode: str = "driver"

    @property
    def num_rounds(self) -> int:
        """Number of tournament rounds run."""
        return max(0, len(self.edges_per_round) - 1)

    @property
    def span_is_measured(self) -> bool:
        """Whether :meth:`span_seconds` reports a measured parallel span
        (engine mode) rather than a modeled one (driver mode)."""
        return self.mode == "engine"

    def critical_path_seconds(self) -> float:
        """*Modeled* parallel span: sum of per-round match maxima."""
        return sum(max(round_times, default=0.0) for round_times in
                   self.match_seconds_per_round)

    def measured_span_seconds(self) -> float:
        """Sum of measured per-round wall times."""
        return sum(self.round_wall_seconds)

    def span_seconds(self) -> float:
        """Tournament span for Fig 17 / Table 7 reporting: the measured
        round walls when the engine scheduled the rounds, else the
        modeled critical path."""
        if self.span_is_measured:
            return self.measured_span_seconds()
        return self.critical_path_seconds()


def merge_match(
    a: AnyCellGraph, b: AnyCellGraph, *, reduce_edges: bool = True
) -> tuple[AnyCellGraph, int, int]:
    """One in-place tournament match: merge, detect types, reduce.

    THE single match implementation — the driver tournament, the engine
    match task, :func:`merge_pair`, and the edge-reduction ablation
    bench all route through it, so they cannot drift.  The smaller graph
    (by edge count) is absorbed into the larger, which is mutated and
    returned along with ``(resolved_edges, removed_edges)``.
    """
    if a.num_edges < b.num_edges:
        a, b = b, a
    resolved = a.absorb_resolving(b)
    removed = a.reduce_full_edges() if reduce_edges else 0
    return a, resolved, removed


def merge_pair(
    a: AnyCellGraph, b: AnyCellGraph, *, reduce_edges: bool = True
) -> tuple[AnyCellGraph, int, int]:
    """Copying wrapper around :func:`merge_match` (callers keep their
    graphs).

    Returns ``(merged_graph, resolved_edges, removed_edges)``.
    ``reduce_edges=False`` disables the spanning-forest reduction (used
    by the ablation bench; the final clustering is unaffected, only the
    intermediate graph sizes grow).
    """
    winner, loser = (a, b) if a.num_edges >= b.num_edges else (b, a)
    return merge_match(winner.copy(), loser, reduce_edges=reduce_edges)


def _merge_match_task(
    payload: tuple[bytes, bytes, bool],
) -> tuple[bytes, int, int, int, float]:
    """Worker body of one engine-scheduled match.

    Deserializes the two subgraph blobs, runs :func:`merge_match`, and
    re-serializes the winner; the returned blob feeds the next round
    without the driver ever materializing the intermediate graph.
    Returns ``(blob, num_edges, resolved, removed, compute_s)`` —
    ``compute_s`` covers the match only (not codec time) and feeds
    :attr:`MergeStats.match_seconds_per_round`.
    """
    blob_a, blob_b, reduce_edges = payload
    a = deserialize_cell_graph(blob_a)
    b = deserialize_cell_graph(blob_b)
    start = time.perf_counter()
    merged, resolved, removed = merge_match(a, b, reduce_edges=reduce_edges)
    compute_s = time.perf_counter() - start
    return (
        serialize_cell_graph(merged),
        merged.num_edges,
        resolved,
        removed,
        compute_s,
    )


def resolve_merge_mode(
    merge_mode: str,
    subgraphs: "list[AnyCellGraph]",
    engine: "Engine | None",
) -> str:
    """Resolve ``merge_mode`` to the executed mode (the auto cost model).

    ``auto`` picks the engine only when it can actually parallelize
    (process or remote mode) and the workload is big enough that
    per-match compute can amortize payload shipping: at least
    :data:`AUTO_MIN_GRAPHS` subgraphs carrying at least
    :data:`AUTO_MIN_EDGES` edges in total.
    """
    if merge_mode not in MERGE_MODES:
        raise ValueError(
            f"unknown merge_mode {merge_mode!r}; expected one of {MERGE_MODES}"
        )
    if merge_mode == "driver":
        return "driver"
    if merge_mode == "engine":
        if engine is None:
            raise ValueError("merge_mode='engine' requires an engine")
        return "engine"
    if engine is None or engine.mode not in ("process", "remote"):
        return "driver"
    if len(subgraphs) < AUTO_MIN_GRAPHS:
        return "driver"
    if sum(g.num_edges for g in subgraphs) < AUTO_MIN_EDGES:
        return "driver"
    return "engine"


def progressive_merge(
    subgraphs: "list[AnyCellGraph]",
    *,
    reduce_edges: bool = True,
    merge_mode: str = "driver",
    engine: "Engine | None" = None,
    phase: str = PHASE_MERGE,
) -> tuple[AnyCellGraph, MergeStats]:
    """Merge all cell subgraphs into the global cell graph.

    Parameters
    ----------
    subgraphs:
        One cell subgraph per partition (Phase II output), dict or flat
        layout.
    reduce_edges:
        Toggle the Section 6.1.4 edge reduction.
    merge_mode:
        ``"driver"``, ``"engine"``, or ``"auto"`` (see the module
        docstring).  The clustering is bit-identical across modes.
    engine:
        Required for engine mode; when given, Phase III-1 time lands in
        its counters/tracer in every mode and the per-round merge ledger
        is recorded (:meth:`~repro.engine.counters.Counters.add_merge_round`).
    phase:
        Counter bucket / span label for the tournament.  Defaults to
        the fit pipeline's :data:`PHASE_MERGE`; the incremental-ingest
        path passes its own label so a shared engine's fit-phase
        breakdown is never polluted by refit work.

    Returns
    -------
    tuple
        ``(global_graph, stats)``.  The returned graph satisfies
        Definition 6.1: every vertex and edge is determined — pseudo
        random partitioning guarantees every cell is owned by exactly
        one partition, so the union over all partitions determines all.
    """
    mode = resolve_merge_mode(merge_mode, subgraphs, engine)
    if not subgraphs:
        return CellGraph(), MergeStats(edges_per_round=[0])
    if mode == "engine":
        assert engine is not None
        final, stats = _engine_merge(subgraphs, reduce_edges, engine, phase)
    elif engine is not None:
        with engine.counters.timed_phase(phase), engine.tracer.span(
            phase, "driver", phase=phase
        ):
            final, stats = _driver_merge(subgraphs, reduce_edges)
    else:
        final, stats = _driver_merge(subgraphs, reduce_edges)
    if engine is not None:
        for resolved, removed, shipped, wall in zip(
            stats.resolved_per_round,
            stats.removed_per_round,
            stats.bytes_shipped_per_round,
            stats.round_wall_seconds,
        ):
            engine.counters.add_merge_round(
                resolved=resolved,
                removed=removed,
                bytes_shipped=shipped,
                wall_s=wall,
            )
    return final, stats


def _driver_merge(
    subgraphs: "list[AnyCellGraph]", reduce_edges: bool
) -> tuple[AnyCellGraph, MergeStats]:
    """All matches on the driver, sequentially, round by round."""
    stats = MergeStats(mode="driver")
    stats.edges_per_round.append(sum(g.num_edges for g in subgraphs))
    # Copy once at entry (callers keep their subgraphs); matches then
    # absorb in place, which is what keeps a match linear in the edge
    # count rather than paying a fresh copy per round.
    current = [g.copy() for g in subgraphs]
    while len(current) > 1:
        round_start = time.perf_counter()
        next_round: list[AnyCellGraph] = []
        resolved_total = 0
        removed_total = 0
        match_times: list[float] = []
        for i in range(0, len(current) - 1, 2):
            start = time.perf_counter()
            merged, resolved, removed = merge_match(
                current[i], current[i + 1], reduce_edges=reduce_edges
            )
            match_times.append(time.perf_counter() - start)
            next_round.append(merged)
            resolved_total += resolved
            removed_total += removed
        if len(current) % 2 == 1:
            next_round.append(current[-1])  # bye: odd graph advances
        current = next_round
        stats.edges_per_round.append(sum(g.num_edges for g in current))
        stats.resolved_per_round.append(resolved_total)
        stats.removed_per_round.append(removed_total)
        stats.match_seconds_per_round.append(match_times)
        stats.round_wall_seconds.append(time.perf_counter() - round_start)
        stats.bytes_shipped_per_round.append(0)
    final = current[0]
    _finalize(final, reduce_edges, stats)
    return final, stats


def _engine_merge(
    subgraphs: "list[AnyCellGraph]",
    reduce_edges: bool,
    engine: "Engine",
    phase: str = PHASE_MERGE,
) -> tuple[AnyCellGraph, MergeStats]:
    """Each round's matches dispatched through ``Engine.map_tasks``.

    Serialized blobs are the inter-round currency; only the tournament
    winner is deserialized, once, for finalization.  Per-round phase
    spans are named ``"III-1 merging round N"`` (while counter time
    still lands in the :data:`PHASE_MERGE` bucket) and are annotated
    post-hoc with the merge ledger the run report renders.
    """
    counters = engine.counters
    tracer = engine.tracer
    stats = MergeStats(mode="engine")
    stats.edges_per_round.append(sum(g.num_edges for g in subgraphs))
    with counters.timed_phase(phase), tracer.span(
        f"{phase} (serialize)", "driver", phase=phase
    ):
        current = [(serialize_cell_graph(g), g.num_edges) for g in subgraphs]
    round_index = 0
    while len(current) > 1:
        round_index += 1
        round_name = f"{phase} round {round_index}"
        edges_in = sum(edges for _, edges in current)
        payloads = [
            (current[i][0], current[i + 1][0], reduce_edges)
            for i in range(0, len(current) - 1, 2)
        ]
        bytes_shipped = sum(len(a) + len(b) for a, b, _ in payloads)
        round_start = time.perf_counter()
        results = engine.map_tasks(
            _merge_match_task,
            payloads,
            phase=phase,
            trace_phase=round_name,
        )
        wall = time.perf_counter() - round_start
        next_round = [(blob, edges) for blob, edges, _, _, _ in results]
        if len(current) % 2 == 1:
            next_round.append(current[-1])  # bye: odd graph advances
        current = next_round
        stats.edges_per_round.append(sum(edges for _, edges in current))
        stats.resolved_per_round.append(sum(r[2] for r in results))
        stats.removed_per_round.append(sum(r[3] for r in results))
        stats.match_seconds_per_round.append([r[4] for r in results])
        stats.round_wall_seconds.append(wall)
        stats.bytes_shipped_per_round.append(bytes_shipped)
        _annotate_round_span(
            tracer,
            round_name,
            merge_round=round_index,
            matches=len(payloads),
            edges_in=edges_in,
            edges_out=stats.edges_per_round[-1],
            resolved=stats.resolved_per_round[-1],
            removed=stats.removed_per_round[-1],
            bytes_shipped=bytes_shipped,
        )
    with counters.timed_phase(phase), tracer.span(
        f"{phase} (finalize)", "driver", phase=phase
    ):
        final = deserialize_cell_graph(current[0][0])
        _finalize(final, reduce_edges, stats)
    return final, stats


def _finalize(
    final: AnyCellGraph, reduce_edges: bool, stats: MergeStats
) -> None:
    """Post-tournament pass: a lone subgraph (k = 1) never went through
    a match, and cross-branch duplicate full edges need one full-scan
    reduction."""
    final.detect_edge_types()
    if reduce_edges:
        final.reduce_all_full_edges()
        if stats.edges_per_round:
            stats.edges_per_round[-1] = final.num_edges


def _annotate_round_span(tracer, round_name: str, **ledger) -> None:
    """Attach the round's merge ledger to its just-closed phase span.

    Spans are mutable; annotating after ``map_tasks`` returns keeps the
    executor agnostic of merge semantics.  A ``NullTracer`` finds no
    span and this is a no-op.
    """
    spans = tracer.find(kind="phase", name=round_name)
    if spans:
        spans[-1].annotations.update(ledger)
